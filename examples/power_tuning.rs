//! Power tuning: sweep compression ratios and memory systems to map the
//! paper's §V-B trade space — spend the recoding win on *speed* (Figs.
//! 14/15) or on *power* (Figs. 16/17).
//!
//! ```text
//! cargo run --release --example power_tuning
//! ```

use recode_spmv::core::perfmodel::SpmvPerfModel;
use recode_spmv::prelude::*;

fn main() {
    let udp_bps = 20e9; // a typical measured 64-lane throughput
    println!("Trade space: bytes/nnz -> speedup at fixed power | net W saved at fixed speed\n");
    for sys in [SystemConfig::ddr4(), SystemConfig::hbm2()] {
        println!("{} (max memory power {:.0} W)", sys.mem.name, sys.mem.max_power_w());
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>8} {:>10}",
            "B/nnz", "Gflop/s", "speedup", "net save W", "UDPs", "save %"
        );
        for bpnnz in [12.0, 10.0, 8.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0] {
            let model = SpmvPerfModel { bytes_per_nnz: bpnnz, udp_out_bps_per_accel: udp_bps };
            let hetero = model.evaluate(&sys, Scenario::HeteroUdp);
            let speedup = model.hetero_speedup(&sys);
            let p = PowerSavings::compute(&sys, bpnnz, udp_bps);
            println!(
                "{:>8.1} {:>10.1} {:>11.2}x {:>12.1} {:>8} {:>9.0}%",
                bpnnz,
                hetero.gflops,
                speedup,
                p.net_saving_w,
                p.udps,
                p.net_fraction() * 100.0
            );
        }
        println!();
    }
    println!(
        "reading: at the paper's geomean ~5 B/nnz the DDR4 system either runs 2.4x faster \
         or sheds ~55-65% of its memory power; HBM2 keeps the speedup but pays more UDPs."
    );
}
