//! Graph workload: PageRank over an RMAT power-law web graph via repeated
//! SpMV — the "graph computations … web structure analysis" use case from
//! the paper's introduction. Shows recoding behaviour on *unstructured*
//! matrices, where delta coding gains little and entropy coding carries
//! the compression.
//!
//! ```text
//! cargo run --release --example graph_pagerank
//! ```

use recode_spmv::codec::metrics::CompressionSummary;
use recode_spmv::prelude::*;

fn main() {
    // A 2^13-vertex power-law digraph.
    let adj = generate(&GenSpec::Rmat { scale: 13, edge_factor: 12, values: ValueModel::Ones }, 7);
    let n = adj.nrows();
    println!("web graph: {} vertices, {} edges", n, adj.nnz());

    // Column-normalize: M = A^T D^{-1} so PageRank is x <- d M x + (1-d)/n.
    let out_degree: Vec<f64> = (0..n).map(|v| adj.row(v).0.len() as f64).collect();
    let mut norm = adj.clone();
    {
        // Scale row v (out-links of v) by 1/deg(v); transpose afterwards.
        let row_ptr = norm.row_ptr().to_vec();
        let vals = norm.values_mut();
        for v in 0..n {
            let d = out_degree[v].max(1.0);
            for val in &mut vals[row_ptr[v]..row_ptr[v + 1]] {
                *val = 1.0 / d;
            }
        }
    }
    let m = norm.transpose();

    // Hold the (unstructured) operator compressed.
    let recoded = RecodedSpmv::new(&m, MatrixCodecConfig::udp_dsh()).expect("compress");
    let s = CompressionSummary::of(recoded.compressed());
    println!(
        "compressed operator: {:.2} B/nnz (index {:.2} + value {:.2}) — graphs compress \
         mostly through their regular value streams",
        s.bytes_per_nnz, s.index_bytes_per_nnz, s.value_bytes_per_nnz
    );

    let sys = SystemConfig::ddr4();

    // The iterative workload runs through the pipelined executor: UDP lanes
    // decode tile i+1 while CPU workers multiply tile i, and decoded blocks
    // land in an LRU cache so every iteration after the first pays zero
    // decode cycles.
    let ex = OverlapExecutor::new(
        &recoded,
        OverlapConfig { overlap: true, cache_blocks: 8192, workers: 0 },
    );

    // Power iteration.
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let mut iters = 0;
    let mut cold_decode_cycles = 0u64;
    loop {
        let (next, stats) = ex.spmv(&sys, &rank).expect("pipelined spmv");
        if iters == 0 {
            cold_decode_cycles = stats.overlap.decode_cycles;
            println!(
                "iteration 1 (cold): {} decode cycles, makespan {} vs serial {} ({} saved)",
                stats.overlap.decode_cycles,
                stats.overlap.overlapped_makespan_cycles,
                stats.overlap.serial_makespan_cycles,
                stats.overlap.saved_cycles()
            );
        } else if iters == 1 {
            println!(
                "iteration 2 (warm): {} decode cycles ({} cache hits) — cold paid {}",
                stats.overlap.decode_cycles, stats.overlap.cache_hits, cold_decode_cycles
            );
            assert_eq!(
                stats.overlap.decode_cycles, 0,
                "warm iterations must be served entirely from the decoded-block cache"
            );
        }
        let teleport = (1.0 - damping) / n as f64;
        // Dangling mass is redistributed uniformly.
        let dangling: f64 = (0..n).filter(|&v| out_degree[v] == 0.0).map(|v| rank[v]).sum::<f64>()
            * damping
            / n as f64;
        let mut delta = 0.0;
        for i in 0..n {
            let new = damping * next[i] + teleport + dangling;
            delta += (new - rank[i]).abs();
            rank[i] = new;
        }
        iters += 1;
        if delta < 1e-10 || iters >= 200 {
            break;
        }
    }
    let cache = ex.cache_stats();
    println!(
        "PageRank converged in {iters} iterations ({} cache hits / {} misses across the run)",
        cache.hits, cache.misses
    );

    // Sanity: ranks sum to 1 and hubs outrank leaves.
    let total: f64 = rank.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "rank mass conserved, got {total}");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].partial_cmp(&rank[a]).expect("finite ranks"));
    println!("top 5 vertices by rank:");
    for &v in order.iter().take(5) {
        println!("  v{v}: rank {:.5}, in-degree {}", rank[v], m.row(v).0.len());
    }
    let top_in_deg = m.row(order[0]).0.len();
    let median_in_deg = m.row(order[n / 2]).0.len();
    assert!(top_in_deg >= median_in_deg, "power-law hub should lead");
}
