//! Graph workload: PageRank over an RMAT power-law web graph via repeated
//! SpMV — the "graph computations … web structure analysis" use case from
//! the paper's introduction. Shows recoding behaviour on *unstructured*
//! matrices, where delta coding gains little and entropy coding carries
//! the compression.
//!
//! ```text
//! cargo run --release --example graph_pagerank
//! ```

use recode_spmv::codec::metrics::CompressionSummary;
use recode_spmv::prelude::*;
use recode_spmv::sparse::spmv::{spmv_with_into, SpmvKernel};

fn main() {
    // A 2^13-vertex power-law digraph.
    let adj = generate(&GenSpec::Rmat { scale: 13, edge_factor: 12, values: ValueModel::Ones }, 7);
    let n = adj.nrows();
    println!("web graph: {} vertices, {} edges", n, adj.nnz());

    // Column-normalize: M = A^T D^{-1} so PageRank is x <- d M x + (1-d)/n.
    let out_degree: Vec<f64> = (0..n).map(|v| adj.row(v).0.len() as f64).collect();
    let mut norm = adj.clone();
    {
        // Scale row v (out-links of v) by 1/deg(v); transpose afterwards.
        let row_ptr = norm.row_ptr().to_vec();
        let vals = norm.values_mut();
        for v in 0..n {
            let d = out_degree[v].max(1.0);
            for val in &mut vals[row_ptr[v]..row_ptr[v + 1]] {
                *val = 1.0 / d;
            }
        }
    }
    let m = norm.transpose();

    // Hold the (unstructured) operator compressed.
    let recoded = RecodedSpmv::new(&m, MatrixCodecConfig::udp_dsh()).expect("compress");
    let s = CompressionSummary::of(recoded.compressed());
    println!(
        "compressed operator: {:.2} B/nnz (index {:.2} + value {:.2}) — graphs compress \
         mostly through their regular value streams",
        s.bytes_per_nnz, s.index_bytes_per_nnz, s.value_bytes_per_nnz
    );

    let sys = SystemConfig::ddr4();
    let (decoded, stats) = recoded.decompress_via_udp(&sys).expect("udp decode");
    assert_eq!(decoded, m);
    println!(
        "UDP decode: {:.2} GB/s simulated, {:.1}% lane utilization",
        stats.accel.throughput_bps() / 1e9,
        stats.accel.lane_utilization * 100.0
    );

    // Power iteration.
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut iters = 0;
    loop {
        spmv_with_into(SpmvKernel::RowParallel, &decoded, &rank, &mut next);
        let teleport = (1.0 - damping) / n as f64;
        // Dangling mass is redistributed uniformly.
        let dangling: f64 = (0..n)
            .filter(|&v| out_degree[v] == 0.0)
            .map(|v| rank[v])
            .sum::<f64>()
            * damping
            / n as f64;
        let mut delta = 0.0;
        for i in 0..n {
            let new = damping * next[i] + teleport + dangling;
            delta += (new - rank[i]).abs();
            rank[i] = new;
        }
        iters += 1;
        if delta < 1e-10 || iters >= 200 {
            break;
        }
    }
    println!("PageRank converged in {iters} iterations");

    // Sanity: ranks sum to 1 and hubs outrank leaves.
    let total: f64 = rank.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "rank mass conserved, got {total}");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].partial_cmp(&rank[a]).expect("finite ranks"));
    println!("top 5 vertices by rank:");
    for &v in order.iter().take(5) {
        println!("  v{v}: rank {:.5}, in-degree {}", rank[v], decoded.row(v).0.len());
    }
    let top_in_deg = decoded.row(order[0]).0.len();
    let median_in_deg = decoded.row(order[n / 2]).0.len();
    assert!(top_in_deg >= median_in_deg, "power-law hub should lead");
}
