//! Programmability: write a *new* recoder in UDP assembly and run it on the
//! simulated lane — the paper's core argument is that the accelerator is
//! software, so "if better representations are discovered, they can be
//! implemented for the UDP/recode engine … without requiring CPU code
//! change".
//!
//! Here: a custom run-length + XOR-delta decoder for sensor-style byte
//! streams, assembled, EffCLiP-placed, encoded to 128-bit code words, and
//! executed.
//!
//! ```text
//! cargo run --release --example udp_assembly
//! ```

use recode_spmv::udp::asm::assemble_text;
use recode_spmv::udp::machine::assemble;
use recode_spmv::udp::{Lane, RunConfig};

/// Encoded stream: pairs of `(count, xor_delta)`; each pair expands to
/// `count` bytes, every byte = previous_output_byte ^ xor_delta.
const SOURCE: &str = "
; rle-xor decoder: (count, xdelta) pairs over a running byte state
.entry init
init:
    mov r2, r14          ; output cursor
    limm r1, 0           ; running byte state
    jump head
head:
    inrem r3
    beq r3, r0, done
    insymle r4, 1        ; count
    insymle r5, 1        ; xor delta
    xor r1, r1, r5       ; new state
emit:
    beq r4, r0, head
    storebi r1, r2
    addi r4, r4, -1
    jump emit
done:
    sub r15, r2, r14
    halt
";

fn encode_rle_xor(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut state = 0u8;
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(state ^ b);
        state = b;
        i += run;
    }
    out
}

fn main() {
    // 1. Assemble the custom recoder.
    let program = assemble_text("rle-xor", SOURCE).expect("assembles");
    println!(
        "program: {} code blocks, {} dispatch groups",
        program.blocks.len(),
        program.groups.len()
    );
    let image = assemble(&program).expect("places and encodes");
    println!(
        "EffCLiP: {} code words ({} bytes), utilization {:.1}%",
        image.words.len(),
        image.code_bytes(),
        image.utilization * 100.0
    );
    println!("\ndisassembly of the placed binary:\n{}", image.disassemble());

    // 2. A sensor-style stream: long runs with small level shifts.
    let mut data = Vec::new();
    for step in 0..64u32 {
        let level = (128.0 + 40.0 * ((step as f64) / 9.0).sin()) as u8;
        data.extend(std::iter::repeat_n(level, 50 + (step as usize % 37)));
    }
    let encoded = encode_rle_xor(&data);
    println!(
        "\nsensor stream: {} bytes -> {} encoded ({:.1}x)",
        data.len(),
        encoded.len(),
        data.len() as f64 / encoded.len() as f64
    );

    // 3. Run it on a lane.
    let mut lane = Lane::new();
    let r = lane.run(&image, &encoded, encoded.len() * 8, RunConfig::default()).expect("decode");
    assert_eq!(r.output, data, "UDP program must invert the encoder");
    let us = r.cycles as f64 / 1.6e9 * 1e6;
    println!(
        "lane decode: {} cycles ({us:.2} us at 1.6 GHz) -> {:.2} GB/s on one lane, \
         ~{:.0} GB/s on 64 lanes",
        r.cycles,
        data.len() as f64 / (r.cycles as f64 / 1.6e9) / 1e9,
        64.0 * data.len() as f64 / (r.cycles as f64 / 1.6e9) / 1e9
    );
    println!("\nno CPU-side change was needed to adopt this representation — that is the point.");
}
