//! PDE workload: solve a 2D Poisson problem (steady-state heat) with
//! conjugate gradients, holding the operator in the compressed CPU-UDP
//! representation — the "partial differential equation solvers" use case
//! from the paper's introduction.
//!
//! The matrix is UDP-decoded once (as the DMA+UDP pipeline would stream
//! it), the solver then iterates; every SpMV's memory traffic is accounted
//! at the compressed footprint.
//!
//! ```text
//! cargo run --release --example pde_heat_cg
//! ```

use recode_spmv::prelude::*;
use recode_spmv::sparse::solve::conjugate_gradient;
use recode_spmv::sparse::spmv::SpmvKernel;

/// 2D Laplacian (5-point, Dirichlet boundaries) on an n x n grid.
fn laplacian_2d(n: usize) -> Csr {
    let mut coo = Coo::new(n * n, n * n).unwrap();
    let idx = |x: usize, y: usize| y * n + x;
    for y in 0..n {
        for x in 0..n {
            let r = idx(x, y);
            coo.push(r, r, 4.0).unwrap();
            if x > 0 {
                coo.push(r, idx(x - 1, y), -1.0).unwrap();
            }
            if x + 1 < n {
                coo.push(r, idx(x + 1, y), -1.0).unwrap();
            }
            if y > 0 {
                coo.push(r, idx(x, y - 1), -1.0).unwrap();
            }
            if y + 1 < n {
                coo.push(r, idx(x, y + 1), -1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

fn main() {
    let grid = 150;
    let a = laplacian_2d(grid);
    println!("2D Poisson operator: {} unknowns, {} non-zeros", a.nrows(), a.nnz());

    // Store the operator compressed, as the heterogeneous system would.
    let sys = SystemConfig::ddr4();
    let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).expect("compress");
    let bpnnz = recoded.compressed().bytes_per_nnz();
    println!("operator footprint: {bpnnz:.2} B/nnz vs 12.00 raw");

    // Stream it through the UDP once (the paper's Fig. 6 flow) and verify
    // the solver sees exactly the original operator.
    let (decoded, stats) = recoded.decompress_via_udp(&sys).expect("udp decode");
    assert_eq!(decoded, a);
    println!(
        "UDP streamed {} blocks in {:.0} kcycles makespan ({:.2} GB/s decompressed)",
        stats.accel.jobs,
        stats.accel.makespan_cycles as f64 / 1e3,
        stats.accel.throughput_bps() / 1e9
    );

    // Heat source in the middle of the plate.
    let mut b = vec![0.0; a.nrows()];
    b[(grid / 2) * grid + grid / 2] = 1.0;
    let sol = conjugate_gradient(&decoded, &b, SpmvKernel::RowParallel, 1e-10, 2000);
    assert!(sol.converged, "CG must converge on the SPD Laplacian");
    let (solution, iters) = (sol.x, sol.iterations);
    println!("CG converged in {iters} iterations (residual {:.2e})", sol.residual);

    // Temperature should spread symmetrically from the source.
    let center = solution[(grid / 2) * grid + grid / 2];
    let edge = solution[0];
    println!("temperature: center {center:.4}, corner {edge:.6}");
    assert!(center > edge, "heat concentrates at the source");

    // Traffic accounting: per CG iteration the operator is re-streamed.
    let raw_gb = (a.nnz() * 12) as f64 / 1e9;
    let comp_gb = stats.compressed_bytes as f64 / 1e9;
    println!(
        "per-iteration operator traffic: {:.3} GB raw vs {:.3} GB compressed ({:.2}x); \
         over {iters} iterations: {:.2} GB saved",
        raw_gb,
        comp_gb,
        raw_gb / comp_gb,
        (raw_gb - comp_gb) * iters as f64
    );
}
