//! Quickstart: compress a sparse matrix the way the CPU-UDP system stores
//! it, decode it through the simulated accelerator, multiply, and print the
//! three-scenario performance picture from the paper's Figs. 14/16.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recode_spmv::codec::metrics::CompressionSummary;
use recode_spmv::core::measure::measure_udp_decomp;
use recode_spmv::core::{perfmodel::SpmvPerfModel, report};
use recode_spmv::prelude::*;
use recode_spmv::sparse::spmv::SpmvKernel;

fn main() {
    // A 2D nine-point stencil, like the PDE systems in the paper's intro.
    let a = generate(
        &GenSpec::Stencil2D {
            nx: 200,
            ny: 200,
            points: 9,
            values: ValueModel::QuantizedGaussian { levels: 1024 },
        },
        2019,
    );
    println!("matrix: {}x{}, {} non-zeros", a.nrows(), a.ncols(), a.nnz());

    // 1. Recode: Delta+Snappy+Huffman on 8 KB blocks (indices), SH (values).
    let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).expect("compress");
    let summary = CompressionSummary::of(recoded.compressed());
    println!(
        "compressed: {:.2} B/nnz (raw CSR 12.00) -> {:.2}x less memory traffic",
        summary.bytes_per_nnz, summary.traffic_reduction
    );

    // 2. Execute on the heterogeneous system: UDP lanes decode every block,
    //    the CPU multiplies. Bit-identical to the uncompressed kernel.
    let sys = SystemConfig::ddr4();
    let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let (y, stats) = recoded.spmv(&sys, SpmvKernel::RowParallel, &x).expect("recoded spmv");
    let y_ref = spmv(&a, &x);
    assert_eq!(y, y_ref, "recoded SpMV must match the uncompressed kernel");
    println!(
        "UDP decode: {} blocks, {:.1}% lane utilization, {:.2} GB/s simulated decompression",
        stats.accel.jobs,
        stats.accel.lane_utilization * 100.0,
        stats.accel.throughput_bps() / 1e9
    );

    // 3. The modeled system-level picture (paper Figs. 14/16).
    let m = measure_udp_decomp(recoded.compressed(), &sys.udp, 16).expect("measure");
    let model = SpmvPerfModel {
        bytes_per_nnz: summary.bytes_per_nnz,
        udp_out_bps_per_accel: m.accel_out_bps,
    };
    println!("\nSpMV on the 100 GB/s DDR4 system:");
    print!("{}", report::scenarios(&model.evaluate_all(&sys)));
    let p = PowerSavings::compute(&sys, summary.bytes_per_nnz, m.accel_out_bps);
    println!(
        "\nor, at fixed performance: {:.1} W of {:.0} W memory power saved ({} UDPs, {:.2} W)",
        p.net_saving_w, p.max_power_w, p.udps, p.udp_power_w
    );
}
