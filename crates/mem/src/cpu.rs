//! Host CPU model.
//!
//! The paper's platform is a dual-socket Xeon E5-2670v3 (12 cores/socket,
//! 2.3 GHz); its SpMV is memory-bandwidth-bound ("even a few cores is
//! plenty to keep up with a 100 GB/s memory system"), so the CPU model has
//! two halves:
//!
//! * **SpMV rate** — purely bandwidth-bound: `2 flops × BW / bytes-per-nnz`,
//!   with a generous compute ceiling that never binds in practice.
//! * **Software recoding throughput** — per-thread Snappy and DSH
//!   decompression rates. These are *calibrated constants*: the paper's
//!   machine is unavailable, so we fit them to the ratios its figures
//!   report (32-thread CPU Snappy ≈ several GB/s so the UDP's ~24 GB/s is a
//!   geomean ~7× win; DSH-on-CPU is Huffman-bound and so slow that
//!   Decomp(CPU)+SpMV lands >30× below the heterogeneous system). The real
//!   kernels in `recode-codec` can be timed on the host for a qualitative
//!   check, but reproduction uses these constants for determinism.

use crate::memsys::MemorySystem;
use serde::{Deserialize, Serialize};

/// CPU configuration and software-codec throughput constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Hardware threads used for recoding (paper Fig. 12 uses 32).
    pub threads: usize,
    /// Clock, Hz (Xeon E5-2670v3: 2.3 GHz).
    pub clock_hz: f64,
    /// Peak double-precision flops per cycle per thread (compute ceiling;
    /// never the SpMV bottleneck at these bandwidths).
    pub flops_per_cycle: f64,
    /// Per-thread Snappy decompression throughput (output bytes/s) —
    /// calibrated, see module docs.
    pub snappy_decomp_bps_per_thread: f64,
    /// Per-thread Delta+Snappy+Huffman decompression throughput (output
    /// bytes/s) — Huffman-bound, calibrated.
    pub dsh_decomp_bps_per_thread: f64,
    /// Per-thread Snappy *compression* throughput (bytes/s), for encode-side
    /// accounting.
    pub snappy_comp_bps_per_thread: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            threads: 32,
            clock_hz: 2.3e9,
            flops_per_cycle: 8.0,
            snappy_decomp_bps_per_thread: 0.10e9,
            dsh_decomp_bps_per_thread: 0.05e9,
            snappy_comp_bps_per_thread: 0.12e9,
        }
    }
}

impl CpuModel {
    /// Peak arithmetic rate (flops/s) across all threads.
    pub fn peak_flops(&self) -> f64 {
        self.threads as f64 * self.clock_hz * self.flops_per_cycle
    }

    /// Bandwidth-bound SpMV rate in flops/s when each non-zero moves
    /// `bytes_per_nnz` bytes through `mem` (2 flops per non-zero). This is
    /// the model behind the paper's Fig. 3: at 12 B/nnz and 100 GB/s,
    /// ~16.7 Gflops.
    pub fn spmv_flops(&self, mem: &MemorySystem, bytes_per_nnz: f64) -> f64 {
        assert!(bytes_per_nnz > 0.0, "bytes per nnz must be positive");
        let bw_bound = 2.0 * mem.peak_bw_bps / bytes_per_nnz;
        bw_bound.min(self.peak_flops())
    }

    /// Aggregate CPU Snappy decompression throughput (output bytes/s) using
    /// `threads` threads.
    pub fn snappy_decomp_bps(&self, threads: usize) -> f64 {
        threads.min(self.threads) as f64 * self.snappy_decomp_bps_per_thread
    }

    /// Aggregate CPU DSH decompression throughput (output bytes/s).
    pub fn dsh_decomp_bps(&self, threads: usize) -> f64 {
        threads.min(self.threads) as f64 * self.dsh_decomp_bps_per_thread
    }

    /// Aggregate CPU Snappy compression throughput (input bytes/s).
    pub fn snappy_comp_bps(&self, threads: usize) -> f64 {
        threads.min(self.threads) as f64 * self.snappy_comp_bps_per_thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_uncompressed_spmv_rate() {
        // 12 B/nnz on a 100 GB/s system: 2 * 100e9 / 12 = 16.7 Gflops.
        let cpu = CpuModel::default();
        let g = cpu.spmv_flops(&MemorySystem::ddr4(), 12.0) / 1e9;
        assert!((g - 16.666).abs() < 0.01, "got {g}");
    }

    #[test]
    fn hbm_scales_spmv_10x() {
        let cpu = CpuModel::default();
        let ddr = cpu.spmv_flops(&MemorySystem::ddr4(), 12.0);
        let hbm = cpu.spmv_flops(&MemorySystem::hbm2(), 12.0);
        assert!((hbm / ddr - 10.0).abs() < 1e-6);
    }

    #[test]
    fn compute_ceiling_binds_only_at_absurd_compression() {
        let cpu = CpuModel::default();
        let mem = MemorySystem::hbm2();
        // At 0.001 B/nnz the bandwidth bound (2 Pflops) exceeds the CPU peak.
        let capped = cpu.spmv_flops(&mem, 0.001);
        assert!((capped - cpu.peak_flops()).abs() < 1.0);
        // At realistic 5 B/nnz it does not bind.
        assert!(cpu.spmv_flops(&mem, 5.0) < cpu.peak_flops());
    }

    #[test]
    fn thread_scaling_saturates_at_model_limit() {
        let cpu = CpuModel::default();
        assert_eq!(cpu.snappy_decomp_bps(64), cpu.snappy_decomp_bps(32));
        assert!((cpu.snappy_decomp_bps(32) - 3.2e9).abs() < 1e-3);
        assert!(cpu.dsh_decomp_bps(32) < cpu.snappy_decomp_bps(32));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bytes_per_nnz_rejected() {
        let _ = CpuModel::default().spmv_flops(&MemorySystem::ddr4(), 0.0);
    }
}
