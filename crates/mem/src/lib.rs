//! # recode-mem — memory-system and CPU models
//!
//! The paper's evaluation reduces the hardware to a small set of
//! well-sourced constants (§IV-A); this crate is their home:
//!
//! * [`memsys`] — DDR4 (AMD Epyc single-die: 100 GB/s, 100 pJ/bit) and HBM2
//!   (4 stacks: 1 TB/s, 8 pJ/bit) bandwidth/energy models. Max memory power
//!   falls out as 80 W (DDR) and 64 W (HBM), exactly the paper's Fig. 16/17
//!   denominators.
//! * [`dma`] — the lightweight DMA engine that streams compressed blocks
//!   from DRAM into UDP local memory (Thanh-Hoang et al., DATE'16 style).
//! * [`traffic`] — byte-level traffic accounting by source (compressed
//!   stream, fallback re-fetch, vectors, row pointers) for the trace path.
//! * [`cpu`] — the host CPU: bandwidth-bound SpMV rate plus software
//!   recoding throughputs *calibrated to the paper's measurements* on its
//!   Xeon E5-2670v3 platform (see DESIGN.md §3, substitution 4 — the real
//!   machine is unavailable, so constants are fitted to the reported
//!   ratios and used consistently across all experiments).

pub mod cpu;
pub mod dma;
pub mod memsys;
pub mod traffic;

pub use cpu::CpuModel;
pub use dma::DmaModel;
pub use memsys::MemorySystem;
pub use traffic::{SourceTraffic, TrafficLedger, TrafficReport, TrafficSource};
