//! Memory-traffic accounting by source: which part of the pipeline moved
//! how many bytes through the DRAM interface.
//!
//! The paper's whole argument is data movement, so the trace path tracks
//! not just *how much* traffic SpMV generates but *why*: compressed-stream
//! reads, fallback re-fetches after unrecoverable blocks, dense-vector
//! traffic, and the raw `row_ptr` array. A [`TrafficLedger`] is plain
//! counters (filled single-threaded on the exec path); [`TrafficReport`]
//! is its serializable snapshot with time/energy attached via a
//! [`MemorySystem`].

use crate::memsys::MemorySystem;
use serde::{Deserialize, Serialize};

/// Who caused a memory transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficSource {
    /// Compressed index/value block streams (the recoded payload).
    CompressedStream,
    /// Uncompressed re-fetch of a block that failed decode (degraded mode).
    FallbackRefetch,
    /// Dense input/output vectors (`x` and `y`).
    Vectors,
    /// Raw row-pointer array (kept uncompressed, as in the paper).
    RowPtr,
    /// Decoded blocks served from the executor's block cache instead of
    /// being re-streamed and re-decoded (reads the cache *avoided* turning
    /// into DRAM traffic would otherwise not be visible in the ledger).
    DecodedCache,
}

impl TrafficSource {
    /// All sources, in a stable order (trace-schema order).
    pub const ALL: [TrafficSource; 5] = [
        TrafficSource::CompressedStream,
        TrafficSource::FallbackRefetch,
        TrafficSource::Vectors,
        TrafficSource::RowPtr,
        TrafficSource::DecodedCache,
    ];

    /// Stable lowercase name used in trace counters
    /// (`mem.read.<name>` / `mem.write.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            TrafficSource::CompressedStream => "compressed_stream",
            TrafficSource::FallbackRefetch => "fallback_refetch",
            TrafficSource::Vectors => "vectors",
            TrafficSource::RowPtr => "row_ptr",
            TrafficSource::DecodedCache => "decoded_cache",
        }
    }

    fn index(self) -> usize {
        match self {
            TrafficSource::CompressedStream => 0,
            TrafficSource::FallbackRefetch => 1,
            TrafficSource::Vectors => 2,
            TrafficSource::RowPtr => 3,
            TrafficSource::DecodedCache => 4,
        }
    }
}

/// Read/write byte counters for every [`TrafficSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    read: [u64; 5],
    write: [u64; 5],
}

impl TrafficLedger {
    /// Fresh zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` read on behalf of `source`.
    pub fn read(&mut self, source: TrafficSource, bytes: u64) {
        self.read[source.index()] += bytes;
    }

    /// Records `bytes` written on behalf of `source`.
    pub fn write(&mut self, source: TrafficSource, bytes: u64) {
        self.write[source.index()] += bytes;
    }

    /// Bytes read for `source`.
    pub fn read_bytes(&self, source: TrafficSource) -> u64 {
        self.read[source.index()]
    }

    /// Bytes written for `source`.
    pub fn write_bytes(&self, source: TrafficSource) -> u64 {
        self.write[source.index()]
    }

    /// Total bytes moved (reads + writes, all sources).
    pub fn total_bytes(&self) -> u64 {
        self.read.iter().sum::<u64>() + self.write.iter().sum::<u64>()
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &TrafficLedger) {
        for i in 0..TrafficSource::ALL.len() {
            self.read[i] += other.read[i];
            self.write[i] += other.write[i];
        }
    }

    /// Serializable snapshot with modeled stream time and energy on `mem`.
    pub fn report(&self, mem: &MemorySystem) -> TrafficReport {
        let total = self.total_bytes();
        TrafficReport {
            memory: mem.name.to_string(),
            by_source: TrafficSource::ALL
                .iter()
                .map(|&s| SourceTraffic {
                    source: s,
                    read_bytes: self.read_bytes(s),
                    write_bytes: self.write_bytes(s),
                })
                .collect(),
            total_bytes: total,
            stream_seconds: mem.stream_seconds(total),
            transfer_joules: mem.transfer_joules(total),
        }
    }
}

/// One source's share of the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceTraffic {
    /// Traffic source.
    pub source: TrafficSource,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

/// Serializable traffic snapshot (trace-document `mem_traffic` section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Memory-system name the time/energy numbers assume.
    pub memory: String,
    /// Per-source read/write bytes, in [`TrafficSource::ALL`] order.
    pub by_source: Vec<SourceTraffic>,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Seconds to stream the total at peak bandwidth.
    pub stream_seconds: f64,
    /// Energy to move the total through the memory interface.
    pub transfer_joules: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_attributes_by_source_and_direction() {
        let mut t = TrafficLedger::new();
        t.read(TrafficSource::CompressedStream, 1000);
        t.read(TrafficSource::CompressedStream, 500);
        t.read(TrafficSource::Vectors, 800);
        t.write(TrafficSource::Vectors, 400);
        t.read(TrafficSource::FallbackRefetch, 64);
        assert_eq!(t.read_bytes(TrafficSource::CompressedStream), 1500);
        assert_eq!(t.read_bytes(TrafficSource::Vectors), 800);
        assert_eq!(t.write_bytes(TrafficSource::Vectors), 400);
        assert_eq!(t.read_bytes(TrafficSource::RowPtr), 0);
        assert_eq!(t.total_bytes(), 2764);
    }

    #[test]
    fn merge_is_fieldwise() {
        let mut a = TrafficLedger::new();
        a.read(TrafficSource::RowPtr, 10);
        let mut b = TrafficLedger::new();
        b.read(TrafficSource::RowPtr, 5);
        b.write(TrafficSource::Vectors, 7);
        a.merge(&b);
        assert_eq!(a.read_bytes(TrafficSource::RowPtr), 15);
        assert_eq!(a.write_bytes(TrafficSource::Vectors), 7);
    }

    #[test]
    fn report_charges_time_and_energy_for_the_total() {
        let mut t = TrafficLedger::new();
        t.read(TrafficSource::CompressedStream, 100_000_000_000);
        let r = t.report(&MemorySystem::ddr4());
        assert_eq!(r.total_bytes, 100_000_000_000);
        assert!((r.stream_seconds - 1.0).abs() < 1e-12);
        assert_eq!(r.by_source.len(), 5);
        assert_eq!(r.by_source[0].source, TrafficSource::CompressedStream);
        assert_eq!(r.by_source[0].read_bytes, 100_000_000_000);
    }

    #[test]
    fn source_names_are_stable() {
        let names: Vec<&str> = TrafficSource::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["compressed_stream", "fallback_refetch", "vectors", "row_ptr", "decoded_cache"]
        );
    }
}
