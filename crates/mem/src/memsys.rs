//! Bandwidth and energy models for the two memory systems the paper
//! evaluates.

use serde::{Deserialize, Serialize};

/// A DRAM memory system characterized by peak bandwidth and transfer energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Display name ("DDR4-100GB/s", "HBM2-1TB/s").
    pub name: &'static str,
    /// Peak sustainable bandwidth, bytes/second.
    pub peak_bw_bps: f64,
    /// Energy to read one bit from DRAM and ship it to the chip.
    pub pj_per_bit: f64,
}

impl MemorySystem {
    /// The paper's DDR4 system: one die of a 2-die AMD Epyc, 100 GB/s at
    /// 100 pJ/bit.
    pub const fn ddr4() -> Self {
        MemorySystem { name: "DDR4-100GB/s", peak_bw_bps: 100e9, pj_per_bit: 100.0 }
    }

    /// The paper's HBM2 system: four stacks, 1 TB/s at 8 pJ/bit
    /// (Chatterjee et al., HPCA'17).
    pub const fn hbm2() -> Self {
        MemorySystem { name: "HBM2-1TB/s", peak_bw_bps: 1000e9, pj_per_bit: 8.0 }
    }

    /// Power when streaming at full bandwidth:
    /// `bytes/s × 8 bits × pJ/bit`. DDR4: 80 W; HBM2: 64 W (paper §V-B).
    pub fn max_power_w(&self) -> f64 {
        self.power_at_bw(self.peak_bw_bps)
    }

    /// Power when streaming at `bw` bytes/second (linear energy model —
    /// every transferred bit costs `pj_per_bit`).
    pub fn power_at_bw(&self, bw: f64) -> f64 {
        assert!(bw >= 0.0, "bandwidth must be non-negative");
        bw * 8.0 * self.pj_per_bit * 1e-12
    }

    /// Seconds to stream `bytes` at peak bandwidth.
    pub fn stream_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.peak_bw_bps
    }

    /// Energy to move `bytes` through the memory interface.
    pub fn transfer_joules(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.pj_per_bit * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_numbers() {
        // §V-B: "100GB/s x 100pJ/bit x 8 bits/byte = 80W" and
        // "1000 GB/s x 8pJ/bit x 8 bits/byte = 64W".
        assert!((MemorySystem::ddr4().max_power_w() - 80.0).abs() < 1e-9);
        assert!((MemorySystem::hbm2().max_power_w() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_linearly_with_bandwidth() {
        let m = MemorySystem::ddr4();
        assert!((m.power_at_bw(50e9) - 40.0).abs() < 1e-9);
        assert_eq!(m.power_at_bw(0.0), 0.0);
    }

    #[test]
    fn stream_time_and_energy() {
        let m = MemorySystem::ddr4();
        assert!((m.stream_seconds(100_000_000_000) - 1.0).abs() < 1e-12);
        // 1 GB at 100 pJ/bit = 1e9 * 8 * 100e-12 = 0.8 J.
        assert!((m.transfer_joules(1_000_000_000) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn hbm_moves_bits_cheaper_than_ddr() {
        let ddr = MemorySystem::ddr4();
        let hbm = MemorySystem::hbm2();
        assert!(hbm.transfer_joules(1 << 30) < ddr.transfer_joules(1 << 30) / 10.0);
    }
}
