//! The DMA engine that moves compressed blocks from the memory controller
//! into UDP local memory (paper §III-C, citing the DLT accelerator of
//! Thanh-Hoang et al.). It acts as an L2 agent: transfers are streaming,
//! on-die, and cheap — the model charges a small per-block descriptor
//! overhead plus bandwidth-limited transfer time.

use serde::{Deserialize, Serialize};

/// DMA engine model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Per-block descriptor setup/completion overhead, seconds.
    pub per_block_overhead_s: f64,
    /// Peak on-die transfer bandwidth, bytes/second (NoC-limited; well above
    /// DRAM bandwidth so DRAM remains the bottleneck, as in the paper).
    pub peak_bw_bps: f64,
}

impl Default for DmaModel {
    fn default() -> Self {
        // 100 ns per descriptor; 512 GB/s on-die streaming.
        DmaModel { per_block_overhead_s: 100e-9, peak_bw_bps: 512e9 }
    }
}

impl DmaModel {
    /// Seconds to move `blocks` block descriptors totalling `bytes`.
    pub fn transfer_seconds(&self, blocks: u64, bytes: u64) -> f64 {
        blocks as f64 * self.per_block_overhead_s + bytes as f64 / self.peak_bw_bps
    }

    /// Effective bandwidth for a given block size — shows when small blocks
    /// make the descriptor overhead visible (an ablation axis).
    pub fn effective_bw(&self, block_bytes: usize) -> f64 {
        let t = self.transfer_seconds(1, block_bytes as u64);
        block_bytes as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_hurts_small_blocks_more() {
        let dma = DmaModel::default();
        let small = dma.effective_bw(512);
        let big = dma.effective_bw(64 * 1024);
        assert!(small < big);
        // 8 KB blocks should still achieve a healthy fraction of peak.
        let mid = dma.effective_bw(8 * 1024);
        assert!(mid > 0.1 * dma.peak_bw_bps, "8KB eff bw {mid:.3e}");
    }

    #[test]
    fn transfer_time_components() {
        let dma = DmaModel { per_block_overhead_s: 1e-6, peak_bw_bps: 1e9 };
        let t = dma.transfer_seconds(10, 1_000_000);
        assert!((t - (10e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn dma_is_faster_than_dram() {
        // Invariant the paper relies on: DMA never becomes the bottleneck.
        let dma = DmaModel::default();
        assert!(dma.peak_bw_bps > crate::memsys::MemorySystem::ddr4().peak_bw_bps);
    }
}
