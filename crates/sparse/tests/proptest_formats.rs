//! Property tests pinning the grown kernel formats: CSR → SELL-C-σ and
//! CSR → partially-diagonal must round-trip the exact (row, col, value)
//! multiset, and neither padding (SELL-C-σ's PAD slots) nor splitting
//! (partially-diagonal's dense-run extraction) may change `y = A·x`
//! relative to the CSR kernels — across arbitrary random matrices and the
//! structural edge cases (empty rows, singleton rows, fully dense rows,
//! explicitly stored zeros).

use proptest::prelude::*;
use recode_sparse::formats::{PartialDiag, SellCs};
use recode_sparse::prelude::*;

/// Strategy: a random COO matrix up to 24x24 with up to 120 entries
/// (duplicates allowed; integer values keep kernel comparisons exact).
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (1usize..24, 1usize..24).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec((0..nrows, 0..ncols, -8i32..8), 0..120).prop_map(move |entries| {
            let mut coo = Coo::new(nrows, ncols).unwrap();
            for (r, c, v) in entries {
                coo.push(r, c, v as f64).unwrap();
            }
            coo
        })
    })
}

/// The (row, col, value-bits) multiset of a CSR matrix, sorted.
fn triplets(a: &Csr) -> Vec<(usize, u32, u64)> {
    let mut out = Vec::with_capacity(a.nnz());
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (c, v) in cols.iter().zip(vals) {
            out.push((r, *c, v.to_bits()));
        }
    }
    out.sort_unstable();
    out
}

/// A matrix guaranteed to hold the structural edge cases: row 0 fully
/// dense, row 1 empty, row 2 a singleton, the rest sparse.
fn edge_case_matrix(n: usize, extra: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(n, n).unwrap();
    for c in 0..n {
        coo.push(0, c, 1.0 + c as f64).unwrap();
    }
    coo.push(2, n / 2, -3.0).unwrap();
    for &(r, c, v) in extra {
        if r != 1 {
            coo.push(r.min(n - 1), c.min(n - 1), v).unwrap();
        }
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sellcs_round_trips_the_exact_multiset(coo in coo_strategy(), c in 1usize..9, w in 1usize..5) {
        let a = coo.to_csr();
        let s = SellCs::from_csr(&a, c, w * c).unwrap();
        let back = s.to_csr();
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(triplets(&back), triplets(&a));
    }

    #[test]
    fn pdiag_round_trips_the_exact_multiset(coo in coo_strategy(), t in 1usize..11) {
        let a = coo.to_csr();
        let p = PartialDiag::from_csr(&a, t as f64 / 10.0).unwrap();
        let back = p.to_csr();
        prop_assert_eq!(&back, &a);
        prop_assert_eq!(triplets(&back), triplets(&a));
        prop_assert_eq!(p.nnz(), a.nnz());
    }

    #[test]
    fn sellcs_padding_never_changes_spmv(coo in coo_strategy(), c in 1usize..9) {
        // SELL-C-σ keeps per-row left-to-right accumulation, so it is
        // bit-identical to serial CSR — padding contributes exact zeros.
        let a = coo.to_csr();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut y = vec![0.0; a.nrows()];
        SellCs::from_csr(&a, c, 4 * c).unwrap().spmv_into(&x, &mut y);
        prop_assert_eq!(y, spmv(&a, &x));
    }

    #[test]
    fn pdiag_split_never_changes_spmv(coo in coo_strategy(), t in 1usize..11) {
        // The diagonal/remainder split reassociates mixed rows, so the
        // oracle is a tolerance, not bit equality.
        let a = coo.to_csr();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut y = vec![0.0; a.nrows()];
        PartialDiag::from_csr(&a, t as f64 / 10.0).unwrap().spmv_into(&x, &mut y);
        let want = spmv(&a, &x);
        for (g, w) in y.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{} vs {}", g, w);
        }
    }

    #[test]
    fn edge_case_rows_survive_both_formats(
        n in 4usize..24,
        c in 1usize..9,
        t in 1usize..11,
        extra in proptest::collection::vec((3usize..24, 0usize..24, -4i32..5), 0..40),
    ) {
        // Fully dense row 0, empty row 1, singleton row 2 — the shapes
        // that break padding and window-sorting logic first.
        let extra: Vec<(usize, usize, f64)> =
            extra.iter().map(|&(r, c2, v)| (r, c2, v as f64)).collect();
        let a = edge_case_matrix(n, &extra);
        prop_assert_eq!(a.row(0).0.len(), n, "row 0 must be fully dense");
        prop_assert_eq!(a.row(1).0.len(), 0, "row 1 must be empty");

        let s = SellCs::from_csr(&a, c, 4 * c).unwrap();
        prop_assert_eq!(s.to_csr(), a.clone());
        let p = PartialDiag::from_csr(&a, t as f64 / 10.0).unwrap();
        prop_assert_eq!(p.to_csr(), a.clone());

        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let want = spmv(&a, &x);
        let mut y = vec![0.0; n];
        s.spmv_into(&x, &mut y);
        prop_assert_eq!(&y, &want);
        p.spmv_into(&x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{} vs {}", g, w);
        }
    }
}

/// Explicitly stored zeros are part of the multiset contract: the
/// partially-diagonal split must carry them through both the extracted
/// diagonals (via its presence mask) and the remainder.
#[test]
fn pdiag_preserves_explicitly_stored_zeros() {
    let a = Csr::try_from_parts(
        4,
        4,
        vec![0, 2, 4, 5, 7],
        vec![0, 1, 1, 2, 2, 0, 3],
        vec![1.0, 0.0, 0.0, 2.0, 0.0, 5.0, 0.0],
    )
    .unwrap();
    for t in [0.3, 0.6, 1.0] {
        let p = PartialDiag::from_csr(&a, t).unwrap();
        assert_eq!(p.to_csr(), a, "threshold {t}");
        assert_eq!(p.nnz(), 7, "threshold {t}");
    }
}

/// Degenerate shapes: empty matrices and single-row/column strips.
#[test]
fn degenerate_shapes_round_trip() {
    let shapes: Vec<Csr> = vec![
        Csr::try_from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap(),
        Csr::try_from_parts(1, 5, vec![0, 3], vec![0, 2, 4], vec![1.0, -2.0, 3.0]).unwrap(),
        Csr::try_from_parts(5, 1, vec![0, 1, 1, 2, 2, 3], vec![0, 0, 0], vec![4.0, 5.0, 6.0])
            .unwrap(),
    ];
    for a in &shapes {
        let s = SellCs::from_csr(a, 4, 8).unwrap();
        assert_eq!(&s.to_csr(), a);
        let p = PartialDiag::from_csr(a, 0.6).unwrap();
        assert_eq!(&p.to_csr(), a);
    }
}
