//! Property-based tests for the sparse substrate: conversion round-trips and
//! kernel agreement on arbitrary random matrices.

use proptest::prelude::*;
use recode_sparse::formats::{BitmaskBlockCsr, Ell, SellCs, VarintCsr};
use recode_sparse::prelude::*;
use recode_sparse::reorder::{reverse_cuthill_mckee, Permutation};
use recode_sparse::util::approx_eq;

/// Strategy: a random COO matrix up to 24x24 with up to 120 entries
/// (duplicates allowed, values exact in f64 so kernel comparisons are exact).
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (1usize..24, 1usize..24).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec((0..nrows, 0..ncols, -8i32..8), 0..120).prop_map(move |entries| {
            let mut coo = Coo::new(nrows, ncols).unwrap();
            for (r, c, v) in entries {
                coo.push(r, c, v as f64).unwrap();
            }
            coo
        })
    })
}

proptest! {
    #[test]
    fn csr_validates_after_coo_conversion(coo in coo_strategy()) {
        let a = coo.to_csr();
        let checked = Csr::try_from_parts(
            a.nrows(), a.ncols(),
            a.row_ptr().to_vec(), a.col_idx().to_vec(), a.values().to_vec(),
        );
        prop_assert!(checked.is_ok(), "{:?}", checked.err());
    }

    #[test]
    fn csr_csc_round_trip(coo in coo_strategy()) {
        let a = coo.to_csr();
        prop_assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn csr_coo_round_trip(coo in coo_strategy()) {
        let a = coo.to_csr();
        prop_assert_eq!(a.to_coo().to_csr(), a);
    }

    #[test]
    fn transpose_is_involutive(coo in coo_strategy()) {
        let a = coo.to_csr();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn all_kernels_match_dense_reference(
        coo in coo_strategy(),
        xs in proptest::collection::vec(-4i32..4, 24),
    ) {
        let a = coo.to_csr();
        let x: Vec<f64> = xs.iter().take(a.ncols()).map(|&v| v as f64).collect();
        // Pad if the strategy produced fewer entries than columns.
        let mut x = x;
        x.resize(a.ncols(), 1.0);
        let want = a.to_dense().matvec(&x);
        for k in SpmvKernel::ALL {
            let got = recode_sparse::spmv::spmv_with(k, &a, &x);
            for (g, w) in got.iter().zip(&want) {
                // Integer-valued inputs keep every kernel exact.
                prop_assert!(approx_eq(*g, *w, 1e-12), "{k:?}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn matrix_market_round_trip(coo in coo_strategy()) {
        let a = coo.to_csr();
        let mut buf = Vec::new();
        recode_sparse::io::write_matrix_market(&a, &mut buf).unwrap();
        let b = recode_sparse::io::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rcm_is_always_a_valid_permutation(coo in coo_strategy()) {
        let a = coo.to_csr();
        if a.nrows() != a.ncols() {
            return Ok(());
        }
        // Constructing the Permutation validates bijectivity internally.
        let perm = reverse_cuthill_mckee(&a);
        prop_assert_eq!(perm.len(), a.nrows());
        let b = perm.apply_symmetric(&a);
        prop_assert_eq!(b.nnz(), a.nnz());
        // Spectra are preserved under symmetric permutation; cheap proxy:
        // multiset of values and row-count preserved.
        let mut va: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
        let mut vb: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
        va.sort_unstable();
        vb.sort_unstable();
        prop_assert_eq!(va, vb);
    }

    #[test]
    fn nnz_blocks_partition_exactly(coo in coo_strategy(), bs in 1usize..40) {
        let a = coo.to_csr();
        let blocks = a.nnz_blocks(bs);
        let mut expected_start = 0usize;
        for b in &blocks {
            prop_assert_eq!(b.start, expected_start);
            prop_assert!(b.end - b.start <= bs);
            prop_assert!(b.end > b.start);
            expected_start = b.end;
        }
        prop_assert_eq!(expected_start, a.nnz());
    }

    #[test]
    fn identity_permutation_roundtrip(n in 1usize..30) {
        let p = Permutation::identity(n);
        let inv = p.inverse();
        for (i, &v) in inv.iter().enumerate() {
            prop_assert_eq!(v as usize, i);
        }
    }
}

proptest! {
    #[test]
    fn all_formats_round_trip_and_agree_on_spmv(coo in coo_strategy(), c in 1usize..9) {
        let a = coo.to_csr();
        let mut x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 5) as f64) - 2.0).collect();
        x.resize(a.ncols(), 1.0);
        let want = a.to_dense().matvec(&x);
        let close = |got: &[f64]| {
            got.iter().zip(&want).all(|(g, w)| (g - w).abs() <= 1e-9 * w.abs().max(1.0))
        };

        let ell = Ell::from_csr(&a).unwrap();
        prop_assert_eq!(ell.to_csr(), a.clone());
        let mut y = vec![0.0; a.nrows()];
        ell.spmv_into(&x, &mut y);
        prop_assert!(close(&y));

        let sell = SellCs::from_csr(&a, c, 4 * c).unwrap();
        prop_assert_eq!(sell.to_csr(), a.clone());
        sell.spmv_into(&x, &mut y);
        prop_assert!(close(&y));

        let bb = BitmaskBlockCsr::from_csr(&a).unwrap();
        prop_assert_eq!(bb.to_csr(), a.clone());
        bb.spmv_into(&x, &mut y);
        prop_assert!(close(&y));

        let v = VarintCsr::from_csr(&a).unwrap();
        prop_assert_eq!(v.to_csr(), a.clone());
        v.spmv_into(&x, &mut y);
        prop_assert!(close(&y));
    }

    #[test]
    fn solvers_are_consistent_on_random_spd_systems(n in 4usize..40, seed in 0u64..1000) {
        // Build an SPD matrix: tridiagonal Laplacian + random diagonal boost.
        let mut state = seed;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let boost = (recode_sparse::util::splitmix64(&mut state) % 8) as f64;
            coo.push(i, i, 4.0 + boost).unwrap();
            if i > 0 { coo.push(i, i - 1, -1.0).unwrap(); }
            if i + 1 < n { coo.push(i, i + 1, -1.0).unwrap(); }
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) - 1.0).collect();
        let cg = recode_sparse::solve::conjugate_gradient(&a, &b, SpmvKernel::Serial, 1e-11, 10 * n);
        prop_assert!(cg.converged, "CG residual {}", cg.residual);
        let ja = recode_sparse::solve::jacobi(&a, &b, SpmvKernel::Serial, 1e-12, 20_000);
        prop_assert!(ja.converged, "Jacobi residual {}", ja.residual);
        for (u, v) in cg.x.iter().zip(&ja.x) {
            prop_assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }
}
