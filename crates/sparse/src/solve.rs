//! Iterative solvers built on the SpMV kernels — the application layer the
//! paper's introduction motivates (PDE solvers, graph analytics, ML). Each
//! solver takes a kernel choice so it runs identically over plain CSR or a
//! matrix recovered from the recoded representation.
//!
//! Every solver is implemented once over an abstract, fallible operator
//! `op(x, y)` computing `y = A x` (`conjugate_gradient_op`, `jacobi_op`,
//! `power_iteration_op`); the kernel-taking entry points are thin wrappers
//! over an infallible CSR operator. The operator form is what lets the
//! overlapped executor in `recode-core` drive the same iteration loops
//! through UDP-decoded, cached SpMV, where each apply can fail.

use crate::spmv::{spmv_with_into, SpmvKernel};
use crate::Csr;
use std::convert::Infallible;

fn unwrap_infallible<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => match e {},
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The solution (or final iterate).
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm (CG/Jacobi) or iterate delta (power iteration).
    pub residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Conjugate gradients for symmetric positive-definite systems `A x = b`.
///
/// # Panics
/// If `a` is not square or `b.len() != a.nrows()`.
pub fn conjugate_gradient(
    a: &Csr,
    b: &[f64],
    kernel: SpmvKernel,
    tol: f64,
    max_iters: usize,
) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "CG needs a square matrix");
    assert_eq!(b.len(), a.nrows(), "rhs length must equal nrows");
    unwrap_infallible(conjugate_gradient_op(b, tol, max_iters, |x, y| {
        spmv_with_into(kernel, a, x, y);
        Ok(())
    }))
}

/// [`conjugate_gradient`] over an abstract fallible operator `op(x, y)`
/// computing `y = A x`. The first operator error aborts the solve.
///
/// # Errors
/// Whatever `op` returns, verbatim.
pub fn conjugate_gradient_op<E>(
    b: &[f64],
    tol: f64,
    max_iters: usize,
    mut op: impl FnMut(&[f64], &mut [f64]) -> Result<(), E>,
) -> Result<SolveResult, E> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    for iter in 0..max_iters {
        let res = rs_old.sqrt();
        if res < tol {
            return Ok(SolveResult { x, iterations: iter, residual: res, converged: true });
        }
        op(&p, &mut ap)?;
        let pap: f64 = p.iter().zip(&ap).map(|(pi, api)| pi * api).sum();
        if pap <= 0.0 {
            // Not SPD (or numerically broken-down): stop honestly.
            return Ok(SolveResult { x, iterations: iter, residual: res, converged: false });
        }
        let alpha = rs_old / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    let res = rs_old.sqrt();
    Ok(SolveResult { x, iterations: max_iters, residual: res, converged: res < tol })
}

/// Jacobi iteration for diagonally dominant systems `A x = b`.
///
/// # Panics
/// If `a` is not square, `b` has the wrong length, or a diagonal entry is
/// zero.
pub fn jacobi(a: &Csr, b: &[f64], kernel: SpmvKernel, tol: f64, max_iters: usize) -> SolveResult {
    assert_eq!(a.nrows(), a.ncols(), "Jacobi needs a square matrix");
    assert_eq!(b.len(), a.nrows(), "rhs length must equal nrows");
    let n = a.nrows();
    let diag: Vec<f64> = (0..n)
        .map(|i| {
            let d = a.get(i, i);
            assert!(d != 0.0, "zero diagonal at row {i}");
            d
        })
        .collect();
    unwrap_infallible(jacobi_op(b, &diag, tol, max_iters, |x, y| {
        spmv_with_into(kernel, a, x, y);
        Ok(())
    }))
}

/// [`jacobi`] over an abstract fallible operator `op(x, y)` computing
/// `y = A x`, with the diagonal of `A` supplied explicitly.
///
/// # Errors
/// Whatever `op` returns, verbatim.
///
/// # Panics
/// If `diag.len() != b.len()` or a diagonal entry is zero.
pub fn jacobi_op<E>(
    b: &[f64],
    diag: &[f64],
    tol: f64,
    max_iters: usize,
    mut op: impl FnMut(&[f64], &mut [f64]) -> Result<(), E>,
) -> Result<SolveResult, E> {
    let n = b.len();
    assert_eq!(diag.len(), n, "diagonal length must equal rhs length");
    assert!(diag.iter().all(|&d| d != 0.0), "zero diagonal entry");
    let mut x = vec![0.0; n];
    let mut ax = vec![0.0; n];
    for iter in 0..max_iters {
        op(&x, &mut ax)?;
        let mut delta = 0.0f64;
        for i in 0..n {
            // x_i <- x_i + (b_i - (A x)_i) / a_ii
            let step = (b[i] - ax[i]) / diag[i];
            x[i] += step;
            delta = delta.max(step.abs());
        }
        if delta < tol {
            return Ok(SolveResult { x, iterations: iter + 1, residual: delta, converged: true });
        }
    }
    // Final residual for reporting.
    op(&x, &mut ax)?;
    let res = b.iter().zip(&ax).map(|(bi, axi)| (bi - axi).abs()).fold(0.0f64, f64::max);
    Ok(SolveResult { x, iterations: max_iters, residual: res, converged: res < tol })
}

/// Power iteration: dominant eigenvector of `A` (normalized to unit
/// 2-norm) plus its eigenvalue estimate, returned as the second tuple
/// element.
///
/// # Panics
/// If `a` is not square or is empty.
pub fn power_iteration(
    a: &Csr,
    kernel: SpmvKernel,
    tol: f64,
    max_iters: usize,
) -> (SolveResult, f64) {
    assert_eq!(a.nrows(), a.ncols(), "power iteration needs a square matrix");
    assert!(a.nrows() > 0, "matrix must be non-empty");
    unwrap_infallible(power_iteration_op(a.nrows(), tol, max_iters, |x, y| {
        spmv_with_into(kernel, a, x, y);
        Ok(())
    }))
}

/// [`power_iteration`] over an abstract fallible operator `op(x, y)`
/// computing `y = A x` for an `n × n` matrix.
///
/// # Errors
/// Whatever `op` returns, verbatim.
///
/// # Panics
/// If `n == 0`.
pub fn power_iteration_op<E>(
    n: usize,
    tol: f64,
    max_iters: usize,
    mut op: impl FnMut(&[f64], &mut [f64]) -> Result<(), E>,
) -> Result<(SolveResult, f64), E> {
    assert!(n > 0, "matrix must be non-empty");
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut ax = vec![0.0; n];
    let mut eigenvalue = 0.0;
    for iter in 0..max_iters {
        op(&x, &mut ax)?;
        let norm: f64 = ax.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return Ok((SolveResult { x, iterations: iter, residual: 0.0, converged: true }, 0.0));
        }
        let mut delta = 0.0f64;
        for i in 0..n {
            let next = ax[i] / norm;
            delta = delta.max((next - x[i]).abs());
            x[i] = next;
        }
        eigenvalue = norm;
        if delta < tol {
            return Ok((
                SolveResult { x, iterations: iter + 1, residual: delta, converged: true },
                eigenvalue,
            ));
        }
    }
    Ok((SolveResult { x, iterations: max_iters, residual: f64::NAN, converged: false }, eigenvalue))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// SPD 1D Laplacian with Dirichlet boundaries.
    fn laplacian_1d(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn residual_norm(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let ax = crate::spmv::spmv(a, x);
        ax.iter().zip(b).map(|(axi, bi)| (axi - bi) * (axi - bi)).sum::<f64>().sqrt()
    }

    #[test]
    fn cg_solves_laplacian() {
        let a = laplacian_1d(200);
        let b = vec![1.0; 200];
        let r = conjugate_gradient(&a, &b, SpmvKernel::Serial, 1e-10, 1000);
        assert!(r.converged, "residual {}", r.residual);
        assert!(residual_norm(&a, &r.x, &b) < 1e-8);
        // CG on an n-point 1D Laplacian converges in at most n steps.
        assert!(r.iterations <= 200);
    }

    #[test]
    fn cg_detects_non_spd_breakdown() {
        // Indefinite matrix: CG must stop with converged=false, not loop.
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csr();
        let r = conjugate_gradient(&a, &[0.0, 1.0], SpmvKernel::Serial, 1e-12, 100);
        assert!(!r.converged);
    }

    #[test]
    fn jacobi_solves_diagonally_dominant_system() {
        let mut coo = Coo::new(50, 50).unwrap();
        for i in 0..50 {
            coo.push(i, i, 5.0).unwrap();
            coo.push(i, (i + 1) % 50, 1.0).unwrap();
            coo.push(i, (i + 7) % 50, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..50).map(|i| (i % 3) as f64).collect();
        let r = jacobi(&a, &b, SpmvKernel::RowParallel, 1e-12, 500);
        assert!(r.converged, "residual {}", r.residual);
        assert!(residual_norm(&a, &r.x, &b) < 1e-9);
    }

    #[test]
    fn all_kernels_reach_the_same_solution() {
        let a = laplacian_1d(64);
        let b = vec![1.0; 64];
        let xs: Vec<Vec<f64>> =
            SpmvKernel::ALL.iter().map(|&k| conjugate_gradient(&a, &b, k, 1e-12, 500).x).collect();
        for x in &xs[1..] {
            for (u, v) in xs[0].iter().zip(x) {
                assert!((u - v).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn power_iteration_finds_dominant_eigenpair() {
        // Diagonal matrix with known spectrum.
        let mut coo = Coo::new(4, 4).unwrap();
        for (i, lambda) in [1.0, 3.0, 9.0, 2.0].iter().enumerate() {
            coo.push(i, i, *lambda).unwrap();
        }
        let a = coo.to_csr();
        let (r, lambda) = power_iteration(&a, SpmvKernel::Serial, 1e-12, 10_000);
        assert!(r.converged);
        assert!((lambda - 9.0).abs() < 1e-6, "eigenvalue {lambda}");
        assert!(r.x[2].abs() > 0.999, "eigenvector {:?}", r.x);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn jacobi_rejects_zero_diagonal() {
        let a = Csr::try_from_parts(2, 2, vec![0, 1, 1], vec![1], vec![1.0]).unwrap();
        let _ = jacobi(&a, &[1.0, 1.0], SpmvKernel::Serial, 1e-9, 10);
    }

    #[test]
    fn op_solvers_match_kernel_solvers_exactly() {
        // The kernel entry points are wrappers over the op forms; the two
        // must produce bit-identical iterates.
        let a = laplacian_1d(80);
        let b: Vec<f64> = (0..80).map(|i| ((i % 5) as f64) - 2.0).collect();
        let via_kernel = conjugate_gradient(&a, &b, SpmvKernel::Serial, 1e-10, 500);
        let via_op = conjugate_gradient_op(&b, 1e-10, 500, |x, y| {
            spmv_with_into(SpmvKernel::Serial, &a, x, y);
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(via_kernel.x, via_op.x);
        assert_eq!(via_kernel.iterations, via_op.iterations);

        let (pk, lk) = power_iteration(&a, SpmvKernel::Serial, 1e-10, 2000);
        let (po, lo) = power_iteration_op(80, 1e-10, 2000, |x, y| {
            spmv_with_into(SpmvKernel::Serial, &a, x, y);
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(pk.x, po.x);
        assert_eq!(lk, lo);
    }

    #[test]
    fn op_solver_errors_abort_the_iteration() {
        let b = vec![1.0; 8];
        let mut applies = 0usize;
        let err = conjugate_gradient_op(&b, 1e-12, 100, |_x, _y| {
            applies += 1;
            Err::<(), &str>("operator failed")
        })
        .unwrap_err();
        assert_eq!(err, "operator failed");
        assert_eq!(applies, 1, "solve must stop at the first operator error");
    }
}
