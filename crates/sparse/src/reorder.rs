//! Reverse Cuthill–McKee (RCM) bandwidth-reducing reordering.
//!
//! The paper's future-work section calls out "novel and customized encodings
//! on top of CSR for matrices with particular structures". RCM is the
//! classic way to *create* such structure: it permutes a matrix to cluster
//! non-zeros near the diagonal, which shrinks the column-index deltas that
//! the Delta→Snappy→Huffman pipeline compresses. The ablation benches use
//! this module to quantify that interaction.

use crate::Csr;

/// A row/column permutation: `perm[new_index] = old_index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<u32>,
}

impl Permutation {
    /// Builds from a `new -> old` map, validating that it is a bijection on
    /// `0..n`.
    ///
    /// # Panics
    /// If `perm` is not a permutation.
    pub fn new(perm: Vec<u32>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!((p as usize) < n && !seen[p as usize], "not a permutation");
            seen[p as usize] = true;
        }
        Permutation { perm }
    }

    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation { perm: (0..n as u32).collect() }
    }

    /// Length of the permuted index space.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True if the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `new -> old` view.
    pub fn new_to_old(&self) -> &[u32] {
        &self.perm
    }

    /// Computes the inverse map `old -> new`.
    pub fn inverse(&self) -> Vec<u32> {
        let mut inv = vec![0u32; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        inv
    }

    /// Symmetric application `P A P^T`: row `new` of the result is row
    /// `perm[new]` of `a` with columns relabeled.
    ///
    /// # Panics
    /// If the permutation length does not match a square `a`.
    pub fn apply_symmetric(&self, a: &Csr) -> Csr {
        assert_eq!(a.nrows(), a.ncols(), "symmetric permutation needs a square matrix");
        assert_eq!(a.nrows(), self.len(), "permutation length mismatch");
        let inv = self.inverse();
        let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for new_r in 0..a.nrows() {
            let old_r = self.perm[new_r] as usize;
            let (cols, vals) = a.row(old_r);
            scratch.clear();
            scratch.extend(cols.iter().map(|&c| inv[c as usize]).zip(vals.iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts_unchecked(a.nrows(), a.ncols(), row_ptr, col_idx, values)
    }
}

/// Computes the reverse Cuthill–McKee ordering of (the symmetrized pattern
/// of) `a`. Works on any square matrix; the pattern of `A + A^T` is used so
/// unsymmetric matrices get a sensible ordering too.
///
/// # Panics
/// If `a` is not square.
pub fn reverse_cuthill_mckee(a: &Csr) -> Permutation {
    assert_eq!(a.nrows(), a.ncols(), "RCM needs a square matrix");
    let n = a.nrows();
    // Build symmetrized adjacency (pattern of A + A^T, no self loops).
    let t = a.transpose();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for src in [a, &t] {
        for (r, neighbors) in adj.iter_mut().enumerate() {
            let (cols, _) = src.row(r);
            neighbors.extend(cols.iter().copied().filter(|&c| c as usize != r));
        }
    }
    let mut degree = vec![0u32; n];
    for (r, list) in adj.iter_mut().enumerate() {
        list.sort_unstable();
        list.dedup();
        degree[r] = list.len() as u32;
    }

    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut neighbors: Vec<u32> = Vec::new();

    // Process every connected component, seeding each BFS from its
    // minimum-degree unvisited vertex (the standard pseudo-peripheral
    // shortcut; exact peripheral search is unnecessary for recoding studies).
    while let Some(seed) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| (degree[v], v)) {
        visited[seed] = true;
        queue.push_back(seed as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            neighbors.extend(adj[v as usize].iter().copied().filter(|&u| !visited[u as usize]));
            neighbors.sort_unstable_by_key(|&u| (degree[u as usize], u));
            for &u in &neighbors {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::new(order)
}

/// Structural bandwidth after applying `perm` — handy for asserting that the
/// reordering helped without materializing the permuted matrix.
pub fn permuted_bandwidth(a: &Csr, perm: &Permutation) -> usize {
    let inv = perm.inverse();
    let mut bw = 0usize;
    for (r, c, _) in a.iter() {
        let (nr, nc) = (inv[r] as i64, inv[c] as i64);
        bw = bw.max((nr - nc).unsigned_abs() as usize);
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// A path graph laid out in scrambled vertex order has terrible
    /// bandwidth; RCM must recover bandwidth 1-ish.
    fn scrambled_path(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        // Scramble with a fixed stride permutation (stride 7 coprime to n).
        let label = |v: usize| (v * 7) % n;
        for v in 0..n {
            coo.push(label(v), label(v), 2.0).unwrap();
        }
        for v in 0..n - 1 {
            coo.push(label(v), label(v + 1), -1.0).unwrap();
            coo.push(label(v + 1), label(v), -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_recovers_path_bandwidth() {
        let a = scrambled_path(101);
        let before = crate::stats::MatrixStats::compute(&a).bandwidth;
        let perm = reverse_cuthill_mckee(&a);
        let after = permuted_bandwidth(&a, &perm);
        assert!(before > 10, "scramble should start bad, got {before}");
        assert!(after <= 2, "RCM should nearly linearize a path, got {after}");
    }

    #[test]
    fn apply_symmetric_preserves_matrix_up_to_relabeling() {
        let a = scrambled_path(37);
        let perm = reverse_cuthill_mckee(&a);
        let b = perm.apply_symmetric(&a);
        assert_eq!(b.nnz(), a.nnz());
        let inv = perm.inverse();
        for (r, c, v) in a.iter() {
            assert_eq!(b.get(inv[r] as usize, inv[c] as usize), v);
        }
        assert!(b.is_symmetric(1e-12));
    }

    #[test]
    fn identity_permutation_is_noop() {
        let a = scrambled_path(11);
        let p = Permutation::identity(11);
        assert_eq!(p.apply_symmetric(&a), a);
        assert_eq!(permuted_bandwidth(&a, &p), crate::stats::MatrixStats::compute(&a).bandwidth);
    }

    #[test]
    fn rcm_handles_disconnected_graphs_and_empty_rows() {
        let mut coo = Coo::new(6, 6).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(3, 4, 1.0).unwrap();
        coo.push(4, 3, 1.0).unwrap();
        // Vertices 2 and 5 are isolated.
        let a = coo.to_csr();
        let perm = reverse_cuthill_mckee(&a);
        assert_eq!(perm.len(), 6);
        // Must still be a bijection — Permutation::new validates.
        let b = perm.apply_symmetric(&a);
        assert_eq!(b.nnz(), 4);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_validation_rejects_duplicates() {
        let _ = Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::new(vec![2, 0, 1]);
        let inv = p.inverse();
        for new in 0..3 {
            assert_eq!(inv[p.new_to_old()[new] as usize] as usize, new);
        }
    }
}
