//! Structural and value statistics, used to characterize corpora the way the
//! paper characterizes its 369-matrix TAMU sample (§IV-B: nnz range, sparsity
//! range, banded/diagonal/symmetric/unstructured mix).

use crate::Csr;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics for one sparse matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// `nnz / (nrows * ncols)`.
    pub density: f64,
    /// Mean non-zeros per row.
    pub avg_nnz_per_row: f64,
    /// Longest row.
    pub max_nnz_per_row: usize,
    /// Number of entirely empty rows.
    pub empty_rows: usize,
    /// Structural bandwidth: `max |i - j|` over stored entries.
    pub bandwidth: usize,
    /// Mean `|i - j|` over stored entries — low values mean strong diagonal
    /// locality, which is what delta recoding exploits.
    pub avg_band: f64,
    /// Mean absolute first difference of column indices within rows — the
    /// quantity delta coding actually compresses.
    pub avg_col_delta: f64,
    /// Number of distinct values in a bounded sample (up to
    /// [`MatrixStats::VALUE_SAMPLE`] entries); few distinct values means the
    /// value stream is highly compressible.
    pub distinct_values_sampled: usize,
    /// Shannon entropy (bits/byte) of the sampled value bytes — an upper
    /// bound estimate for how well entropy coding can squeeze values.
    pub value_byte_entropy: f64,
    /// True if the matrix equals its transpose (1e-9 relative tolerance).
    pub symmetric: bool,
    /// True if the *pattern* equals its transpose (values may differ) —
    /// many real matrices are structurally but not numerically symmetric.
    pub structurally_symmetric: bool,
}

impl MatrixStats {
    /// Upper bound on how many values are sampled for value statistics.
    pub const VALUE_SAMPLE: usize = 1 << 16;

    /// Computes statistics for `a`. Cost is O(nnz) plus one transpose when
    /// the matrix is square (for the symmetry check).
    pub fn compute(a: &Csr) -> Self {
        let nnz = a.nnz();
        let mut max_row = 0usize;
        let mut empty_rows = 0usize;
        let mut bandwidth = 0usize;
        let mut band_sum = 0f64;
        let mut delta_sum = 0f64;
        let mut delta_count = 0usize;
        for r in 0..a.nrows() {
            let (cols, _) = a.row(r);
            max_row = max_row.max(cols.len());
            if cols.is_empty() {
                empty_rows += 1;
            }
            let mut prev: Option<u32> = None;
            for &c in cols {
                let band = (c as isize - r as isize).unsigned_abs();
                bandwidth = bandwidth.max(band);
                band_sum += band as f64;
                if let Some(p) = prev {
                    delta_sum += (c - p) as f64;
                    delta_count += 1;
                }
                prev = Some(c);
            }
        }

        // Value sampling: stride so the sample spans the whole matrix.
        let stride = (nnz / Self::VALUE_SAMPLE).max(1);
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut byte_hist = [0u64; 256];
        let mut sampled_bytes = 0u64;
        for k in (0..nnz).step_by(stride) {
            let bits = a.values()[k].to_bits();
            distinct.insert(bits);
            for b in bits.to_le_bytes() {
                byte_hist[b as usize] += 1;
                sampled_bytes += 1;
            }
        }
        let value_byte_entropy = shannon_entropy(&byte_hist, sampled_bytes);

        let structurally_symmetric = a.nrows() == a.ncols() && {
            let t = a.transpose();
            t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx()
        };
        MatrixStats {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz,
            density: a.density(),
            avg_nnz_per_row: if a.nrows() == 0 { 0.0 } else { nnz as f64 / a.nrows() as f64 },
            max_nnz_per_row: max_row,
            empty_rows,
            bandwidth,
            avg_band: if nnz == 0 { 0.0 } else { band_sum / nnz as f64 },
            avg_col_delta: if delta_count == 0 { 0.0 } else { delta_sum / delta_count as f64 },
            distinct_values_sampled: distinct.len(),
            value_byte_entropy,
            symmetric: a.nrows() == a.ncols() && a.is_symmetric(1e-9),
            structurally_symmetric,
        }
    }
}

/// Shannon entropy in bits per symbol of a 256-bin histogram.
fn shannon_entropy(hist: &[u64; 256], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in hist {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn tridiagonal_stats() {
        let n = 100;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 3 * n - 2);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.max_nnz_per_row, 3);
        assert_eq!(s.empty_rows, 0);
        assert!(s.symmetric);
        assert!(s.structurally_symmetric);
        // Only 2 distinct values.
        assert_eq!(s.distinct_values_sampled, 2);
        // Column deltas within a tridiagonal row are all 1.
        assert!((s.avg_col_delta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_bounds() {
        let uniform = [1u64; 256];
        assert!((shannon_entropy(&uniform, 256) - 8.0).abs() < 1e-9);
        let mut single = [0u64; 256];
        single[42] = 100;
        assert_eq!(shannon_entropy(&single, 100), 0.0);
        assert_eq!(shannon_entropy(&[0; 256], 0), 0.0);
    }

    #[test]
    fn empty_rows_counted() {
        let a = crate::Csr::try_from_parts(3, 3, vec![0, 1, 1, 1], vec![2], vec![9.0]).unwrap();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.empty_rows, 2);
        assert_eq!(s.bandwidth, 2);
        assert!(!s.symmetric);
        assert!(!s.structurally_symmetric);
    }
}

#[cfg(test)]
mod structural_tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn structural_but_not_numeric_symmetry() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        coo.push(1, 0, 5.0).unwrap(); // mirrored position, different value
        let s = MatrixStats::compute(&coo.to_csr());
        assert!(s.structurally_symmetric);
        assert!(!s.symmetric);
    }
}
