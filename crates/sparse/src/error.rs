//! Error type shared by all sparse-matrix operations.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;

/// Errors produced while constructing, converting or parsing matrices.
#[derive(Debug)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// A structural array (e.g. `row_ptr`) is malformed.
    InvalidStructure(String),
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the expectation that failed.
        expected: String,
        /// What was actually provided.
        found: String,
    },
    /// The matrix has more columns than a 4-byte index can address.
    ColumnIndexOverflow(usize),
    /// MatrixMarket (or other) text could not be parsed.
    Parse {
        /// 1-based line number of the offending input line (0 = header).
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => write!(
                f,
                "entry ({row}, {col}) outside matrix shape {nrows}x{ncols}"
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            SparseError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            SparseError::ColumnIndexOverflow(n) => write!(
                f,
                "matrix has {n} columns, exceeding the 4-byte index space used by the paper's CSR layout"
            ),
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, nrows: 4, ncols: 4 };
        assert!(e.to_string().contains("(5, 7)"));
        let e = SparseError::ColumnIndexOverflow(5_000_000_000);
        assert!(e.to_string().contains("5000000000"));
        let e = SparseError::Parse { line: 3, msg: "bad".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let e = SparseError::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
