//! SpMV kernels.
//!
//! Five CPU kernels, mirroring the implementations the paper and its
//! related work discuss:
//!
//! * [`serial`] — the paper's Fig. 2 basic CSR loop;
//! * [`parallel`] — row-parallel CSR using Rayon (the "state-of-the-art
//!   libraries easily saturate memory bandwidth" point of §III-B);
//! * [`merge`] — merge-path SpMV after Merrill & Garland \[33\], the
//!   load-balanced baseline the related-work section highlights;
//! * [`sellcs`] — SELL-C-σ sliced-ELL traversal (Kreutzer et al. \[27\])
//!   with σ-window row sorting;
//! * [`pdiag`] — partially-diagonal split (after Fukaya et al.): dense
//!   diagonal runs plus a CSR remainder.
//!
//! All kernels compute `y = A x`. Serial, row-parallel, and SELL-C-σ
//! reduce each row left-to-right and are bit-identical; merge-path may
//! split a row across partitions and partially-diagonal reorders diagonal
//! entries ahead of the remainder, so those two can differ by
//! floating-point reassociation (bounded by ordinary summation error and
//! checked in tests).

pub mod merge;
pub mod parallel;
pub mod pdiag;
pub mod sellcs;
pub mod serial;

use crate::Csr;

/// Which SpMV implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmvKernel {
    /// Basic CSR loop (paper Fig. 2).
    Serial,
    /// Rayon row-parallel CSR.
    RowParallel,
    /// Merge-path load-balanced CSR.
    MergePath,
    /// SELL-C-σ sliced-ELL traversal.
    SellCSigma,
    /// Partially-diagonal split: dense diagonals + CSR remainder.
    PartialDiagonal,
}

impl SpmvKernel {
    /// All kernels, for exhaustive test sweeps.
    pub const ALL: [SpmvKernel; 5] = [
        SpmvKernel::Serial,
        SpmvKernel::RowParallel,
        SpmvKernel::MergePath,
        SpmvKernel::SellCSigma,
        SpmvKernel::PartialDiagonal,
    ];

    /// Stable machine name, used by the tuned-config persistence schema
    /// and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            SpmvKernel::Serial => "serial",
            SpmvKernel::RowParallel => "row-parallel",
            SpmvKernel::MergePath => "merge-path",
            SpmvKernel::SellCSigma => "sell-c-sigma",
            SpmvKernel::PartialDiagonal => "partial-diagonal",
        }
    }

    /// Inverse of [`SpmvKernel::name`].
    pub fn parse_name(s: &str) -> Option<SpmvKernel> {
        SpmvKernel::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Computes `y = A x` with the chosen kernel, allocating `y`.
pub fn spmv_with(kernel: SpmvKernel, a: &Csr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    spmv_with_into(kernel, a, x, &mut y);
    y
}

/// Computes `y = A x` with the chosen kernel into a caller-provided buffer.
///
/// # Panics
/// If `x.len() != a.ncols()` or `y.len() != a.nrows()`.
pub fn spmv_with_into(kernel: SpmvKernel, a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length must equal ncols");
    assert_eq!(y.len(), a.nrows(), "y length must equal nrows");
    match kernel {
        SpmvKernel::Serial => serial::spmv_into(a, x, y),
        SpmvKernel::RowParallel => parallel::spmv_into(a, x, y),
        SpmvKernel::MergePath => merge::spmv_into(a, x, y),
        SpmvKernel::SellCSigma => sellcs::spmv_into(a, x, y),
        SpmvKernel::PartialDiagonal => pdiag::spmv_into(a, x, y),
    }
}

/// Default-kernel (serial) convenience: `y = A x`, allocating `y`.
pub fn spmv(a: &Csr, x: &[f64]) -> Vec<f64> {
    spmv_with(SpmvKernel::Serial, a, x)
}

/// Default-kernel (serial) convenience into a caller-provided buffer.
pub fn spmv_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    spmv_with_into(SpmvKernel::Serial, a, x, y);
}

/// Floating-point operations an SpMV performs: the paper counts 2 flops
/// (one multiply, one add) per stored non-zero.
pub fn flops(a: &Csr) -> u64 {
    2 * a.nnz() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    fn paper_matrix() -> Csr {
        Csr::try_from_parts(
            4,
            4,
            vec![0, 2, 2, 5, 7],
            vec![0, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn all_kernels_agree_with_dense_reference() {
        let a = paper_matrix();
        let x = [1.0, -2.0, 0.5, 3.0];
        let want = a.to_dense().matvec(&x);
        for k in SpmvKernel::ALL {
            assert_eq!(spmv_with(k, &a, &x), want, "kernel {k:?}");
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in SpmvKernel::ALL {
            assert_eq!(SpmvKernel::parse_name(k.name()), Some(k));
        }
        assert_eq!(SpmvKernel::parse_name("no-such-kernel"), None);
    }

    #[test]
    fn flops_counts_two_per_nnz() {
        assert_eq!(flops(&paper_matrix()), 14);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let a = paper_matrix();
        let _ = spmv(&a, &[1.0]);
    }

    #[test]
    fn empty_matrix_gives_zero_vector() {
        let a = Csr::try_from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        for k in SpmvKernel::ALL {
            assert_eq!(spmv_with(k, &a, &[1.0, 1.0, 1.0]), vec![0.0; 3]);
        }
    }
}
