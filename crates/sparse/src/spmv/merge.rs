//! Merge-path SpMV (Merrill & Garland, SC'16 — the paper's reference \[33\]).
//!
//! The classic row-parallel kernel load-balances poorly when row lengths are
//! skewed. Merge-path instead treats SpMV as a merge of two sequences —
//! the row-end offsets `row_ptr[1..]` and the natural non-zero indices
//! `0..nnz` — and gives every worker an *equal number of path items*
//! (rows finished + non-zeros consumed). Workers find their start coordinate
//! with a binary search along their diagonal, process their stretch, and
//! rows that straddle a partition boundary are fixed up with carry-out
//! partial sums.
//!
//! Unlike the serial/row-parallel kernels, a row split across partitions is
//! summed as partials, so results can differ from serial by floating-point
//! rounding (never by more than reassociation error).

use crate::Csr;
use rayon::prelude::*;

/// Start coordinate of a diagonal on the merge path.
///
/// Returns `(i, j)` with `i + j == diag`, where `i` counts consumed row-ends
/// and `j` counts consumed non-zeros.
fn merge_path_search(diag: usize, row_end: &[usize], nnz: usize) -> (usize, usize) {
    let m = row_end.len();
    let mut lo = diag.saturating_sub(nnz);
    let mut hi = diag.min(m);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // Consume row-end `mid` before non-zero `diag - 1 - mid`?
        if row_end[mid] <= diag - 1 - mid {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, diag - lo)
}

/// Per-partition result: sums for rows finished inside the partition and the
/// carry-out partial for the row left unfinished at its end.
struct PartitionOut {
    first_row: usize,
    finished: Vec<f64>,
    carry_row: usize,
    carry: f64,
}

/// `y = A x` via merge-path partitioning.
pub fn spmv_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    let m = a.nrows();
    let nnz = a.nnz();
    if m == 0 {
        return;
    }
    let row_end = &a.row_ptr()[1..];
    let col_idx = a.col_idx();
    let val = a.values();

    let path_len = m + nnz;
    let parts = (rayon::current_num_threads() * 4).clamp(1, path_len.max(1));
    let per_part = path_len.div_ceil(parts);

    let outs: Vec<PartitionOut> = (0..parts)
        .into_par_iter()
        .map(|p| {
            let d0 = (p * per_part).min(path_len);
            let d1 = ((p + 1) * per_part).min(path_len);
            let (i0, j0) = merge_path_search(d0, row_end, nnz);
            let (i1, j1) = merge_path_search(d1, row_end, nnz);
            let mut finished = Vec::with_capacity(i1 - i0);
            let mut j = j0;
            for &e in &row_end[i0..i1] {
                let mut acc = 0.0;
                while j < e {
                    acc += val[j] * x[col_idx[j] as usize];
                    j += 1;
                }
                finished.push(acc);
            }
            let mut carry = 0.0;
            while j < j1 {
                acc_step(&mut carry, val[j], x[col_idx[j] as usize]);
                j += 1;
            }
            PartitionOut { first_row: i0, finished, carry_row: i1, carry }
        })
        .collect();

    y.fill(0.0);
    for out in outs {
        for (k, v) in out.finished.iter().enumerate() {
            y[out.first_row + k] += v;
        }
        if out.carry_row < m {
            y[out.carry_row] += out.carry;
        }
    }
}

#[inline]
fn acc_step(acc: &mut f64, a: f64, b: f64) {
    *acc += a * b;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::serial;
    use crate::util::approx_eq;
    use crate::{Coo, Csr};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(approx_eq(x, y, 1e-12), "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn merge_path_search_endpoints() {
        // 3 rows with ends [2, 2, 5]; nnz = 5; path length 8.
        let row_end = [2usize, 2, 5];
        assert_eq!(merge_path_search(0, &row_end, 5), (0, 0));
        assert_eq!(merge_path_search(8, &row_end, 5), (3, 5));
        // After consuming 2 nnz, the next items are the ends of rows 0 and 1.
        assert_eq!(merge_path_search(2, &row_end, 5), (0, 2));
        assert_eq!(merge_path_search(3, &row_end, 5), (1, 2));
        assert_eq!(merge_path_search(4, &row_end, 5), (2, 2));
    }

    #[test]
    fn matches_serial_on_empty_rows() {
        // Matrices dominated by empty rows are the classic merge-path win.
        let n = 500;
        let mut coo = Coo::new(n, n).unwrap();
        for k in 0..20 {
            let r = (k * 37) % n;
            for c in 0..50 {
                coo.push(r, (c * 7 + k) % n, 1.0 + (k + c) as f64).unwrap();
            }
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut y_m = vec![0.0; n];
        let mut y_s = vec![0.0; n];
        spmv_into(&a, &x, &mut y_m);
        serial::spmv_into(&a, &x, &mut y_s);
        assert_close(&y_m, &y_s);
    }

    #[test]
    fn matches_serial_on_single_huge_row() {
        // One row holding every non-zero forces carry chains across many
        // partitions.
        let n = 4096;
        let mut coo = Coo::new(3, n).unwrap();
        for c in 0..n {
            coo.push(1, c, ((c * 13) % 11) as f64 - 5.0).unwrap();
        }
        let a = coo.to_csr();
        let x = vec![1.5; n];
        let mut y_m = vec![0.0; 3];
        let mut y_s = vec![0.0; 3];
        spmv_into(&a, &x, &mut y_m);
        serial::spmv_into(&a, &x, &mut y_s);
        assert_close(&y_m, &y_s);
    }

    #[test]
    fn zero_nnz_matrix() {
        let a = Csr::try_from_parts(4, 4, vec![0, 0, 0, 0, 0], vec![], vec![]).unwrap();
        let mut y = vec![7.0; 4];
        spmv_into(&a, &[1.0; 4], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }
}
