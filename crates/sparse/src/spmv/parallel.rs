//! Row-parallel CSR SpMV using Rayon.
//!
//! Each output element is owned by exactly one task, so the kernel is
//! data-race free by construction and bit-identical to the serial kernel
//! (per-row reduction order is unchanged). Rows are grouped into chunks to
//! amortize task overhead on short rows.

use crate::Csr;
use rayon::prelude::*;

/// Rows per Rayon task. Tuned low enough to balance skewed matrices
/// (power-law rows) and high enough to amortize scheduling on stencils.
const ROW_CHUNK: usize = 256;

/// `y = A x`, parallel over row chunks.
pub fn spmv_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let val = a.values();
    y.par_chunks_mut(ROW_CHUNK).enumerate().for_each(|(chunk, y_chunk)| {
        let base = chunk * ROW_CHUNK;
        for (k, y_i) in y_chunk.iter_mut().enumerate() {
            let i = base + k;
            let mut temp = 0.0;
            for j in row_ptr[i]..row_ptr[i + 1] {
                temp += val[j] * x[col_idx[j] as usize];
            }
            *y_i = temp;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::serial;
    use crate::Csr;

    #[test]
    fn matches_serial_on_skewed_matrix() {
        // One dense row among many short rows exercises chunk imbalance.
        let n = 1000;
        let mut coo = crate::Coo::new(n, n).unwrap();
        for c in 0..n {
            coo.push(0, c, (c % 7) as f64 + 1.0).unwrap();
        }
        for r in 1..n {
            coo.push(r, r, 2.0).unwrap();
            coo.push(r, (r * 31) % n, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y_par = vec![0.0; n];
        let mut y_ser = vec![0.0; n];
        spmv_into(&a, &x, &mut y_par);
        serial::spmv_into(&a, &x, &mut y_ser);
        assert_eq!(y_par, y_ser, "parallel kernel must be bit-identical to serial");
    }

    #[test]
    fn handles_fewer_rows_than_chunk() {
        let a = Csr::identity(3);
        let mut y = vec![0.0; 3];
        spmv_into(&a, &[5.0, 6.0, 7.0], &mut y);
        assert_eq!(y, vec![5.0, 6.0, 7.0]);
    }
}
