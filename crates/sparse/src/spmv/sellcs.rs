//! SELL-C-σ SpMV kernel: the CSR operand is sliced into sorted, padded
//! chunks ([`crate::formats::SellCs`]) and multiplied with the chunked
//! unit-stride traversal. Per-row accumulation stays left-to-right in
//! column order, so the result is bit-identical to the serial CSR kernel.
//!
//! The conversion runs per call; pipelines that reuse the operand should
//! hold a [`SellCs`] directly (the auto-tuner accounts for the sliced
//! layout's traffic, not the conversion, because iterative workloads
//! convert once and multiply many times).

use crate::formats::SellCs;
use crate::Csr;

/// Default chunk height: matches common SIMD lane counts (AVX-512 ×8).
pub const DEFAULT_C: usize = 8;

/// Default sorting window: 8 chunks — wide enough to sort away moderate
/// row-length variance, local enough to keep the permutation cache-friendly.
pub const DEFAULT_SIGMA: usize = 64;

/// `y = A x` through a SELL-C-σ slicing with the default (C, σ).
pub fn spmv_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    let s = SellCs::from_csr(a, DEFAULT_C, DEFAULT_SIGMA).expect("DEFAULT_C > 0");
    s.spmv_into(x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    #[test]
    fn bit_identical_to_serial_csr() {
        let a = generate(
            &GenSpec::Circuit { n: 300, avg_deg: 4.0, hubs: 3, values: ValueModel::UniformRandom },
            5,
        );
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; a.nrows()];
        spmv_into(&a, &x, &mut y);
        assert_eq!(y, spmv(&a, &x));
    }
}
