//! Partially-diagonal SpMV kernel: dense diagonal runs are split from a
//! CSR remainder ([`crate::formats::PartialDiag`]) and multiplied
//! unit-stride, the remainder row-by-row. Rows mixing diagonal and
//! remainder entries reassociate the summation, so agreement with CSR is
//! to summation error (the differential suite's 1e-10), not bit-exact.
//!
//! The split runs per call; pipelines that reuse the operand should hold a
//! [`PartialDiag`] directly.

use crate::formats::PartialDiag;
use crate::Csr;

/// Default extraction threshold: a diagonal must be at least 60% occupied
/// to be pulled out of the remainder. High enough that graph matrices keep
/// plain CSR, low enough that stencil/banded families extract fully.
pub const DEFAULT_MIN_OCCUPANCY: f64 = 0.6;

/// `y = A x` through a partially-diagonal split at the default threshold.
pub fn spmv_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    let p = PartialDiag::from_csr(a, DEFAULT_MIN_OCCUPANCY).expect("threshold in (0, 1]");
    p.spmv_into(x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    #[test]
    fn matches_serial_csr_to_summation_error() {
        let a = generate(
            &GenSpec::Stencil2D { nx: 20, ny: 20, points: 5, values: ValueModel::StencilCoeffs },
            9,
        );
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; a.nrows()];
        spmv_into(&a, &x, &mut y);
        let want = spmv(&a, &x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-10 * w.abs().max(1.0), "got {g}, want {w}");
        }
    }
}
