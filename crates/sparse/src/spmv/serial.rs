//! The paper's basic CSR SpMV (Fig. 2), transcribed directly:
//!
//! ```c
//! for (int i = 0; i < m; i++) {
//!     double temp = y[i];
//!     for (int j = row_ptr[i]; j < row_ptr[i+1]; j++)
//!         temp = temp + val[j] * x[col_idx[j]];
//!     y[i] = temp;
//! }
//! ```

use crate::Csr;

/// `y = A x` — overwrites `y`.
pub fn spmv_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let val = a.values();
    for i in 0..a.nrows() {
        let mut temp = 0.0;
        for j in row_ptr[i]..row_ptr[i + 1] {
            temp += val[j] * x[col_idx[j] as usize];
        }
        y[i] = temp;
    }
}

/// `y += A x` — the accumulate form the paper's listing actually shows
/// (it starts from the existing `y[i]`). Used by iterative solvers.
pub fn spmv_acc(a: &Csr, x: &[f64], y: &mut [f64]) {
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let val = a.values();
    for i in 0..a.nrows() {
        let mut temp = y[i];
        for j in row_ptr[i]..row_ptr[i + 1] {
            temp += val[j] * x[col_idx[j] as usize];
        }
        y[i] = temp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn accumulate_adds_to_existing_y() {
        let a = Csr::identity(3);
        let mut y = vec![10.0, 20.0, 30.0];
        spmv_acc(&a, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn overwrite_ignores_existing_y() {
        let a = Csr::identity(2);
        let mut y = vec![99.0, 99.0];
        spmv_into(&a, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }
}
