//! # recode-sparse — sparse matrix substrate
//!
//! The sparse-matrix foundation for the `recode-spmv` workspace, a
//! reproduction of *"Programmable Acceleration for Sparse Matrices in a
//! Data-movement Limited World"* (Rawal, Fang, Chien — IPDPS 2019).
//!
//! This crate provides everything the paper's evaluation needs below the
//! codec/accelerator layer:
//!
//! * **Formats** — [`Coo`], [`Csr`], [`Csc`] and a small [`Dense`]
//!   reference type, with lossless
//!   conversions between them. `Csr` uses 4-byte column indices and 8-byte
//!   values, matching the paper's 12 bytes-per-non-zero baseline.
//! * **SpMV kernels** — the paper's basic CSR kernel (Fig. 2), a Rayon
//!   row-parallel kernel, and a merge-based kernel in the style of
//!   Merrill & Garland (the strongest CPU baseline the paper cites).
//! * **I/O** — a MatrixMarket reader/writer so real TAMU/SuiteSparse
//!   matrices can be dropped into any experiment.
//! * **Generators** — ten deterministic synthetic families standing in for
//!   the TAMU collection (see `DESIGN.md` §3 for the substitution
//!   rationale): stencils, FEM-like variable bands, multi-diagonal,
//!   block-Jacobian, circuit, RMAT, Erdős–Rényi, Kronecker, Laplacian and
//!   rank-structured matrices, each with a controllable value model.
//! * **Reordering** — reverse Cuthill–McKee, used by the ablation studies to
//!   show how locality-improving permutations amplify delta recoding.
//! * **Statistics** — structural and value-entropy statistics used to
//!   characterize corpora the way the paper characterizes its 369 matrices.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod formats;
pub mod gen;
pub mod io;
pub mod reorder;
pub mod solve;
pub mod spmv;
pub mod stats;
pub mod util;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::{Result, SparseError};

/// Convenient glob-import surface: `use recode_sparse::prelude::*;`.
pub mod prelude {
    pub use crate::coo::Coo;
    pub use crate::csc::Csc;
    pub use crate::csr::Csr;
    pub use crate::dense::Dense;
    pub use crate::error::SparseError;
    pub use crate::gen::{generate, GenSpec, ValueModel};
    pub use crate::spmv::{spmv, spmv_into, SpmvKernel};
    pub use crate::stats::MatrixStats;
}
