//! Tiny dense matrix used as the ground-truth oracle in tests and property
//! checks. Deliberately minimal: row-major storage, indexing, matvec.

use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// An all-zeros matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Builds from a row-major slice. Panics if the length does not match.
    pub fn from_rows(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "row-major data length mismatch");
        Dense { nrows, ncols, data: data.to_vec() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Dense reference matvec: `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        for (r, y_r) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *y_r = acc;
        }
        y
    }
}

impl Index<(usize, usize)> for Dense {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.nrows && c < self.ncols, "index ({r},{c}) out of bounds");
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for Dense {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.nrows && c < self.ncols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_matvec() {
        let mut m = Dense::zeros(2, 3);
        m[(0, 0)] = 1.0;
        m[(0, 2)] = 2.0;
        m[(1, 1)] = 3.0;
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Dense::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Dense::zeros(1, 1);
        let _ = m[(1, 0)];
    }
}
