//! MatrixMarket coordinate-format reader/writer.
//!
//! Supports the subset SuiteSparse actually uses for sparse matrices:
//! `matrix coordinate {real,integer,pattern} {general,symmetric,skew-symmetric}`.
//! Pattern entries read as 1.0; symmetric files are expanded to full storage
//! (both triangles), matching how SpMV consumes them.

use crate::error::{Result, SparseError};
use crate::{Coo, Csr};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

fn parse_err(line: usize, msg: impl Into<String>) -> SparseError {
    SparseError::Parse { line, msg: msg.into() }
}

/// Pre-allocation cap (entries). The size line is untrusted input: a header
/// declaring `usize::MAX` nonzeros must not translate into a giant up-front
/// `reserve`. Beyond this cap the triplet buffers grow incrementally, paced
/// by bytes actually read.
const MAX_PREALLOC_ENTRIES: usize = 1 << 22;

/// Reads a MatrixMarket matrix from any reader.
///
/// # Errors
/// [`SparseError::Parse`] with the offending line for malformed input,
/// [`SparseError::Io`] for reader failures, and the usual shape errors if
/// entries are out of bounds.
pub fn read_matrix_market<R: std::io::Read>(reader: R) -> Result<Csr> {
    let mut lines = BufReader::new(reader).lines();
    let header =
        lines.next().ok_or_else(|| parse_err(0, "empty input"))?.map_err(SparseError::Io)?;
    let mut toks = header.split_whitespace();
    let banner = toks.next().unwrap_or("");
    if !banner.eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(1, format!("bad banner: {banner:?}")));
    }
    let object = toks.next().unwrap_or("").to_ascii_lowercase();
    let format = toks.next().unwrap_or("").to_ascii_lowercase();
    let field = toks.next().unwrap_or("").to_ascii_lowercase();
    let symmetry = toks.next().unwrap_or("general").to_ascii_lowercase();
    if object != "matrix" || format != "coordinate" {
        return Err(parse_err(
            1,
            format!("only `matrix coordinate` supported, got `{object} {format}`"),
        ));
    }
    let field = match field.as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(1, format!("unsupported field `{other}`"))),
    };
    let symmetry = match symmetry.as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(parse_err(1, format!("unsupported symmetry `{other}`"))),
    };

    // Skip comments, read size line.
    let mut lineno = 1usize;
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::Io)?;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((lineno, line));
        break;
    }
    let (size_lineno, size_line) =
        size_line.ok_or_else(|| parse_err(lineno, "missing size line"))?;
    let mut st = size_line.split_whitespace();
    let nrows: usize = st
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(size_lineno, "bad row count"))?;
    let ncols: usize = st
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(size_lineno, "bad column count"))?;
    let declared_nnz: usize = st
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(size_lineno, "bad nnz count"))?;

    // Clamp to what the shape can hold and to the pre-allocation cap; the
    // `seen != declared_nnz` check below still catches the lie.
    let cap = declared_nnz.min(nrows.saturating_mul(ncols)).min(MAX_PREALLOC_ENTRIES);
    let mut coo = Coo::with_capacity(
        nrows,
        ncols,
        match symmetry {
            Symmetry::General => cap,
            _ => cap.saturating_mul(2).min(MAX_PREALLOC_ENTRIES),
        },
    )?;

    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::Io)?;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut et = t.split_whitespace();
        let r: usize = et
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad row index"))?;
        let c: usize = et
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad column index"))?;
        if r == 0 || c == 0 {
            return Err(parse_err(lineno, "MatrixMarket indices are 1-based"));
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => et
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| parse_err(lineno, "bad value"))?,
        };
        let (r, c) = (r - 1, c - 1);
        coo.push(r, c, v)?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if r != c => coo.push(c, r, v)?,
            Symmetry::SkewSymmetric if r != c => coo.push(c, r, -v)?,
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(parse_err(
            lineno,
            format!("header declared {declared_nnz} entries, found {seen}"),
        ));
    }
    Ok(coo.to_csr())
}

/// Reads a MatrixMarket file from disk.
///
/// # Errors
/// As [`read_matrix_market`], plus file-open failures.
pub fn read_matrix_market_path<P: AsRef<Path>>(path: P) -> Result<Csr> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Writes `a` as `matrix coordinate real general`.
///
/// # Errors
/// Propagates writer failures.
pub fn write_matrix_market<W: Write>(a: &Csr, mut w: W) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by recode-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
         % paper Fig. 2 example\n\
         4 4 7\n\
         1 1 1.0\n1 3 2.0\n3 1 3.0\n3 3 4.0\n3 4 5.0\n4 2 6.0\n4 4 7.0\n";

    #[test]
    fn reads_general_real() {
        let a = read_matrix_market(GENERAL.as_bytes()).unwrap();
        assert_eq!(a.row_ptr(), &[0, 2, 2, 5, 7]);
        assert_eq!(a.col_idx(), &[0, 2, 0, 2, 3, 1, 3]);
        assert_eq!(a.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn reads_symmetric_and_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
             3 3 3\n\
             1 1 2.0\n2 1 5.0\n3 3 1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(1, 0), 5.0);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn reads_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
             2 2 1\n\
             2 1 3.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.get(0, 1), -3.0);
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 2\n\
             1 1\n2 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.values(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_bad_banner_and_counts() {
        assert!(read_matrix_market("%%NotMM matrix\n1 1 0\n".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
    }

    #[test]
    fn rejects_array_format_and_complex_field() {
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let a = read_matrix_market(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn path_reader_reports_missing_file() {
        assert!(read_matrix_market_path("/nonexistent/foo.mtx").is_err());
    }

    #[test]
    fn rejects_empty_and_truncated_input() {
        let e = read_matrix_market("".as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::Parse { .. }), "{e}");
        // Header but no size line.
        let e = read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n% comment only\n".as_bytes(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("missing size line"), "{e}");
        // Entry line cut off before the value token.
        let e = read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1".as_bytes(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("bad value"), "{e}");
    }

    #[test]
    fn rejects_malformed_size_line() {
        for size in ["x 2 1", "2 y 1", "2 2 z", "2", "2 2", "-1 2 1"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n{size}\n1 1 1.0\n");
            let e = read_matrix_market(text.as_bytes()).unwrap_err();
            assert!(matches!(e, SparseError::Parse { .. }), "size line {size:?}: {e}");
        }
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        // Row 3 in a 2x2 matrix: typed bounds error, not a panic.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { row: 2, .. }), "{e}");
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1.0\n";
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { col: 8, .. }), "{e}");
    }

    #[test]
    fn malicious_declared_nnz_errors_without_huge_allocation() {
        // u64::MAX entries declared, one supplied. The reader must clamp its
        // pre-allocation (not `reserve` per the header) and report the
        // mismatch as a parse error.
        let text =
            format!("%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n", u64::MAX);
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("declared"), "{e}");
    }

    #[test]
    fn rejects_non_numeric_entry_tokens() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\none 1 1.0\n";
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bad row index"), "{e}");
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 not-a-float\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
