//! Matrix I/O. The TAMU/SuiteSparse collection the paper evaluates on is
//! distributed in MatrixMarket format, so supporting it lets every
//! experiment in this repository run on the real collection as well as on
//! the synthetic substitute corpus.

pub mod matrix_market;

pub use matrix_market::{read_matrix_market, read_matrix_market_path, write_matrix_market};
