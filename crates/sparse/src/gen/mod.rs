//! Deterministic synthetic matrix generators.
//!
//! These families stand in for the TAMU/SuiteSparse collection (DESIGN.md
//! §3, substitution 1). The paper's §IV-B characterizes its 369-matrix
//! sample as spanning banded, diagonal, symmetric and unstructured matrices
//! from 2D/3D-geometry problems and from graph/optimization problems; the
//! families here cover the same spectrum:
//!
//! | family | TAMU analogue | structure |
//! |---|---|---|
//! | [`GenSpec::Stencil2D`]/[`GenSpec::Stencil3D`] | CFD, thermodynamics, electromagnetics | banded, symmetric |
//! | [`GenSpec::MultiDiagonal`] | model reduction, structured PDE | diagonal |
//! | [`GenSpec::FemBand`] | structural engineering (ship sections, frames) | variable band, symmetric |
//! | [`GenSpec::BlockJacobian`] | economics, chemical process simulation | block structure |
//! | [`GenSpec::Circuit`] | circuit simulation, power networks | near-diagonal + dense hub rows |
//! | [`GenSpec::Rmat`] | web/social graphs | power-law, unstructured |
//! | [`GenSpec::ErdosRenyi`] | random graphs/statistics | uniform, unstructured |
//! | [`GenSpec::Kronecker`] | synthetic graph benchmarks (Graph500) | self-similar |
//! | [`GenSpec::SmallWorld`] | networks with locality + long links | banded + noise |
//! | [`GenSpec::Laplacian`] | spectral methods on graphs | symmetric, diagonally dominant |
//!
//! Every generator is a pure function of `(spec, seed)` so corpora are
//! reproducible byte-for-byte.

mod application;
mod graphs;
mod structured;

use crate::{Coo, Csr};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How non-zero *values* are produced. Value entropy is a first-order input
/// to the paper's compression results (the value stream is 8 of the 12 raw
/// bytes per non-zero), so each family picks a model that matches its
/// real-world analogue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueModel {
    /// All ones — pattern matrices and unweighted graphs.
    Ones,
    /// Classic stencil coefficients: positive diagonal, small set of
    /// negative off-diagonal values. Very low entropy, like assembled
    /// constant-coefficient PDE operators.
    StencilCoeffs,
    /// Values drawn from a table of `distinct` random doubles — models FEM
    /// assembly where a few element matrices repeat across the mesh.
    MixedRepeated {
        /// Number of distinct values in the table (>= 1).
        distinct: u16,
    },
    /// Gaussian-ish values rounded to `levels` quantization steps — models
    /// measured physical coefficients stored with limited precision.
    QuantizedGaussian {
        /// Quantization steps per unit (>= 1).
        levels: u16,
    },
    /// Full-entropy uniform doubles in `(0, 1]` — the adversarial case where
    /// value compression buys nothing.
    UniformRandom,
}

impl ValueModel {
    /// Assigns values to every stored entry of `a`, deterministically from
    /// `seed`, preserving structure.
    pub fn assign(self, a: &mut Csr, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed_0001);
        // Snapshot structure before borrowing values mutably.
        let bands: Vec<i64> = a.iter().map(|(r, c, _)| c as i64 - r as i64).collect();
        let table: Vec<f64> = match self {
            ValueModel::MixedRepeated { distinct } => {
                let n = distinct.max(1) as usize;
                (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect()
            }
            _ => Vec::new(),
        };
        for (k, v) in a.values_mut().iter_mut().enumerate() {
            *v = match self {
                ValueModel::Ones => 1.0,
                ValueModel::StencilCoeffs => {
                    if bands[k] == 0 {
                        6.0
                    } else if bands[k].abs() == 1 {
                        -1.0
                    } else {
                        -0.5
                    }
                }
                ValueModel::MixedRepeated { .. } => table[rng.gen_range(0..table.len())],
                ValueModel::QuantizedGaussian { levels } => {
                    let l = levels.max(1) as f64;
                    // Irwin–Hall approximation of a Gaussian.
                    let g: f64 = (0..6).map(|_| rng.gen_range(-0.5..0.5)).sum();
                    (g * l).round() / l
                }
                ValueModel::UniformRandom => 1.0 - rng.gen::<f64>(),
            };
            // Keep entries structurally non-zero.
            if *v == 0.0 {
                *v = 1.0 / 1024.0;
            }
        }
    }
}

/// Base pattern for [`GenSpec::Kronecker`] products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KroneckerBase {
    /// 3-vertex star (hub-and-spoke growth).
    Star,
    /// 3-vertex chain (path-like growth).
    Chain,
    /// Fully connected 3-vertex pattern with self loops (dense growth).
    Dense,
}

/// A synthetic matrix family plus its parameters. See the module docs for
/// the TAMU analogue of each family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GenSpec {
    /// 2D grid stencil (`points` ∈ {5, 9}) on an `nx x ny` grid.
    Stencil2D {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Stencil points: 5 or 9.
        points: u8,
        /// Value model.
        values: ValueModel,
    },
    /// 3D grid stencil (`points` ∈ {7, 27}) on an `nx x ny x nz` grid.
    Stencil3D {
        /// Grid extent in x.
        nx: usize,
        /// Grid extent in y.
        ny: usize,
        /// Grid extent in z.
        nz: usize,
        /// Stencil points: 7 or 27.
        points: u8,
        /// Value model.
        values: ValueModel,
    },
    /// `n x n` matrix with full diagonals at the given offsets.
    MultiDiagonal {
        /// Matrix dimension.
        n: usize,
        /// Diagonal offsets (0 = main diagonal).
        offsets: Vec<i64>,
        /// Value model.
        values: ValueModel,
    },
    /// Symmetric variable-band matrix: within a half-bandwidth `band`, each
    /// entry is present with probability `fill` — an FEM stiffness look-alike.
    FemBand {
        /// Matrix dimension.
        n: usize,
        /// Half bandwidth.
        band: usize,
        /// Within-band fill probability (0, 1].
        fill: f64,
        /// Value model.
        values: ValueModel,
    },
    /// Block-diagonal Jacobian with dense `block x block` blocks and sparse
    /// inter-block couplings (economic/chemical-process structure).
    BlockJacobian {
        /// Number of diagonal blocks.
        nblocks: usize,
        /// Block dimension.
        block: usize,
        /// Expected couplings per row outside the block.
        coupling: f64,
        /// Value model.
        values: ValueModel,
    },
    /// Circuit-like: sparse near-diagonal rows plus a few dense hub
    /// rows/columns (voltage rails).
    Circuit {
        /// Matrix dimension.
        n: usize,
        /// Average off-hub degree.
        avg_deg: f64,
        /// Number of dense hub nodes.
        hubs: usize,
        /// Value model.
        values: ValueModel,
    },
    /// RMAT power-law digraph adjacency with `2^scale` vertices and about
    /// `edge_factor * 2^scale` edges (Graph500 parameters a=0.57, b=c=0.19).
    Rmat {
        /// log2 of the vertex count.
        scale: u8,
        /// Edges per vertex.
        edge_factor: usize,
        /// Value model.
        values: ValueModel,
    },
    /// Erdős–Rényi digraph with `n` vertices, expected degree `avg_deg`.
    ErdosRenyi {
        /// Vertex count.
        n: usize,
        /// Expected out-degree.
        avg_deg: f64,
        /// Value model.
        values: ValueModel,
    },
    /// `power`-fold Kronecker product of a 3-vertex base pattern.
    Kronecker {
        /// Base pattern.
        base: KroneckerBase,
        /// Kronecker power (matrix dimension is `3^power`).
        power: u8,
        /// Value model.
        values: ValueModel,
    },
    /// Watts–Strogatz-style ring: each vertex links to `k` nearest
    /// neighbours, each link rewired to a random target with probability
    /// `rewire`.
    SmallWorld {
        /// Vertex count.
        n: usize,
        /// Nearest-neighbour links per side.
        k: usize,
        /// Rewiring probability.
        rewire: f64,
        /// Value model.
        values: ValueModel,
    },
    /// Graph Laplacian (`D - A`) of an RMAT graph — symmetric, diagonally
    /// dominant, integer-valued.
    Laplacian {
        /// log2 of the vertex count.
        scale: u8,
        /// Edges per vertex of the underlying RMAT graph.
        edge_factor: usize,
    },
}

impl GenSpec {
    /// Short family tag used in corpus listings (e.g. `stencil2d`).
    pub fn family(&self) -> &'static str {
        match self {
            GenSpec::Stencil2D { .. } => "stencil2d",
            GenSpec::Stencil3D { .. } => "stencil3d",
            GenSpec::MultiDiagonal { .. } => "multidiag",
            GenSpec::FemBand { .. } => "femband",
            GenSpec::BlockJacobian { .. } => "blockjac",
            GenSpec::Circuit { .. } => "circuit",
            GenSpec::Rmat { .. } => "rmat",
            GenSpec::ErdosRenyi { .. } => "erdos",
            GenSpec::Kronecker { .. } => "kron",
            GenSpec::SmallWorld { .. } => "smallworld",
            GenSpec::Laplacian { .. } => "laplacian",
        }
    }

    /// The value model this spec will apply (Laplacians define their own
    /// integer values).
    pub fn value_model(&self) -> Option<ValueModel> {
        match self {
            GenSpec::Stencil2D { values, .. }
            | GenSpec::Stencil3D { values, .. }
            | GenSpec::MultiDiagonal { values, .. }
            | GenSpec::FemBand { values, .. }
            | GenSpec::BlockJacobian { values, .. }
            | GenSpec::Circuit { values, .. }
            | GenSpec::Rmat { values, .. }
            | GenSpec::ErdosRenyi { values, .. }
            | GenSpec::Kronecker { values, .. }
            | GenSpec::SmallWorld { values, .. } => Some(*values),
            GenSpec::Laplacian { .. } => None,
        }
    }
}

/// Generates the matrix described by `spec`, deterministically from `seed`.
pub fn generate(spec: &GenSpec, seed: u64) -> Csr {
    let mut structure = match spec {
        GenSpec::Stencil2D { nx, ny, points, .. } => structured::stencil_2d(*nx, *ny, *points),
        GenSpec::Stencil3D { nx, ny, nz, points, .. } => {
            structured::stencil_3d(*nx, *ny, *nz, *points)
        }
        GenSpec::MultiDiagonal { n, offsets, .. } => structured::multi_diagonal(*n, offsets),
        GenSpec::FemBand { n, band, fill, .. } => structured::fem_band(*n, *band, *fill, seed),
        GenSpec::BlockJacobian { nblocks, block, coupling, .. } => {
            application::block_jacobian(*nblocks, *block, *coupling, seed)
        }
        GenSpec::Circuit { n, avg_deg, hubs, .. } => {
            application::circuit(*n, *avg_deg, *hubs, seed)
        }
        GenSpec::Rmat { scale, edge_factor, .. } => graphs::rmat(*scale, *edge_factor, seed),
        GenSpec::ErdosRenyi { n, avg_deg, .. } => graphs::erdos_renyi(*n, *avg_deg, seed),
        GenSpec::Kronecker { base, power, .. } => graphs::kronecker(*base, *power),
        GenSpec::SmallWorld { n, k, rewire, .. } => graphs::small_world(*n, *k, *rewire, seed),
        GenSpec::Laplacian { scale, edge_factor } => {
            return graphs::laplacian(*scale, *edge_factor, seed);
        }
    };
    if let Some(model) = spec.value_model() {
        model.assign(&mut structure, seed);
    }
    structure
}

/// Shared helper: dedup-and-convert a structure-only COO (all values 1.0)
/// into CSR where duplicate coordinates collapse to a single entry instead of
/// summing.
pub(crate) fn coo_pattern_to_csr(mut coo: Coo) -> Csr {
    coo.compact();
    let (rows, cols, _) = coo.triplets();
    let nrows = coo.nrows();
    let ncols = coo.ncols();
    let mut counts = vec![0usize; nrows];
    for &r in rows {
        counts[r as usize] += 1;
    }
    let row_ptr = crate::util::exclusive_prefix_sum(&counts);
    let mut col_idx = vec![0u32; cols.len()];
    let mut next = row_ptr.clone();
    for i in 0..cols.len() {
        let r = rows[i] as usize;
        col_idx[next[r]] = cols[i];
        next[r] += 1;
    }
    let values = vec![1.0; col_idx.len()];
    Csr::from_parts_unchecked(nrows, ncols, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<GenSpec> {
        vec![
            GenSpec::Stencil2D { nx: 16, ny: 16, points: 5, values: ValueModel::StencilCoeffs },
            GenSpec::Stencil2D { nx: 8, ny: 12, points: 9, values: ValueModel::Ones },
            GenSpec::Stencil3D {
                nx: 5,
                ny: 6,
                nz: 7,
                points: 7,
                values: ValueModel::QuantizedGaussian { levels: 16 },
            },
            GenSpec::Stencil3D { nx: 4, ny: 4, nz: 4, points: 27, values: ValueModel::Ones },
            GenSpec::MultiDiagonal {
                n: 64,
                offsets: vec![-8, -1, 0, 1, 8],
                values: ValueModel::MixedRepeated { distinct: 4 },
            },
            GenSpec::FemBand {
                n: 80,
                band: 10,
                fill: 0.4,
                values: ValueModel::MixedRepeated { distinct: 12 },
            },
            GenSpec::BlockJacobian {
                nblocks: 8,
                block: 9,
                coupling: 1.5,
                values: ValueModel::UniformRandom,
            },
            GenSpec::Circuit {
                n: 120,
                avg_deg: 3.0,
                hubs: 3,
                values: ValueModel::QuantizedGaussian { levels: 64 },
            },
            GenSpec::Rmat { scale: 7, edge_factor: 8, values: ValueModel::Ones },
            GenSpec::ErdosRenyi { n: 100, avg_deg: 6.0, values: ValueModel::UniformRandom },
            GenSpec::Kronecker { base: KroneckerBase::Star, power: 4, values: ValueModel::Ones },
            GenSpec::SmallWorld { n: 90, k: 3, rewire: 0.1, values: ValueModel::Ones },
            GenSpec::Laplacian { scale: 6, edge_factor: 4 },
        ]
    }

    #[test]
    fn every_family_generates_a_valid_matrix() {
        for spec in specs() {
            let a = generate(&spec, 42);
            // Re-validate through the checked constructor.
            let b = Csr::try_from_parts(
                a.nrows(),
                a.ncols(),
                a.row_ptr().to_vec(),
                a.col_idx().to_vec(),
                a.values().to_vec(),
            );
            assert!(b.is_ok(), "family {} produced invalid CSR: {:?}", spec.family(), b.err());
            assert!(a.nnz() > 0, "family {} produced an empty matrix", spec.family());
            assert!(
                a.values().iter().all(|&v| v != 0.0 && v.is_finite()),
                "family {} produced zero/non-finite values",
                spec.family()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        for spec in specs() {
            let a = generate(&spec, 7);
            let b = generate(&spec, 7);
            assert_eq!(a, b, "family {} not deterministic", spec.family());
        }
    }

    #[test]
    fn different_seeds_differ_for_random_families() {
        let spec = GenSpec::ErdosRenyi { n: 200, avg_deg: 5.0, values: ValueModel::UniformRandom };
        assert_ne!(generate(&spec, 1), generate(&spec, 2));
    }

    #[test]
    fn value_models_have_expected_entropy_ordering() {
        let mk = |values| {
            let spec = GenSpec::FemBand { n: 200, band: 12, fill: 0.5, values };
            let a = generate(&spec, 3);
            crate::stats::MatrixStats::compute(&a).value_byte_entropy
        };
        let ones = mk(ValueModel::Ones);
        let stencil = mk(ValueModel::StencilCoeffs);
        let repeated = mk(ValueModel::MixedRepeated { distinct: 8 });
        let random = mk(ValueModel::UniformRandom);
        // The 8 bytes of the f64 1.0 contain three distinct byte values, so
        // "all ones" still has ~1.06 bits/byte of byte-level entropy.
        assert!(ones < 1.5, "ones entropy {ones}");
        assert!(stencil < repeated, "stencil {stencil} vs repeated {repeated}");
        assert!(repeated < random, "repeated {repeated} vs random {random}");
        assert!(random > 5.0, "uniform doubles should be near-incompressible, got {random}");
    }

    #[test]
    fn family_tags_cover_all_eleven_families() {
        let mut tags: Vec<&str> = specs().iter().map(super::GenSpec::family).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 11, "expected one tag per family, got {tags:?}");
    }
}
