//! Graph-derived families: RMAT power-law digraphs, Erdős–Rényi, Kronecker
//! powers, small-world rings and graph Laplacians — the unstructured half of
//! the TAMU spectrum, where delta recoding gains the least and entropy
//! coding carries the compression.

use super::KroneckerBase;
use crate::{Coo, Csr};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Graph500 RMAT probabilities.
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

/// RMAT power-law digraph with `2^scale` vertices and ~`edge_factor * 2^scale`
/// edges (duplicates collapse, so the realized count is slightly lower).
pub fn rmat(scale: u8, edge_factor: usize, seed: u64) -> Csr {
    assert!(scale > 0 && scale < 31, "scale must be in 1..31");
    let n = 1usize << scale;
    let edges = n * edge_factor;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0000_726d_6174_u64);
    let mut coo = Coo::with_capacity(n, n, edges).expect("validated shape");
    for _ in 0..edges {
        let (mut r, mut c) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let p: f64 = rng.gen();
            let (dr, dc) = if p < RMAT_A {
                (0, 0)
            } else if p < RMAT_A + RMAT_B {
                (0, 1)
            } else if p < RMAT_A + RMAT_B + RMAT_C {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << bit;
            c |= dc << bit;
        }
        coo.push(r, c, 1.0).expect("in bounds");
    }
    super::coo_pattern_to_csr(coo)
}

/// Erdős–Rényi digraph: `n * avg_deg` random edges (duplicates collapse).
pub fn erdos_renyi(n: usize, avg_deg: f64, seed: u64) -> Csr {
    assert!(n > 0, "graph must be non-empty");
    assert!(avg_deg >= 0.0, "degree must be non-negative");
    let edges = (n as f64 * avg_deg) as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0065_7264_6f73_u64);
    let mut coo = Coo::with_capacity(n, n, edges).expect("validated shape");
    for _ in 0..edges {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        coo.push(r, c, 1.0).expect("in bounds");
    }
    super::coo_pattern_to_csr(coo)
}

/// `power`-fold Kronecker product of a 3-vertex base pattern. The dimension
/// is `3^power`; patterns are deterministic (no RNG).
pub fn kronecker(base: KroneckerBase, power: u8) -> Csr {
    assert!(power >= 1, "power must be at least 1");
    assert!(3usize.checked_pow(power as u32).is_some(), "3^power overflows");
    let base_edges: &[(usize, usize)] = match base {
        // Star: hub 0 connected to 1 and 2, all with self loops.
        KroneckerBase::Star => &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 0), (0, 2), (2, 0)],
        // Chain: 0-1-2 path with self loops.
        KroneckerBase::Chain => &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 0), (1, 2), (2, 1)],
        // Dense: complete 3-vertex pattern with self loops.
        KroneckerBase::Dense => {
            &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]
        }
    };
    let mut edges: Vec<(usize, usize)> = vec![(0, 0)];
    let mut dim = 1usize;
    for _ in 0..power {
        let mut next = Vec::with_capacity(edges.len() * base_edges.len());
        for &(r, c) in &edges {
            for &(br, bc) in base_edges {
                next.push((r * 3 + br, c * 3 + bc));
            }
        }
        edges = next;
        dim *= 3;
    }
    let mut coo = Coo::with_capacity(dim, dim, edges.len()).expect("validated shape");
    for (r, c) in edges {
        coo.push(r, c, 1.0).expect("in bounds");
    }
    super::coo_pattern_to_csr(coo)
}

/// Watts–Strogatz-style ring lattice with rewiring. Each vertex connects to
/// its `k` clockwise neighbours (made symmetric), and each link is replaced
/// by a uniformly random one with probability `rewire`.
pub fn small_world(n: usize, k: usize, rewire: f64, seed: u64) -> Csr {
    assert!(n > 2 * k, "ring needs n > 2k");
    assert!((0.0..=1.0).contains(&rewire), "rewire must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0073_6d61_6c6c_u64);
    let mut coo = Coo::with_capacity(n, n, 2 * n * k).expect("validated shape");
    for v in 0..n {
        for step in 1..=k {
            let mut u = (v + step) % n;
            if rng.gen::<f64>() < rewire {
                u = rng.gen_range(0..n);
                if u == v {
                    u = (v + 1) % n;
                }
            }
            coo.push(v, u, 1.0).expect("in bounds");
            coo.push(u, v, 1.0).expect("in bounds");
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// Graph Laplacian `D - A` of the symmetrized RMAT graph: symmetric,
/// diagonally dominant, integer-valued (a natural low-entropy value stream).
pub fn laplacian(scale: u8, edge_factor: usize, seed: u64) -> Csr {
    let a = rmat(scale, edge_factor, seed);
    let n = a.nrows();
    // Symmetrize the pattern and drop self loops.
    let t = a.transpose();
    let mut coo = Coo::with_capacity(n, n, 2 * a.nnz() + n).expect("validated shape");
    for src in [&a, &t] {
        for (r, c, _) in src.iter() {
            if r != c {
                coo.push(r, c, 1.0).expect("in bounds");
            }
        }
    }
    let adj = super::coo_pattern_to_csr(coo);
    // L = D - A with unit weights.
    let mut out = Coo::with_capacity(n, n, adj.nnz() + n).expect("validated shape");
    for r in 0..n {
        let (cols, _) = adj.row(r);
        let deg = cols.len() as f64;
        if deg > 0.0 {
            out.push(r, r, deg).expect("in bounds");
        }
        for &c in cols {
            out.push(r, c as usize, -1.0).expect("in bounds");
        }
    }
    out.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn rmat_has_power_law_skew() {
        let a = rmat(9, 8, 13);
        assert_eq!(a.nrows(), 512);
        let s = MatrixStats::compute(&a);
        // Power-law graphs have a max degree far above the mean.
        assert!(
            s.max_nnz_per_row as f64 > 4.0 * s.avg_nnz_per_row,
            "max {} vs avg {}",
            s.max_nnz_per_row,
            s.avg_nnz_per_row
        );
    }

    #[test]
    fn erdos_renyi_is_roughly_uniform() {
        let a = erdos_renyi(400, 8.0, 5);
        let s = MatrixStats::compute(&a);
        assert!(s.avg_nnz_per_row > 6.0 && s.avg_nnz_per_row <= 8.0);
        // Uniform graphs have mild skew compared to RMAT.
        assert!((s.max_nnz_per_row as f64) < 4.0 * s.avg_nnz_per_row);
    }

    #[test]
    fn kronecker_dimensions_and_self_similarity() {
        let a = kronecker(KroneckerBase::Star, 3);
        assert_eq!(a.nrows(), 27);
        assert_eq!(a.nnz(), 7usize.pow(3));
        let d = kronecker(KroneckerBase::Dense, 2);
        assert_eq!(d.nnz(), 81);
        assert_eq!(d.density(), 1.0);
    }

    #[test]
    fn small_world_is_symmetric_and_banded_without_rewiring() {
        let a = small_world(50, 2, 0.0, 1);
        assert!(a.is_symmetric(1e-12));
        // Without rewiring the only long links wrap around the ring.
        let s = MatrixStats::compute(&a);
        assert_eq!(s.bandwidth, 49, "ring wrap-around links span the matrix");
        let interior_band: Vec<usize> = (5..45)
            .flat_map(|r| {
                let (cols, _) = a.row(r);
                cols.iter()
                    .map(move |&c| (c as i64 - r as i64).unsigned_abs() as usize)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(interior_band.iter().all(|&b| b <= 2));
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(6, 4, 99);
        for r in 0..l.nrows() {
            let (_, vals) = l.row(r);
            let sum: f64 = vals.iter().sum();
            assert!(sum.abs() < 1e-9, "row {r} sums to {sum}");
        }
        assert!(l.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn small_world_rejects_tiny_rings() {
        let _ = small_world(4, 2, 0.0, 1);
    }
}
