//! Structured (geometry-derived) families: grid stencils, multi-diagonal
//! matrices and FEM-like variable bands. These are the banded/diagonal/
//! symmetric part of the TAMU spectrum and the best case for delta recoding.

use crate::{Coo, Csr};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// 2D grid stencil pattern. `points` must be 5 (von Neumann) or 9 (Moore).
///
/// # Panics
/// On an unsupported point count or an empty grid.
pub fn stencil_2d(nx: usize, ny: usize, points: u8) -> Csr {
    assert!(nx > 0 && ny > 0, "grid must be non-empty");
    assert!(points == 5 || points == 9, "2D stencil supports 5 or 9 points");
    let n = nx * ny;
    let mut coo = Coo::with_capacity(n, n, n * points as usize).expect("validated shape");
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let r = idx(x, y);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let diag_neighbor = dx != 0 && dy != 0;
                    if points == 5 && diag_neighbor {
                        continue;
                    }
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    coo.push(r, idx(xx as usize, yy as usize), 1.0).expect("in bounds");
                }
            }
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// 3D grid stencil pattern. `points` must be 7 or 27.
///
/// # Panics
/// On an unsupported point count or an empty grid.
pub fn stencil_3d(nx: usize, ny: usize, nz: usize, points: u8) -> Csr {
    assert!(nx > 0 && ny > 0 && nz > 0, "grid must be non-empty");
    assert!(points == 7 || points == 27, "3D stencil supports 7 or 27 points");
    let n = nx * ny * nz;
    let mut coo = Coo::with_capacity(n, n, n * points as usize).expect("validated shape");
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r = idx(x, y, z);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let axis_moves = (dx != 0) as u8 + (dy != 0) as u8 + (dz != 0) as u8;
                            if points == 7 && axis_moves > 1 {
                                continue;
                            }
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            coo.push(r, idx(xx as usize, yy as usize, zz as usize), 1.0)
                                .expect("in bounds");
                        }
                    }
                }
            }
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// Full diagonals at the given offsets of an `n x n` matrix.
///
/// # Panics
/// If `offsets` is empty or an offset magnitude reaches `n`.
pub fn multi_diagonal(n: usize, offsets: &[i64]) -> Csr {
    assert!(!offsets.is_empty(), "need at least one diagonal");
    assert!(offsets.iter().all(|o| o.unsigned_abs() < n as u64), "offset magnitude must be < n");
    let mut coo = Coo::with_capacity(n, n, n * offsets.len()).expect("validated shape");
    for r in 0..n {
        for &off in offsets {
            let c = r as i64 + off;
            if c >= 0 && (c as usize) < n {
                coo.push(r, c as usize, 1.0).expect("in bounds");
            }
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// Symmetric variable-band pattern: every `(r, c)` with `0 < c - r <= band`
/// is present with probability `fill` (mirrored), plus a full diagonal.
/// Approximates assembled FEM stiffness matrices where mesh irregularity
/// perforates the band.
pub fn fem_band(n: usize, band: usize, fill: f64, seed: u64) -> Csr {
    assert!(n > 0, "matrix must be non-empty");
    assert!((0.0..=1.0).contains(&fill), "fill must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ FEM_SEED_TAG);
    let expect = n + (n as f64 * band as f64 * fill) as usize * 2;
    let mut coo = Coo::with_capacity(n, n, expect).expect("validated shape");
    for r in 0..n {
        coo.push(r, r, 1.0).expect("in bounds");
        let hi = (r + band).min(n - 1);
        for c in (r + 1)..=hi {
            if rng.gen::<f64>() < fill {
                coo.push(r, c, 1.0).expect("in bounds");
                coo.push(c, r, 1.0).expect("in bounds");
            }
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// Domain-separation tag so the FEM generator's RNG stream is independent of
/// other families sharing the same corpus seed.
const FEM_SEED_TAG: u64 = 0xFE0B_0DD5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn stencil_2d_5pt_interior_row_has_5_entries() {
        let a = stencil_2d(10, 10, 5);
        assert_eq!(a.nrows(), 100);
        // Interior point (5,5) -> row 55.
        let (cols, _) = a.row(55);
        assert_eq!(cols.len(), 5);
        assert!(a.is_symmetric(1e-12));
        // Corner has 3 neighbours (incl. self).
        assert_eq!(a.row(0).0.len(), 3);
    }

    #[test]
    fn stencil_2d_9pt_interior_row_has_9_entries() {
        let a = stencil_2d(8, 8, 9);
        let mid = 8 * 4 + 4;
        assert_eq!(a.row(mid).0.len(), 9);
        assert_eq!(a.row(0).0.len(), 4);
    }

    #[test]
    fn stencil_3d_counts() {
        let a7 = stencil_3d(5, 5, 5, 7);
        let mid = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a7.row(mid).0.len(), 7);
        let a27 = stencil_3d(4, 4, 4, 27);
        let mid = (4 + 1) * 4 + 1;
        assert_eq!(a27.row(mid).0.len(), 27);
        assert!(a27.is_symmetric(1e-12));
    }

    #[test]
    fn multi_diagonal_bandwidth_matches_offsets() {
        let a = multi_diagonal(50, &[-10, 0, 10]);
        let s = MatrixStats::compute(&a);
        assert_eq!(s.bandwidth, 10);
        assert_eq!(a.nnz(), 50 + 40 + 40);
    }

    #[test]
    fn fem_band_is_symmetric_with_full_diagonal() {
        let a = fem_band(60, 8, 0.5, 9);
        assert!(a.is_symmetric(1e-12));
        for r in 0..60 {
            assert_ne!(a.get(r, r), 0.0, "diagonal missing at {r}");
        }
        let s = MatrixStats::compute(&a);
        assert!(s.bandwidth <= 8);
    }

    #[test]
    fn fem_band_fill_extremes() {
        let empty_band = fem_band(20, 5, 0.0, 1);
        assert_eq!(empty_band.nnz(), 20, "fill=0 leaves only the diagonal");
        let full_band = fem_band(20, 3, 1.0, 1);
        // Full band: diagonal + mirrored band entries.
        let expected: usize = 20 + 2 * ((20 - 1) + (20 - 2) + (20 - 3));
        assert_eq!(full_band.nnz(), expected);
    }

    #[test]
    #[should_panic(expected = "5 or 9")]
    fn stencil_2d_rejects_bad_points() {
        let _ = stencil_2d(3, 3, 7);
    }
}
