//! Application-structured families: block Jacobians (economic and chemical
//! process models) and circuit matrices (near-diagonal plus dense rails).

use crate::{Coo, Csr};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Block-diagonal Jacobian: `nblocks` dense `block x block` diagonal blocks
/// plus, per row, `Poisson(coupling)`-ish sparse couplings to other blocks.
pub fn block_jacobian(nblocks: usize, block: usize, coupling: f64, seed: u64) -> Csr {
    assert!(nblocks > 0 && block > 0, "need at least one non-empty block");
    assert!(coupling >= 0.0, "coupling must be non-negative");
    let n = nblocks * block;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x006a_6163_u64);
    let expect = n * block + (n as f64 * coupling) as usize;
    let mut coo = Coo::with_capacity(n, n, expect).expect("validated shape");
    for b in 0..nblocks {
        let base = b * block;
        for r in 0..block {
            for c in 0..block {
                coo.push(base + r, base + c, 1.0).expect("in bounds");
            }
            // Sparse inter-block couplings.
            let k = sample_poissonish(&mut rng, coupling);
            for _ in 0..k {
                let c = rng.gen_range(0..n);
                coo.push(base + r, c, 1.0).expect("in bounds");
            }
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// Circuit-like matrix: a symmetric near-diagonal background (component
/// interconnects) plus `hubs` dense rows/columns (ground/supply rails every
/// node touches).
pub fn circuit(n: usize, avg_deg: f64, hubs: usize, seed: u64) -> Csr {
    assert!(n > 0, "matrix must be non-empty");
    assert!(hubs < n, "hubs must be fewer than nodes");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0063_6b74_u64);
    let expect = n + (n as f64 * avg_deg) as usize * 2 + hubs * n * 2;
    let mut coo = Coo::with_capacity(n, n, expect).expect("validated shape");
    for r in 0..n {
        coo.push(r, r, 1.0).expect("in bounds");
        let k = sample_poissonish(&mut rng, avg_deg / 2.0);
        for _ in 0..k {
            // Mostly-local neighbours, as in physical layouts.
            let span = (n / 16).max(2);
            let off = rng.gen_range(1..=span);
            let c = (r + off) % n;
            coo.push(r, c, 1.0).expect("in bounds");
            coo.push(c, r, 1.0).expect("in bounds");
        }
    }
    // Dense rails: every node couples to each hub.
    for h in 0..hubs {
        for v in 0..n {
            if v != h {
                coo.push(h, v, 1.0).expect("in bounds");
                coo.push(v, h, 1.0).expect("in bounds");
            }
        }
    }
    super::coo_pattern_to_csr(coo)
}

/// Small integer draw with mean `lambda` — a cheap Poisson stand-in adequate
/// for structure generation (bounded tail keeps row lengths sane).
fn sample_poissonish<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let base = lambda.floor() as usize;
    let frac = lambda - base as f64;
    let mut k = base;
    if rng.gen::<f64>() < frac {
        k += 1;
    }
    // +/- 1 jitter for variance.
    match rng.gen_range(0..4) {
        0 if k > 0 => k - 1,
        1 => k + 1,
        _ => k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn block_jacobian_blocks_are_dense() {
        let a = block_jacobian(5, 6, 0.0, 3);
        assert_eq!(a.nrows(), 30);
        // With zero coupling every entry lives inside a block...
        for (r, c, _) in a.iter() {
            assert_eq!(r / 6, c / 6, "entry ({r},{c}) escapes its block");
        }
        // ...and blocks are at least half full (jitter may drop nothing here:
        // exactly dense).
        assert_eq!(a.nnz(), 5 * 6 * 6);
    }

    #[test]
    fn block_jacobian_coupling_adds_offblock_entries() {
        let a = block_jacobian(5, 6, 2.0, 3);
        let off_block = a.iter().filter(|&(r, c, _)| r / 6 != c / 6).count();
        assert!(off_block > 0, "coupling must escape blocks");
    }

    #[test]
    fn circuit_hubs_are_dense_rows() {
        let n = 200;
        let a = circuit(n, 3.0, 2, 7);
        let s = MatrixStats::compute(&a);
        assert!(s.max_nnz_per_row >= n - 1, "hub rows must touch every node");
        assert!(a.is_symmetric(1e-12));
        // Non-hub rows stay short.
        let (cols, _) = a.row(n / 2);
        assert!(cols.len() < 40);
    }

    #[test]
    fn poissonish_mean_is_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| sample_poissonish(&mut rng, 3.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
        assert_eq!(sample_poissonish(&mut rng, 0.0), 0);
    }
}
