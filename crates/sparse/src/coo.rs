//! Coordinate (triplet) format — the natural construction and interchange
//! format. MatrixMarket files and the synthetic generators both produce
//! [`Coo`], which is then converted to [`crate::Csr`] for computation.

use crate::error::{Result, SparseError};
use crate::util::exclusive_prefix_sum;
use crate::Csr;

/// A sparse matrix as an unordered list of `(row, col, value)` triplets,
/// stored struct-of-arrays for cache-friendly scans.
///
/// Duplicate coordinates are allowed while building; [`Coo::to_csr`] and
/// [`Coo::compact`] sum them, which is the MatrixMarket convention.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl Coo {
    /// Creates an empty matrix of the given shape.
    ///
    /// # Errors
    /// Returns [`SparseError::ColumnIndexOverflow`] if either dimension
    /// exceeds the 4-byte index space (the paper's CSR layout stores 4-byte
    /// indices, so larger shapes cannot round-trip).
    pub fn new(nrows: usize, ncols: usize) -> Result<Self> {
        if nrows > u32::MAX as usize {
            return Err(SparseError::ColumnIndexOverflow(nrows));
        }
        if ncols > u32::MAX as usize {
            return Err(SparseError::ColumnIndexOverflow(ncols));
        }
        Ok(Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() })
    }

    /// Creates an empty matrix and reserves space for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Result<Self> {
        let mut m = Self::new(nrows, ncols)?;
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.vals.reserve(cap);
        Ok(m)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (including any duplicates not yet compacted).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends one triplet.
    ///
    /// # Errors
    /// [`SparseError::IndexOutOfBounds`] if `(row, col)` lies outside the
    /// declared shape.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
        Ok(())
    }

    /// Appends a triplet, skipping exact zeros (generators use this so that
    /// structural nnz equals stored nnz).
    pub fn push_nonzero(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if val == 0.0 {
            return Ok(());
        }
        self.push(row, col, val)
    }

    /// Borrowed triplet views `(rows, cols, vals)`.
    pub fn triplets(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Builds a `Coo` from parallel triplet arrays.
    ///
    /// # Errors
    /// Shape/validity errors as in [`Coo::push`]; also
    /// [`SparseError::InvalidStructure`] if the arrays disagree in length.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triplet arrays disagree: rows={}, cols={}, vals={}",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        let mut m = Self::with_capacity(nrows, ncols, vals.len())?;
        for i in 0..vals.len() {
            m.push(rows[i], cols[i], vals[i])?;
        }
        Ok(m)
    }

    /// Sorts triplets by `(row, col)` and sums duplicates in place.
    /// Entries that sum to exactly zero are removed.
    pub fn compact(&mut self) {
        if self.vals.is_empty() {
            return;
        }
        let mut order: Vec<u32> = (0..self.vals.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i as usize], self.cols[i as usize]));
        let mut rows = Vec::with_capacity(self.vals.len());
        let mut cols = Vec::with_capacity(self.vals.len());
        let mut vals = Vec::with_capacity(self.vals.len());
        for &i in &order {
            let i = i as usize;
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("parallel arrays") += v;
                    if *vals.last().expect("parallel arrays") == 0.0 {
                        rows.pop();
                        cols.pop();
                        vals.pop();
                    }
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Converts to CSR, sorting and summing duplicates. This is a counting
    /// sort over rows followed by per-row sorts, O(nnz log(nnz/row)).
    pub fn to_csr(&self) -> Csr {
        let nnz = self.vals.len();
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.rows {
            counts[r as usize] += 1;
        }
        let row_ptr = exclusive_prefix_sum(&counts);
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0f64; nnz];
        let mut next = row_ptr.clone();
        for i in 0..nnz {
            let r = self.rows[i] as usize;
            let dst = next[r];
            col_idx[dst] = self.cols[i];
            vals[dst] = self.vals[i];
            next[r] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut out_col = Vec::with_capacity(nnz);
        let mut out_val = Vec::with_capacity(nnz);
        let mut out_ptr = Vec::with_capacity(self.nrows + 1);
        out_ptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.nrows {
            let (s, e) = (row_ptr[r], row_ptr[r + 1]);
            scratch.clear();
            scratch.extend(col_idx[s..e].iter().copied().zip(vals[s..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < scratch.len() {
                let (c, mut v) = scratch[k];
                k += 1;
                while k < scratch.len() && scratch[k].0 == c {
                    v += scratch[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    out_col.push(c);
                    out_val.push(v);
                }
            }
            out_ptr.push(out_col.len());
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, out_ptr, out_col, out_val)
    }

    /// Transposes in place (swaps row/column roles).
    pub fn transpose(&mut self) {
        std::mem::swap(&mut self.rows, &mut self.cols);
        std::mem::swap(&mut self.nrows, &mut self.ncols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        // Paper Fig. 2 example matrix:
        // [1 0 2 0; 0 0 0 0; 3 0 4 5; 0 6 0 7]
        let mut m = Coo::new(4, 4).unwrap();
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (2, 0, 3.0),
            (2, 2, 4.0),
            (2, 3, 5.0),
            (3, 1, 6.0),
            (3, 3, 7.0),
        ] {
            m.push(r, c, v).unwrap();
        }
        m
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = Coo::new(2, 2).unwrap();
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert!(m.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn to_csr_matches_paper_figure_2() {
        let csr = sample().to_csr();
        assert_eq!(csr.row_ptr(), &[0, 2, 2, 5, 7]);
        assert_eq!(csr.col_idx(), &[0, 2, 0, 2, 3, 1, 3]);
        assert_eq!(csr.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn to_csr_sums_duplicates_and_drops_cancellations() {
        let mut m = Coo::new(2, 2).unwrap();
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, 2.0).unwrap();
        m.push(1, 1, 5.0).unwrap();
        m.push(1, 1, -5.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.values(), &[3.0]);
        assert_eq!(csr.row_ptr(), &[0, 1, 1]);
    }

    #[test]
    fn to_csr_sorts_columns_within_rows() {
        let mut m = Coo::new(1, 5).unwrap();
        m.push(0, 4, 4.0).unwrap();
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 3, 3.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.col_idx(), &[1, 3, 4]);
        assert_eq!(csr.values(), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn compact_merges_duplicates() {
        let mut m = Coo::new(3, 3).unwrap();
        m.push(1, 1, 1.0).unwrap();
        m.push(0, 0, 2.0).unwrap();
        m.push(1, 1, 3.0).unwrap();
        m.compact();
        assert_eq!(m.nnz(), 2);
        let (r, c, v) = m.triplets();
        assert_eq!(r, &[0, 1]);
        assert_eq!(c, &[0, 1]);
        assert_eq!(v, &[2.0, 4.0]);
    }

    #[test]
    fn push_nonzero_skips_zeros() {
        let mut m = Coo::new(1, 1).unwrap();
        m.push_nonzero(0, 0, 0.0).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn transpose_swaps_shape_and_entries() {
        let mut m = sample();
        m.transpose();
        assert_eq!((m.nrows(), m.ncols()), (4, 4));
        let csr = m.to_csr();
        // Column 3 of the original (entries 5 at (2,3) and 7 at (3,3)) becomes row 3.
        assert_eq!(&csr.col_idx()[csr.row_ptr()[3]..csr.row_ptr()[4]], &[2, 3]);
    }

    #[test]
    fn from_triplets_validates_lengths() {
        assert!(Coo::from_triplets(2, 2, &[0], &[0, 1], &[1.0]).is_err());
        let m = Coo::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0, 2.0]).unwrap();
        assert_eq!(m.nnz(), 2);
    }
}
