//! Compressed Sparse Column — used for transposes and column-oriented
//! traversals (e.g. building graph Laplacians and RCM adjacency).

use crate::error::{Result, SparseError};
use crate::Csr;

/// A sparse matrix in CSC layout. Mirror image of [`Csr`]: `col_ptr` has
/// `ncols + 1` entries and row indices strictly increase within a column.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    /// Builds a CSC matrix after validating all structural invariants.
    ///
    /// # Errors
    /// Mirrors [`Csr::try_from_parts`].
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if nrows > u32::MAX as usize {
            return Err(SparseError::ColumnIndexOverflow(nrows));
        }
        if col_ptr.len() != ncols + 1 || col_ptr.first() != Some(&0) {
            return Err(SparseError::InvalidStructure("bad col_ptr shape".into()));
        }
        if *col_ptr.last().expect("len >= 1") != row_idx.len() || row_idx.len() != values.len() {
            return Err(SparseError::InvalidStructure("array length mismatch".into()));
        }
        for c in 0..ncols {
            if col_ptr[c] > col_ptr[c + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "col_ptr decreases at column {c}"
                )));
            }
            let col = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            for (k, &r) in col.iter().enumerate() {
                if r as usize >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r as usize,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
                if k > 0 && col[k - 1] >= r {
                    return Err(SparseError::InvalidStructure(format!(
                        "column {c} rows not strictly increasing"
                    )));
                }
            }
        }
        Ok(Csc { nrows, ncols, col_ptr, row_idx, values })
    }

    /// Builds without validation; callers must uphold the invariants.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), ncols + 1);
        debug_assert_eq!(row_idx.len(), values.len());
        Csc { nrows, ncols, col_ptr, row_idx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `col_ptr` array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, one per non-zero.
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// Values, one per non-zero.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row indices and values of column `c`.
    pub fn col(&self, c: usize) -> (&[u32], &[f64]) {
        let rng = self.col_ptr[c]..self.col_ptr[c + 1];
        (&self.row_idx[rng.clone()], &self.values[rng])
    }

    /// Converts to CSR via a stable counting transpose.
    pub fn to_csr(&self) -> Csr {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.row_idx {
            counts[r as usize] += 1;
        }
        let row_ptr = crate::util::exclusive_prefix_sum(&counts);
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0f64; nnz];
        let mut next = row_ptr.clone();
        for c in 0..self.ncols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                let r = self.row_idx[k] as usize;
                let dst = next[r];
                col_idx[dst] = c as u32;
                values[dst] = self.values[k];
                next[r] += 1;
            }
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Computes `y = A^T x` directly from CSC storage (a column sweep over
    /// `A` is a row sweep over `A^T`).
    pub fn transpose_matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "x must have nrows entries");
        assert_eq!(y.len(), self.ncols, "y must have ncols entries");
        for (c, y_c) in y.iter_mut().enumerate() {
            let (rows, vals) = self.col(c);
            let mut acc = 0.0;
            for (&r, &v) in rows.iter().zip(vals) {
                acc += v * x[r as usize];
            }
            *y_c = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_csr() -> Csr {
        Csr::try_from_parts(
            4,
            4,
            vec![0, 2, 2, 5, 7],
            vec![0, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_to_csc_structure() {
        let csc = paper_csr().to_csc();
        assert_eq!(csc.col_ptr(), &[0, 2, 3, 5, 7]);
        assert_eq!(csc.row_idx(), &[0, 2, 3, 0, 2, 2, 3]);
        assert_eq!(csc.values(), &[1.0, 3.0, 6.0, 2.0, 4.0, 5.0, 7.0]);
    }

    #[test]
    fn validation_mirrors_csr() {
        assert!(Csc::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csc::try_from_parts(2, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(Csc::try_from_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(Csc::try_from_parts(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn transpose_matvec_matches_csr_transpose() {
        let a = paper_csr();
        let csc = a.to_csc();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        csc.transpose_matvec(&x, &mut y);
        let at = a.transpose();
        let mut want = [0.0; 4];
        crate::spmv::spmv_into(&at, &x, &mut want);
        assert_eq!(y, want);
    }
}
