//! Partially-diagonal storage (after Fukaya et al., PAPERS.md): diagonals
//! whose occupancy clears a threshold are pulled out into dense diagonal
//! arrays — no column indices, 8 B per stored slot plus a presence bit —
//! and everything else stays behind in a CSR remainder. Matrices with
//! strong diagonal structure (stencils, banded FEM, multi-diagonal) drop
//! from 12 B/nnz to a little over 8, which is exactly the data-movement
//! win the paper's thesis says should drive kernel choice.

use crate::error::{Result, SparseError};
use crate::Csr;
use std::collections::BTreeMap;

/// A matrix split into dense diagonal runs plus a CSR remainder.
///
/// Each extracted diagonal stores one `f64` slot for every (row, col) pair
/// it crosses and a presence bit per slot, so explicit stored zeros and
/// gaps round-trip exactly: `to_csr` reproduces the original entry
/// multiset, never inventing or dropping entries.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialDiag {
    nrows: usize,
    ncols: usize,
    /// Extracted diagonal offsets (`col - row`), ascending.
    offsets: Vec<i64>,
    /// Slot offset of each diagonal in `diag_vals`/`mask` (`offsets.len()+1`).
    diag_ptr: Vec<usize>,
    /// Dense slot storage, one run per extracted diagonal.
    diag_vals: Vec<f64>,
    /// Presence bit per slot: `false` slots hold no matrix entry.
    mask: Vec<bool>,
    /// Entries on non-extracted diagonals.
    remainder: Csr,
    nnz: usize,
}

/// Rows a diagonal at `offset = col - row` crosses: the half-open row range
/// and its length.
fn diag_rows(nrows: usize, ncols: usize, offset: i64) -> (usize, usize) {
    let lo = (-offset).max(0) as usize;
    let hi_signed = (ncols as i64 - offset).min(nrows as i64);
    let hi = hi_signed.max(lo as i64) as usize;
    (lo, hi)
}

impl PartialDiag {
    /// Splits `a` into dense diagonals and a CSR remainder. A diagonal is
    /// extracted when at least `min_occupancy` of its slots hold entries.
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`] unless `0 < min_occupancy <= 1`.
    pub fn from_csr(a: &Csr, min_occupancy: f64) -> Result<Self> {
        if !(min_occupancy > 0.0 && min_occupancy <= 1.0) {
            return Err(SparseError::InvalidStructure(format!(
                "diagonal occupancy threshold must be in (0, 1], got {min_occupancy}"
            )));
        }
        let (nrows, ncols) = (a.nrows(), a.ncols());
        // Occupancy census per offset. BTreeMap keeps the offset order (and
        // therefore the layout) deterministic.
        let mut census: BTreeMap<i64, usize> = BTreeMap::new();
        for r in 0..nrows {
            let (cols, _) = a.row(r);
            for &c in cols {
                *census.entry(c as i64 - r as i64).or_insert(0) += 1;
            }
        }
        let mut offsets = Vec::new();
        let mut diag_ptr = vec![0usize];
        for (&off, &count) in &census {
            let (lo, hi) = diag_rows(nrows, ncols, off);
            let len = hi - lo;
            if len > 0 && count as f64 >= min_occupancy * len as f64 {
                offsets.push(off);
                diag_ptr.push(diag_ptr.last().expect("non-empty") + len);
            }
        }
        let slots = *diag_ptr.last().expect("non-empty");
        let mut diag_vals = vec![0.0f64; slots];
        let mut mask = vec![false; slots];
        let mut rem_ptr = vec![0usize; nrows + 1];
        let mut rem_col = Vec::new();
        let mut rem_val = Vec::new();
        for r in 0..nrows {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let off = c as i64 - r as i64;
                if let Ok(d) = offsets.binary_search(&off) {
                    let (lo, _) = diag_rows(nrows, ncols, off);
                    let slot = diag_ptr[d] + (r - lo);
                    diag_vals[slot] = v;
                    mask[slot] = true;
                } else {
                    rem_col.push(c);
                    rem_val.push(v);
                }
            }
            rem_ptr[r + 1] = rem_col.len();
        }
        let remainder = Csr::from_parts_unchecked(nrows, ncols, rem_ptr, rem_col, rem_val);
        Ok(PartialDiag {
            nrows,
            ncols,
            offsets,
            diag_ptr,
            diag_vals,
            mask,
            remainder,
            nnz: a.nnz(),
        })
    }

    /// Converts back to CSR, reproducing the original entry multiset.
    /// Built by a per-row sorted merge (not via `Coo`, whose `to_csr`
    /// drops explicit stored zeros), so explicit zeros survive.
    pub fn to_csr(&self) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        let mut diag_row: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.nrows {
            diag_row.clear();
            // Ascending offsets give ascending columns within the row.
            for (d, &off) in self.offsets.iter().enumerate() {
                let (lo, hi) = diag_rows(self.nrows, self.ncols, off);
                if r < lo || r >= hi {
                    continue;
                }
                let slot = self.diag_ptr[d] + (r - lo);
                if self.mask[slot] {
                    diag_row.push(((r as i64 + off) as u32, self.diag_vals[slot]));
                }
            }
            let (rem_cols, rem_vals) = self.remainder.row(r);
            let (mut i, mut j) = (0usize, 0usize);
            while i < diag_row.len() || j < rem_cols.len() {
                let take_diag = match (diag_row.get(i), rem_cols.get(j)) {
                    (Some(&(dc, _)), Some(&rc)) => dc < rc,
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_diag {
                    col_idx.push(diag_row[i].0);
                    values.push(diag_row[i].1);
                    i += 1;
                } else {
                    col_idx.push(rem_cols[j]);
                    values.push(rem_vals[j]);
                    j += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Stored non-zeros (diagonal slots that hold entries plus remainder).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Extracted diagonal offsets, ascending.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Entries living on extracted diagonals.
    pub fn diag_nnz(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// Entries left in the CSR remainder.
    pub fn remainder_nnz(&self) -> usize {
        self.remainder.nnz()
    }

    /// Fraction of entries captured by the dense diagonals.
    pub fn extracted_fraction(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        self.diag_nnz() as f64 / self.nnz as f64
    }

    /// Modeled SpMV traffic: 8 B per diagonal slot plus one presence bit,
    /// the 8 B offset list, and 12 B per remainder entry, amortized over
    /// the stored non-zeros.
    pub fn bytes_per_nnz(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        let slots = self.diag_vals.len();
        let bytes =
            slots * 8 + slots.div_ceil(8) + self.offsets.len() * 8 + self.remainder.nnz() * 12;
        bytes as f64 / self.nnz as f64
    }

    /// `y = A x`: dense diagonal runs first (unit-stride), then the CSR
    /// remainder. Per row this reassociates the CSR summation order, so
    /// agreement with CSR kernels is to summation error, not bit-exact.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        y.fill(0.0);
        for (d, &off) in self.offsets.iter().enumerate() {
            let (lo, hi) = diag_rows(self.nrows, self.ncols, off);
            let base = self.diag_ptr[d];
            for r in lo..hi {
                let slot = base + (r - lo);
                if self.mask[slot] {
                    y[r] += self.diag_vals[slot] * x[(r as i64 + off) as usize];
                }
            }
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.remainder.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    fn banded() -> Csr {
        generate(
            &GenSpec::MultiDiagonal {
                n: 200,
                offsets: vec![-7, -1, 0, 1, 7],
                values: ValueModel::UniformRandom,
            },
            11,
        )
    }

    #[test]
    fn banded_matrix_extracts_all_diagonals() {
        let a = banded();
        let p = PartialDiag::from_csr(&a, 0.6).unwrap();
        assert_eq!(p.offsets(), &[-7, -1, 0, 1, 7]);
        assert_eq!(p.remainder_nnz(), 0);
        assert!(p.bytes_per_nnz() < 9.0, "got {}", p.bytes_per_nnz());
        assert_eq!(p.to_csr(), a);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = banded();
        let p = PartialDiag::from_csr(&a, 0.6).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut y = vec![0.0; a.nrows()];
        p.spmv_into(&x, &mut y);
        let want = spmv(&a, &x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "got {g}, want {w}");
        }
    }

    #[test]
    fn sparse_graph_leaves_everything_in_the_remainder() {
        let a = generate(&GenSpec::Rmat { scale: 8, edge_factor: 4, values: ValueModel::Ones }, 3);
        let p = PartialDiag::from_csr(&a, 0.6).unwrap();
        assert!(p.extracted_fraction() < 0.3, "got {}", p.extracted_fraction());
        assert_eq!(p.to_csr(), a);
    }

    #[test]
    fn explicit_zeros_and_gaps_round_trip() {
        // Main diagonal present on 3 of 4 rows (75% occupancy — extracted),
        // including an explicit stored zero; one off-diagonal straggler.
        let a = Csr::try_from_parts(
            4,
            4,
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 3, 3],
            vec![1.0, 0.0, 5.0, 2.0],
        )
        .unwrap();
        let p = PartialDiag::from_csr(&a, 0.6).unwrap();
        assert_eq!(p.offsets(), &[0]);
        assert_eq!(p.diag_nnz(), 3);
        assert_eq!(p.remainder_nnz(), 1);
        assert_eq!(p.to_csr(), a);
    }

    #[test]
    fn rectangular_shapes_round_trip() {
        for (nrows, ncols) in [(3, 7), (7, 3), (1, 5), (5, 1)] {
            let mut coo = crate::Coo::new(nrows, ncols).unwrap();
            for r in 0..nrows {
                for c in 0..ncols {
                    if (r + 2 * c) % 3 != 0 {
                        coo.push(r, c, (r * ncols + c) as f64 + 0.5).unwrap();
                    }
                }
            }
            let a = coo.to_csr();
            let p = PartialDiag::from_csr(&a, 0.5).unwrap();
            assert_eq!(p.to_csr(), a, "{nrows}x{ncols}");
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Csr::try_from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let p = PartialDiag::from_csr(&a, 0.6).unwrap();
        assert_eq!(p.offsets(), &[] as &[i64]);
        assert_eq!(p.bytes_per_nnz(), 0.0);
        let mut y = vec![1.0; 3];
        p.spmv_into(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn bad_threshold_rejected() {
        let a = banded();
        assert!(PartialDiag::from_csr(&a, 0.0).is_err());
        assert!(PartialDiag::from_csr(&a, 1.5).is_err());
    }
}
