//! Alternative sparse formats from the paper's related work (§VI-B).
//!
//! The paper positions UDP recoding *against* format-specialized
//! compression: "many block-oriented, customized data storage formats have
//! been proposed … In contrast, our approach requires no specialized coding
//! and format design for the CPU". These modules implement the cited
//! baselines so that comparison can actually be run (see the
//! `ablation_formats` binary):
//!
//! * [`ell`] — ELLPACK, the classic padded SIMD/GPU format;
//! * [`sellcs`] — SELL-C-σ (Kreutzer et al. \[27\]), sliced ELLPACK with a
//!   sorting window;
//! * [`bbcsr`] — bitmasked register blocks (after Buluç et al. \[15\]):
//!   r×c register blocks carrying a bitmask instead of per-element indices;
//! * [`pdiag`] — partially-diagonal storage (after Fukaya et al.): dense
//!   diagonal runs split from a CSR remainder;
//! * [`vcsr`] — varint-delta compressed CSR (after Lawlor \[28\]):
//!   per-row delta+varint column indices decoded *inline* during SpMV —
//!   the "CPU pays for decompression in the kernel" design point.
//!
//! Every format provides lossless `from_csr`/`to_csr`, its own SpMV agreeing
//! with the CSR kernels, and an `index_bytes()` accounting so the
//! bytes-per-non-zero comparison against DSH recoding is apples-to-apples.

pub mod bbcsr;
pub mod ell;
pub mod pdiag;
pub mod sellcs;
pub mod vcsr;

pub use bbcsr::BitmaskBlockCsr;
pub use ell::Ell;
pub use pdiag::PartialDiag;
pub use sellcs::SellCs;
pub use vcsr::VarintCsr;
