//! Bitmasked register blocks (after Buluç, Williams, Oliker, Demmel — the
//! paper's reference \[15\]): the matrix is tiled into small r×c register
//! blocks; each non-empty block stores one block-column index and a bitmask
//! instead of per-element column indices, so dense neighbourhoods pay
//! ~6 bytes per *block* rather than 4 bytes per *element*. This is the
//! format-specialization alternative the paper contrasts with programmable
//! recoding — it saves bandwidth only where the pattern cooperates.

use crate::error::{Result, SparseError};
use crate::Csr;

/// Block height (rows) — 4×4 blocks give a 16-bit mask.
pub const BLOCK_R: usize = 4;
/// Block width (columns).
pub const BLOCK_C: usize = 4;

/// A bitmasked 4×4 register-block CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmaskBlockCsr {
    nrows: usize,
    ncols: usize,
    /// Block-row pointer: blocks `strip_ptr[s]..strip_ptr[s+1]` belong to
    /// block-row `s` (rows `4s..4s+4`).
    strip_ptr: Vec<usize>,
    /// Block-column index of each block (column `4 * block_col`).
    block_col: Vec<u32>,
    /// Occupancy mask, bit `r * 4 + c` = element `(r, c)` within the block.
    mask: Vec<u16>,
    /// Packed non-zero values, in block order then mask-bit order.
    values: Vec<f64>,
    /// Value offset of each block (prefix popcounts; `blocks + 1` entries).
    val_ptr: Vec<usize>,
    nnz: usize,
}

impl BitmaskBlockCsr {
    /// Converts from CSR.
    ///
    /// # Errors
    /// [`SparseError::ColumnIndexOverflow`] if block columns exceed `u32`.
    pub fn from_csr(a: &Csr) -> Result<Self> {
        if a.ncols().div_ceil(BLOCK_C) > u32::MAX as usize {
            return Err(SparseError::ColumnIndexOverflow(a.ncols()));
        }
        let nstrips = a.nrows().div_ceil(BLOCK_R);
        let mut strip_ptr = Vec::with_capacity(nstrips + 1);
        strip_ptr.push(0usize);
        let mut block_col = Vec::new();
        let mut mask = Vec::new();
        let mut values = Vec::new();
        let mut val_ptr = vec![0usize];

        // Per strip: gather (block_col, in-block position, value) triples.
        let mut scratch: Vec<(u32, u8, f64)> = Vec::new();
        for s in 0..nstrips {
            scratch.clear();
            let r_end = ((s + 1) * BLOCK_R).min(a.nrows());
            for r in s * BLOCK_R..r_end {
                let (cols, vals) = a.row(r);
                let br = (r - s * BLOCK_R) as u8;
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = (c as usize / BLOCK_C) as u32;
                    let pos = br * BLOCK_C as u8 + (c as usize % BLOCK_C) as u8;
                    scratch.push((bc, pos, v));
                }
            }
            // Group by block column; positions within a block sort by bit
            // index so values pack in mask order.
            scratch.sort_unstable_by_key(|&(bc, pos, _)| (bc, pos));
            let mut i = 0;
            while i < scratch.len() {
                let bc = scratch[i].0;
                let mut m = 0u16;
                while i < scratch.len() && scratch[i].0 == bc {
                    m |= 1 << scratch[i].1;
                    values.push(scratch[i].2);
                    i += 1;
                }
                block_col.push(bc);
                mask.push(m);
                val_ptr.push(values.len());
            }
            strip_ptr.push(block_col.len());
        }
        Ok(BitmaskBlockCsr {
            nrows: a.nrows(),
            ncols: a.ncols(),
            strip_ptr,
            block_col,
            mask,
            values,
            val_ptr,
            nnz: a.nnz(),
        })
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::with_capacity(self.nrows, self.ncols, self.nnz)
            .expect("shape validated at construction");
        for s in 0..self.strip_ptr.len() - 1 {
            for b in self.strip_ptr[s]..self.strip_ptr[s + 1] {
                let base_r = s * BLOCK_R;
                let base_c = self.block_col[b] as usize * BLOCK_C;
                let mut k = self.val_ptr[b];
                for bit in 0..(BLOCK_R * BLOCK_C) as u8 {
                    if self.mask[b] & (1 << bit) != 0 {
                        let r = base_r + bit as usize / BLOCK_C;
                        let c = base_c + bit as usize % BLOCK_C;
                        coo.push(r, c, self.values[k]).expect("in bounds");
                        k += 1;
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of occupied blocks.
    pub fn blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Mean non-zeros per occupied block (16 = fully dense blocks).
    pub fn fill_per_block(&self) -> f64 {
        if self.blocks() == 0 {
            return 0.0;
        }
        self.nnz as f64 / self.blocks() as f64
    }

    /// Bytes per non-zero: 8 per value + (4-byte block column + 2-byte
    /// mask) per block, amortized.
    pub fn bytes_per_nnz(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        (self.nnz * 8 + self.blocks() * 6) as f64 / self.nnz as f64
    }

    /// `y = A x` over bitmasked blocks.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        y.fill(0.0);
        for s in 0..self.strip_ptr.len() - 1 {
            let base_r = s * BLOCK_R;
            for b in self.strip_ptr[s]..self.strip_ptr[s + 1] {
                let base_c = self.block_col[b] as usize * BLOCK_C;
                let mut m = self.mask[b];
                let mut k = self.val_ptr[b];
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    y[base_r + bit / BLOCK_C] += self.values[k] * x[base_c + bit % BLOCK_C];
                    k += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    fn blocked_matrix() -> Csr {
        generate(
            &GenSpec::BlockJacobian {
                nblocks: 40,
                block: 8,
                coupling: 1.0,
                values: ValueModel::MixedRepeated { distinct: 30 },
            },
            6,
        )
    }

    fn scattered_matrix() -> Csr {
        generate(&GenSpec::ErdosRenyi { n: 500, avg_deg: 4.0, values: ValueModel::Ones }, 9)
    }

    #[test]
    fn round_trip_blocked_and_scattered() {
        for a in [blocked_matrix(), scattered_matrix()] {
            let b = BitmaskBlockCsr::from_csr(&a).unwrap();
            assert_eq!(b.to_csr(), a);
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let a = blocked_matrix();
        let b = BitmaskBlockCsr::from_csr(&a).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 / (1.0 + (i % 11) as f64)).collect();
        let mut y = vec![0.0; a.nrows()];
        b.spmv_into(&x, &mut y);
        let want = spmv(&a, &x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0));
        }
    }

    #[test]
    fn dense_blocks_save_index_bytes_scattered_blocks_lose() {
        let dense = BitmaskBlockCsr::from_csr(&blocked_matrix()).unwrap();
        let sparse = BitmaskBlockCsr::from_csr(&scattered_matrix()).unwrap();
        assert!(dense.fill_per_block() > 6.0, "fill {}", dense.fill_per_block());
        assert!(
            dense.bytes_per_nnz() < 10.0,
            "dense blocks must beat 12 B/nnz CSR: {}",
            dense.bytes_per_nnz()
        );
        assert!(sparse.fill_per_block() < 2.0);
        assert!(
            sparse.bytes_per_nnz() > 11.0,
            "scattered blocks pay ~6 B/nnz of block overhead: {}",
            sparse.bytes_per_nnz()
        );
    }

    #[test]
    fn ragged_edges() {
        // Dimensions not divisible by 4.
        let a =
            generate(&GenSpec::FemBand { n: 101, band: 3, fill: 0.7, values: ValueModel::Ones }, 1);
        let b = BitmaskBlockCsr::from_csr(&a).unwrap();
        assert_eq!(b.to_csr(), a);
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::try_from_parts(5, 5, vec![0; 6], vec![], vec![]).unwrap();
        let b = BitmaskBlockCsr::from_csr(&a).unwrap();
        assert_eq!(b.blocks(), 0);
        assert_eq!(b.to_csr(), a);
    }
}
