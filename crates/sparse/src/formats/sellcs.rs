//! SELL-C-σ (Kreutzer, Hager, Wellein, Fehske, Bishop — the paper's
//! reference \[27\]): rows are sorted by length inside windows of σ rows,
//! grouped into chunks of C, and each chunk is padded only to its *own*
//! widest row. Keeps ELLPACK's unit-stride SIMD layout while containing the
//! padding blow-up on irregular matrices.

use crate::error::{Result, SparseError};
use crate::Csr;

/// Padding marker.
pub const PAD: u32 = u32::MAX;

/// A SELL-C-σ matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SellCs {
    nrows: usize,
    ncols: usize,
    /// Chunk height.
    c: usize,
    /// Sorting window (multiple of `c`).
    sigma: usize,
    /// Element offset of each chunk (`nchunks + 1` entries).
    chunk_ptr: Vec<usize>,
    /// Width (padded row length) of each chunk.
    chunk_width: Vec<usize>,
    /// Column indices, column-major within each chunk; `PAD` marks padding.
    col_idx: Vec<u32>,
    /// Values, same layout.
    values: Vec<f64>,
    /// `perm[slot] = original row` for slot = chunk*c + lane.
    perm: Vec<u32>,
    nnz: usize,
}

impl SellCs {
    /// Converts from CSR with chunk height `c` and sorting window `sigma`
    /// (rounded up to a multiple of `c`).
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`] for `c == 0`.
    pub fn from_csr(a: &Csr, c: usize, sigma: usize) -> Result<Self> {
        if c == 0 {
            return Err(SparseError::InvalidStructure("chunk height must be positive".into()));
        }
        let sigma = sigma.max(c).div_ceil(c) * c;
        let nrows = a.nrows();
        // Sort rows by descending length within each sigma window.
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&r| std::cmp::Reverse(a.row(r as usize).0.len()));
        }
        let nchunks = nrows.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut chunk_width = Vec::with_capacity(nchunks);
        chunk_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for chunk in 0..nchunks {
            let rows = &perm[chunk * c..(chunk * c + c).min(nrows)];
            let width = rows.iter().map(|&r| a.row(r as usize).0.len()).max().unwrap_or(0);
            // Column-major: lane stride is c even for the ragged last chunk
            // (simplifies the kernel; pad lanes carry PAD).
            let base = col_idx.len();
            col_idx.resize(base + width * c, PAD);
            values.resize(base + width * c, 0.0);
            for (lane, &r) in rows.iter().enumerate() {
                let (cols, vals) = a.row(r as usize);
                for (j, (&cc, &vv)) in cols.iter().zip(vals).enumerate() {
                    col_idx[base + j * c + lane] = cc;
                    values[base + j * c + lane] = vv;
                }
            }
            chunk_ptr.push(col_idx.len());
            chunk_width.push(width);
        }
        Ok(SellCs {
            nrows,
            ncols: a.ncols(),
            c,
            sigma,
            chunk_ptr,
            chunk_width,
            col_idx,
            values,
            perm,
            nnz: a.nnz(),
        })
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::with_capacity(self.nrows, self.ncols, self.nnz)
            .expect("shape validated at construction");
        for (chunk, &width) in self.chunk_width.iter().enumerate() {
            let base = self.chunk_ptr[chunk];
            let lanes = (self.nrows - chunk * self.c).min(self.c);
            for lane in 0..lanes {
                let r = self.perm[chunk * self.c + lane] as usize;
                for j in 0..width {
                    let cc = self.col_idx[base + j * self.c + lane];
                    if cc != PAD {
                        coo.push(r, cc as usize, self.values[base + j * self.c + lane])
                            .expect("in bounds");
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of slots that are padding.
    pub fn padding_ratio(&self) -> f64 {
        let slots = self.col_idx.len();
        if slots == 0 {
            return 0.0;
        }
        1.0 - self.nnz as f64 / slots as f64
    }

    /// Bytes per non-zero: 12 per slot plus the 4-byte row permutation
    /// amortized over the non-zeros.
    pub fn bytes_per_nnz(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        (self.col_idx.len() * 12 + self.nrows * 4) as f64 / self.nnz as f64
    }

    /// `y = A x` with chunked unit-stride traversal.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        y.fill(0.0);
        for (chunk, &width) in self.chunk_width.iter().enumerate() {
            let base = self.chunk_ptr[chunk];
            let lanes = (self.nrows - chunk * self.c).min(self.c);
            let mut acc = vec![0.0f64; lanes];
            for j in 0..width {
                let cols = &self.col_idx[base + j * self.c..base + j * self.c + lanes];
                let vals = &self.values[base + j * self.c..base + j * self.c + lanes];
                for (lane, (cc, vv)) in cols.iter().zip(vals).enumerate() {
                    if *cc != PAD {
                        acc[lane] += vv * x[*cc as usize];
                    }
                }
            }
            for (lane, a) in acc.into_iter().enumerate() {
                y[self.perm[chunk * self.c + lane] as usize] = a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::Ell;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    fn skewed() -> Csr {
        generate(&GenSpec::Rmat { scale: 9, edge_factor: 8, values: ValueModel::UniformRandom }, 4)
    }

    #[test]
    fn round_trip_various_params() {
        let a = skewed();
        for (c, sigma) in [(4, 4), (8, 64), (32, 512), (7, 13)] {
            let s = SellCs::from_csr(&a, c, sigma).unwrap();
            assert_eq!(s.to_csr(), a, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let a = skewed();
        let s = SellCs::from_csr(&a, 16, 256).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 7) % 3) as f64).collect();
        let mut y = vec![0.0; a.nrows()];
        s.spmv_into(&x, &mut y);
        let want = spmv(&a, &x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0));
        }
    }

    #[test]
    fn sorting_window_shrinks_padding_vs_ell() {
        let a = skewed();
        let ell = Ell::from_csr(&a).unwrap();
        let sell = SellCs::from_csr(&a, 32, 1024).unwrap();
        // Power-law rows leave ELL ~96% padding; sorted 32-row chunks cut
        // that roughly in half (not more — the heavy hub rows still dominate
        // their own chunks).
        assert!(
            sell.padding_ratio() < ell.padding_ratio() - 0.3,
            "SELL {:.3} vs ELL {:.3}",
            sell.padding_ratio(),
            ell.padding_ratio()
        );
        assert!(sell.bytes_per_nnz() < ell.bytes_per_nnz());
    }

    #[test]
    fn bigger_sigma_never_hurts_padding() {
        let a = skewed();
        let s1 = SellCs::from_csr(&a, 32, 32).unwrap();
        let s2 = SellCs::from_csr(&a, 32, 2048).unwrap();
        assert!(s2.padding_ratio() <= s1.padding_ratio() + 1e-12);
    }

    #[test]
    fn zero_chunk_height_rejected() {
        let a = skewed();
        assert!(SellCs::from_csr(&a, 0, 8).is_err());
    }

    #[test]
    fn ragged_last_chunk() {
        // nrows not divisible by C.
        let a =
            generate(&GenSpec::FemBand { n: 101, band: 5, fill: 0.6, values: ValueModel::Ones }, 2);
        let s = SellCs::from_csr(&a, 16, 32).unwrap();
        assert_eq!(s.to_csr(), a);
    }
}
