//! ELLPACK: every row padded to the longest row's length, laid out
//! column-major so SIMD lanes stride unit distance. Simple and fast on
//! regular matrices; catastrophic padding on skewed ones — which is exactly
//! the storage trade the paper's Fig. 2 CSR choice avoids.

use crate::error::{Result, SparseError};
use crate::Csr;

/// An ELLPACK matrix. Entries are stored column-major in `k = max_nnz_row`
/// slabs of `nrows` each; padding slots carry column `u32::MAX` and value 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Ell {
    nrows: usize,
    ncols: usize,
    /// Entries per row (the padded width).
    k: usize,
    /// `k * nrows` column indices, column-major; `PAD` marks padding.
    col_idx: Vec<u32>,
    /// `k * nrows` values, column-major.
    values: Vec<f64>,
    nnz: usize,
}

/// Padding marker.
pub const PAD: u32 = u32::MAX;

impl Ell {
    /// Converts from CSR.
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`] if the padded size would overflow
    /// memory accounting (`k * nrows` elements).
    pub fn from_csr(a: &Csr) -> Result<Self> {
        let k = (0..a.nrows()).map(|r| a.row(r).0.len()).max().unwrap_or(0);
        let slots = k
            .checked_mul(a.nrows())
            .ok_or_else(|| SparseError::InvalidStructure("ELL padding overflow".into()))?;
        let mut col_idx = vec![PAD; slots];
        let mut values = vec![0.0; slots];
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            for (j, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                col_idx[j * a.nrows() + r] = c;
                values[j * a.nrows() + r] = v;
            }
        }
        Ok(Ell { nrows: a.nrows(), ncols: a.ncols(), k, col_idx, values, nnz: a.nnz() })
    }

    /// Converts back to CSR (drops padding; lossless for the stored matrix).
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::with_capacity(self.nrows, self.ncols, self.nnz)
            .expect("shape validated at construction");
        for r in 0..self.nrows {
            for j in 0..self.k {
                let c = self.col_idx[j * self.nrows + r];
                if c != PAD {
                    coo.push(r, c as usize, self.values[j * self.nrows + r]).expect("in bounds");
                }
            }
        }
        coo.to_csr()
    }

    /// Stored (non-padding) non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Padded width.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Fraction of slots that are padding.
    pub fn padding_ratio(&self) -> f64 {
        let slots = self.k * self.nrows;
        if slots == 0 {
            return 0.0;
        }
        1.0 - self.nnz as f64 / slots as f64
    }

    /// Bytes the format stores per non-zero (padding included): 12 bytes per
    /// slot.
    pub fn bytes_per_nnz(&self) -> f64 {
        if self.nnz == 0 {
            return 0.0;
        }
        (self.k * self.nrows * 12) as f64 / self.nnz as f64
    }

    /// `y = A x` with the ELL slab traversal.
    ///
    /// # Panics
    /// On shape mismatch, like the CSR kernels.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        y.fill(0.0);
        for j in 0..self.k {
            let cols = &self.col_idx[j * self.nrows..(j + 1) * self.nrows];
            let vals = &self.values[j * self.nrows..(j + 1) * self.nrows];
            for (r, (c, v)) in cols.iter().zip(vals).enumerate() {
                if *c != PAD {
                    y[r] += v * x[*c as usize];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    fn paper_matrix() -> Csr {
        Csr::try_from_parts(
            4,
            4,
            vec![0, 2, 2, 5, 7],
            vec![0, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_and_width() {
        let a = paper_matrix();
        let e = Ell::from_csr(&a).unwrap();
        assert_eq!(e.width(), 3);
        assert_eq!(e.nnz(), 7);
        assert_eq!(e.to_csr(), a);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = generate(
            &GenSpec::FemBand {
                n: 300,
                band: 7,
                fill: 0.5,
                values: ValueModel::MixedRepeated { distinct: 9 },
            },
            3,
        );
        let e = Ell::from_csr(&a).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; a.nrows()];
        e.spmv_into(&x, &mut y);
        assert_eq!(y, spmv(&a, &x));
    }

    #[test]
    fn skewed_rows_explode_padding() {
        // One dense row in an otherwise diagonal matrix.
        let mut coo = crate::Coo::new(100, 100).unwrap();
        for c in 0..100 {
            coo.push(0, c, 1.0).unwrap();
        }
        for r in 1..100 {
            coo.push(r, r, 1.0).unwrap();
        }
        let e = Ell::from_csr(&coo.to_csr()).unwrap();
        assert_eq!(e.width(), 100);
        assert!(e.padding_ratio() > 0.9);
        assert!(e.bytes_per_nnz() > 100.0, "{}", e.bytes_per_nnz());
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::try_from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let e = Ell::from_csr(&a).unwrap();
        assert_eq!(e.width(), 0);
        assert_eq!(e.to_csr(), a);
        let mut y = vec![1.0; 3];
        e.spmv_into(&[0.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
