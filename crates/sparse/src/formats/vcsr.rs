//! Varint-delta compressed CSR (after Lawlor, "In-memory data compression
//! for sparse matrices" — the paper's reference \[28\]): each row's column
//! indices are stored as base-128 varints of `delta - 1` (columns strictly
//! increase), decoded *inline by the CPU during SpMV*. This is the design
//! point the paper's Fig. 14 "Decomp(CPU)" bar generalizes: index traffic
//! drops ~3-4×, but the CPU now spends instructions decoding on the
//! critical path — exactly the work the UDP exists to absorb.

use crate::error::{Result, SparseError};
use crate::Csr;

/// A varint-delta compressed CSR matrix. Values stay raw (8 B); only the
/// index stream is recoded.
#[derive(Debug, Clone, PartialEq)]
pub struct VarintCsr {
    nrows: usize,
    ncols: usize,
    /// Byte offset of each row's index stream (`nrows + 1` entries).
    row_byte_ptr: Vec<usize>,
    /// Non-zero offset of each row (`nrows + 1` entries) — aligns values.
    row_ptr: Vec<usize>,
    /// Varint-encoded column deltas, all rows concatenated.
    index_bytes: Vec<u8>,
    /// Raw values in CSR order.
    values: Vec<f64>,
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

impl VarintCsr {
    /// Converts from CSR.
    ///
    /// # Errors
    /// None in practice (kept fallible for interface symmetry with the
    /// other formats).
    pub fn from_csr(a: &Csr) -> Result<Self> {
        if a.ncols() > u32::MAX as usize {
            return Err(SparseError::ColumnIndexOverflow(a.ncols()));
        }
        let mut index_bytes = Vec::with_capacity(a.nnz() * 2);
        let mut row_byte_ptr = Vec::with_capacity(a.nrows() + 1);
        row_byte_ptr.push(0);
        for r in 0..a.nrows() {
            let (cols, _) = a.row(r);
            let mut prev: i64 = -1;
            for &c in cols {
                // Strictly increasing columns: delta - 1 >= 0.
                push_varint(&mut index_bytes, (c as i64 - prev - 1) as u64);
                prev = c as i64;
            }
            row_byte_ptr.push(index_bytes.len());
        }
        Ok(VarintCsr {
            nrows: a.nrows(),
            ncols: a.ncols(),
            row_byte_ptr,
            row_ptr: a.row_ptr().to_vec(),
            index_bytes,
            values: a.values().to_vec(),
        })
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut col_idx = Vec::with_capacity(self.values.len());
        for r in 0..self.nrows {
            let mut pos = self.row_byte_ptr[r];
            let end = self.row_byte_ptr[r + 1];
            let mut prev: i64 = -1;
            while pos < end {
                let d = read_varint(&self.index_bytes, &mut pos);
                prev += d as i64 + 1;
                col_idx.push(prev as u32);
            }
        }
        Csr::from_parts_unchecked(
            self.nrows,
            self.ncols,
            self.row_ptr.clone(),
            col_idx,
            self.values.clone(),
        )
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Index-stream bytes per non-zero (raw CSR: 4.0).
    pub fn index_bytes_per_nnz(&self) -> f64 {
        if self.nnz() == 0 {
            return 0.0;
        }
        self.index_bytes.len() as f64 / self.nnz() as f64
    }

    /// Total bytes per non-zero (values stay 8 B; raw CSR: 12.0).
    pub fn bytes_per_nnz(&self) -> f64 {
        if self.nnz() == 0 {
            return 0.0;
        }
        (self.index_bytes.len() + self.values.len() * 8) as f64 / self.nnz() as f64
    }

    /// `y = A x`, decoding the index stream inline — the CPU pays the
    /// decompression in the kernel's inner loop.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, y_r) in y.iter_mut().enumerate() {
            let mut pos = self.row_byte_ptr[r];
            let mut k = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let mut col: i64 = -1;
            let mut acc = 0.0;
            while k < end {
                col += read_varint(&self.index_bytes, &mut pos) as i64 + 1;
                acc += self.values[k] * x[col as usize];
                k += 1;
            }
            *y_r = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec, ValueModel};
    use crate::spmv::spmv;

    fn banded() -> Csr {
        generate(
            &GenSpec::FemBand {
                n: 400,
                band: 10,
                fill: 0.5,
                values: ValueModel::MixedRepeated { distinct: 12 },
            },
            5,
        )
    }

    #[test]
    fn round_trip() {
        for a in [
            banded(),
            generate(&GenSpec::Rmat { scale: 8, edge_factor: 6, values: ValueModel::Ones }, 2),
        ] {
            let v = VarintCsr::from_csr(&a).unwrap();
            assert_eq!(v.to_csr(), a);
        }
    }

    #[test]
    fn spmv_matches_csr_bit_for_bit() {
        let a = banded();
        let v = VarintCsr::from_csr(&a).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut y = vec![0.0; a.nrows()];
        v.spmv_into(&x, &mut y);
        assert_eq!(y, spmv(&a, &x), "same per-row accumulation order => bit-identical");
    }

    #[test]
    fn banded_indices_compress_to_one_byte_each() {
        let v = VarintCsr::from_csr(&banded()).unwrap();
        assert!(
            v.index_bytes_per_nnz() < 1.3,
            "band deltas fit one varint byte, got {:.2}",
            v.index_bytes_per_nnz()
        );
        assert!(v.bytes_per_nnz() < 9.5);
    }

    #[test]
    fn scattered_indices_cost_more() {
        let a =
            generate(&GenSpec::ErdosRenyi { n: 3000, avg_deg: 3.0, values: ValueModel::Ones }, 7);
        let v = VarintCsr::from_csr(&a).unwrap();
        assert!(
            v.index_bytes_per_nnz() > 1.3,
            "random deltas need multi-byte varints, got {:.2}",
            v.index_bytes_per_nnz()
        );
        // Still cheaper than 4-byte raw indices.
        assert!(v.index_bytes_per_nnz() < 4.0);
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let a = Csr::try_from_parts(3, 3, vec![0, 0, 1, 1], vec![2], vec![9.0]).unwrap();
        let v = VarintCsr::from_csr(&a).unwrap();
        assert_eq!(v.to_csr(), a);
        let empty = Csr::try_from_parts(2, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        let v = VarintCsr::from_csr(&empty).unwrap();
        assert_eq!(v.bytes_per_nnz(), 0.0);
    }
}
