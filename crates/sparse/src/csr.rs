//! Compressed Sparse Row — the computation format used throughout the paper
//! (Fig. 2). Column indices are 4 bytes and values 8 bytes, so raw storage is
//! the paper's 12 bytes per non-zero (the `row_ptr` array is amortized over
//! whole rows and excluded from that accounting, as in the paper).

use crate::error::{Result, SparseError};
use crate::{Coo, Csc, Dense};

/// A sparse matrix in CSR layout.
///
/// Invariants (enforced by [`Csr::try_from_parts`], assumed by
/// `from_parts_unchecked`):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * all column indices `< ncols`;
/// * column indices strictly increase within each row (no duplicates).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix after validating every invariant listed on the
    /// type. Prefer this over `from_parts_unchecked` at API boundaries.
    ///
    /// # Errors
    /// [`SparseError::InvalidStructure`], [`SparseError::IndexOutOfBounds`]
    /// or [`SparseError::ColumnIndexOverflow`] describing the first violation.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if ncols > u32::MAX as usize {
            return Err(SparseError::ColumnIndexOverflow(ncols));
        }
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr has {} entries for {} rows (want nrows+1)",
                row_ptr.len(),
                nrows
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure("row_ptr[0] != 0".into()));
        }
        if *row_ptr.last().expect("len >= 1") != col_idx.len() || col_idx.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr end {} vs col_idx {} vs values {}",
                row_ptr.last().expect("len >= 1"),
                col_idx.len(),
                values.len()
            )));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!("row_ptr decreases at row {r}")));
            }
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for (k, &c) in row.iter().enumerate() {
                if c as usize >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c as usize,
                        nrows,
                        ncols,
                    });
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} columns not strictly increasing at position {k}"
                    )));
                }
            }
        }
        Ok(Csr { nrows, ncols, row_ptr, col_idx, values })
    }

    /// Builds a CSR matrix without validation. Callers must uphold the type's
    /// invariants; intended for internal conversions that construct valid
    /// structure by design.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        Csr { nrows, ncols, row_ptr, col_idx, values }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let row_ptr = (0..=n).collect();
        let col_idx = (0..n as u32).collect();
        let values = vec![1.0; n];
        Csr { nrows: n, ncols: n, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (nrows * ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// The `row_ptr` array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (one `u32` per non-zero).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (one `f64` per non-zero).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (structure stays fixed; used by solvers that
    /// rescale entries in place).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The half-open non-zero range of row `r`.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }

    /// Column indices and values of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let rng = self.row_range(r);
        (&self.col_idx[rng.clone()], &self.values[rng])
    }

    /// Looks up entry `(r, c)` by binary search; zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Iterates all stored entries in row-major order as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Raw CSR bytes per non-zero: 4 (index) + 8 (value) = 12, the paper's
    /// uncompressed baseline. Kept as a method so accounting code reads
    /// intent instead of a magic constant.
    pub const fn raw_bytes_per_nnz() -> f64 {
        12.0
    }

    /// Converts to COO triplets.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz())
            .expect("shape already validated");
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("entries already in bounds");
        }
        coo
    }

    /// Converts to CSC by a stable counting transpose, O(nnz + ncols).
    pub fn to_csc(&self) -> Csc {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let col_ptr = crate::util::exclusive_prefix_sum(&counts);
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![0f64; nnz];
        let mut next = col_ptr.clone();
        for r in 0..self.nrows {
            for k in self.row_range(r) {
                let c = self.col_idx[k] as usize;
                let dst = next[c];
                row_idx[dst] = r as u32;
                values[dst] = self.values[k];
                next[c] += 1;
            }
        }
        Csc::from_parts_unchecked(self.nrows, self.ncols, col_ptr, row_idx, values)
    }

    /// Structural + numeric transpose, staying in CSR.
    pub fn transpose(&self) -> Csr {
        let csc = self.to_csc();
        Csr::from_parts_unchecked(
            self.ncols,
            self.nrows,
            csc.col_ptr().to_vec(),
            csc.row_idx().to_vec(),
            csc.values().to_vec(),
        )
    }

    /// Materializes as a dense matrix. Intended for test-sized inputs; the
    /// allocation is `nrows * ncols` doubles.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] += v;
        }
        d
    }

    /// True if the matrix equals its transpose within relative tolerance
    /// `rel` (structure and values).
    pub fn is_symmetric(&self, rel: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            return false;
        }
        self.values.iter().zip(&t.values).all(|(&a, &b)| crate::util::approx_eq(a, b, rel))
    }

    /// Splits the non-zeros into consecutive chunks of at most
    /// `nnz_per_block` entries, never splitting mid-entry. Returns half-open
    /// nnz ranges. This is the row-agnostic blocking the codec layer uses to
    /// carve value/index streams into 8 KB blocks.
    pub fn nnz_blocks(&self, nnz_per_block: usize) -> Vec<std::ops::Range<usize>> {
        assert!(nnz_per_block > 0, "block size must be positive");
        let nnz = self.nnz();
        let mut out = Vec::with_capacity(nnz.div_ceil(nnz_per_block));
        let mut s = 0;
        while s < nnz {
            let e = (s + nnz_per_block).min(nnz);
            out.push(s..e);
            s = e;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> Csr {
        Csr::try_from_parts(
            4,
            4,
            vec![0, 2, 2, 5, 7],
            vec![0, 2, 0, 2, 3, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_accepts_paper_example() {
        let m = paper_matrix();
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(2, 3), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn validation_rejects_bad_row_ptr() {
        assert!(Csr::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::try_from_parts(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::try_from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn validation_rejects_col_out_of_range_and_duplicates() {
        assert!(Csr::try_from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(
            Csr::try_from_parts(1, 4, vec![0, 2], vec![2, 2], vec![1.0, 2.0]).is_err(),
            "duplicate column must be rejected"
        );
        assert!(
            Csr::try_from_parts(1, 4, vec![0, 2], vec![3, 1], vec![1.0, 2.0]).is_err(),
            "descending columns must be rejected"
        );
    }

    #[test]
    fn identity_works() {
        let i = Csr::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert!(i.is_symmetric(1e-12));
    }

    #[test]
    fn csc_round_trip_preserves_matrix() {
        let m = paper_matrix();
        let back = m.to_csc().to_csr();
        assert_eq!(m, back);
    }

    #[test]
    fn coo_round_trip_preserves_matrix() {
        let m = paper_matrix();
        assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = paper_matrix();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = paper_matrix();
        let t = m.transpose();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(t.get(r, c), m.get(c, r));
            }
        }
    }

    #[test]
    fn symmetry_detection() {
        let sym =
            Csr::try_from_parts(2, 2, vec![0, 2, 4], vec![0, 1, 0, 1], vec![2.0, 3.0, 3.0, 4.0])
                .unwrap();
        assert!(sym.is_symmetric(1e-12));
        assert!(!paper_matrix().is_symmetric(1e-12));
        let rect = Csr::try_from_parts(1, 2, vec![0, 1], vec![1], vec![1.0]).unwrap();
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn nnz_blocks_cover_exactly_once() {
        let m = paper_matrix();
        let blocks = m.nnz_blocks(3);
        assert_eq!(blocks, vec![0..3, 3..6, 6..7]);
        let blocks = m.nnz_blocks(100);
        assert_eq!(blocks, vec![0..7]);
    }

    #[test]
    fn density_and_raw_bytes() {
        let m = paper_matrix();
        assert!((m.density() - 7.0 / 16.0).abs() < 1e-12);
        assert_eq!(Csr::raw_bytes_per_nnz(), 12.0);
    }

    #[test]
    fn dense_conversion_matches_get() {
        let m = paper_matrix();
        let d = m.to_dense();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(d[(r, c)], m.get(r, c));
            }
        }
    }
}
