//! Small shared helpers: prefix sums, float comparison, geometric means.

/// Exclusive prefix sum: `out[0] = 0`, `out[i] = counts[0] + .. + counts[i-1]`,
/// with one extra trailing element holding the total.
///
/// This is the canonical step for bucketing entries into CSR/CSC rows.
pub fn exclusive_prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Relative-tolerance float comparison used by structural/numeric symmetry
/// checks and test assertions.
pub fn approx_eq(a: f64, b: f64, rel: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() <= rel * scale
}

/// Geometric mean of strictly positive samples. Returns `None` for an empty
/// slice or any non-positive sample (the paper reports geometric means for
/// bytes/nnz, throughput and speedup — all positive quantities).
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut acc = 0.0f64;
    for &x in xs {
        if x <= 0.0 || x.is_nan() || !x.is_finite() {
            return None;
        }
        acc += x.ln();
    }
    Some((acc / xs.len() as f64).exp())
}

/// Deterministic splitmix64 step — used to derive independent sub-seeds from
/// a single corpus seed without pulling in a heavier RNG.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_basic() {
        assert_eq!(exclusive_prefix_sum(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(exclusive_prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn approx_eq_handles_scales_and_nan() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
        assert!(approx_eq(0.0, 0.0, 1e-12));
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut s1 = 42;
        let mut s2 = 42;
        let a = splitmix64(&mut s1);
        let b = splitmix64(&mut s2);
        assert_eq!(a, b);
        assert_ne!(splitmix64(&mut s1), a);
    }
}
