//! Property-based tests: every codec stage and the composed pipeline must be
//! the identity on arbitrary inputs, and decoders must reject mutations
//! gracefully (error, never panic).

use proptest::prelude::*;
use recode_codec::faults::{FaultInjector, FaultKind};
use recode_codec::huffman::HuffmanTable;
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig, Pipeline, PipelineConfig};
use recode_codec::{delta, huffman, snappy};

/// Arbitrary byte payloads mixing random and compressible content.
fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        // Runs: highly compressible.
        (any::<u8>(), 1usize..2048).prop_map(|(b, n)| vec![b; n]),
        // Small-alphabet text-ish data.
        proptest::collection::vec(0u8..8, 0..2048),
        // Periodic data (exercises overlapping copies).
        (1usize..16, 1usize..2048).prop_map(|(p, n)| (0..n).map(|i| (i % p) as u8).collect()),
    ]
}

/// Clears the most significant bit of each little-endian u32 word so the
/// stream satisfies the delta stage's `< 2^31` index precondition.
fn clear_index_top_bits(data: &mut [u8]) {
    for word in data.chunks_exact_mut(4) {
        word[3] &= 0x7F;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snappy_round_trip(data in payload()) {
        let c = snappy::compress(&data);
        prop_assert_eq!(snappy::decompress(&c).unwrap(), data);
    }

    #[test]
    fn snappy_worst_case_expansion_bound(data in payload()) {
        let c = snappy::compress(&data);
        prop_assert!(c.len() <= data.len() + data.len() / 6 + 32);
    }

    #[test]
    fn snappy_decoder_survives_mutation(data in payload(), flip in any::<(usize, u8)>()) {
        let mut c = snappy::compress(&data);
        if !c.is_empty() {
            let pos = flip.0 % c.len();
            c[pos] ^= flip.1 | 1;
            // Must not panic; may error or decode to something else.
            let _ = snappy::decompress(&c);
        }
    }

    #[test]
    fn huffman_round_trip(data in payload()) {
        let mut hist = [1u64; 256];
        for &b in &data { hist[b as usize] += 1; }
        let t = HuffmanTable::from_histogram(&hist);
        let (bytes, bits) = huffman::encode(&data, &t).unwrap();
        prop_assert_eq!(huffman::decode(&bytes, bits, &t, data.len()).unwrap(), data);
    }

    #[test]
    fn huffman_never_beats_entropy_by_much(data in payload()) {
        // Sanity: coded size >= data len * entropy estimate - slack.
        if data.len() < 64 { return Ok(()); }
        let mut hist = [0u64; 256];
        for &b in &data { hist[b as usize] += 1; }
        let entropy_bits: f64 = hist.iter().filter(|&&c| c > 0).map(|&c| {
            let p = c as f64 / data.len() as f64;
            -(p.log2()) * c as f64
        }).sum();
        let mut smooth = [1u64; 256];
        for &b in &data { smooth[b as usize] += 1; }
        let t = HuffmanTable::from_histogram(&smooth);
        let (_, bits) = huffman::encode(&data, &t).unwrap();
        prop_assert!((bits as f64) + 1.0 >= entropy_bits,
            "coded {} bits below entropy {}", bits, entropy_bits);
    }

    #[test]
    fn delta_round_trip(idx in proptest::collection::vec(0u32..(1 << 31), 0..512)) {
        let enc = delta::encode_u32(&idx).unwrap();
        prop_assert_eq!(delta::decode_u32(&enc).unwrap(), idx);
    }

    #[test]
    fn delta_decoder_survives_mutation(
        idx in proptest::collection::vec(0u32..(1 << 31), 1..256),
        flip in any::<(usize, u8)>(),
    ) {
        let mut enc = delta::encode_u32(&idx).unwrap();
        let pos = flip.0 % enc.len();
        enc[pos] ^= flip.1 | 1;
        let _ = delta::decode_u32(&enc);
    }

    #[test]
    fn full_pipeline_round_trip(data in payload(), block_pow in 7u32..13) {
        // Align to 4 bytes and clear each word's top bit so the delta
        // stage's index precondition (< 2^31) holds.
        let mut data = data;
        data.truncate(data.len() & !3);
        clear_index_top_bits(&mut data);
        let config = PipelineConfig {
            delta: true,
            snappy: true,
            huffman: true,
            block_bytes: 1usize << block_pow,
            huffman_sample_every: 2,
        };
        let pipe = Pipeline::train(config, &data).unwrap();
        let enc = pipe.encode_stream(&data).unwrap();
        prop_assert_eq!(pipe.decode_stream(&enc).unwrap(), data);
    }

    #[test]
    fn pipeline_decoder_survives_payload_mutation(data in payload(), flip in any::<(usize, usize, u8)>()) {
        let mut data = data;
        data.truncate(data.len() & !3);
        clear_index_top_bits(&mut data);
        let pipe = Pipeline::train(PipelineConfig::dsh_udp(), &data).unwrap();
        let mut enc = pipe.encode_stream(&data).unwrap();
        if enc.blocks.is_empty() { return Ok(()); }
        let bi = flip.0 % enc.blocks.len();
        let block = &mut enc.blocks[bi];
        if block.payload.is_empty() { return Ok(()); }
        let pos = flip.1 % block.payload.len();
        block.payload[pos] ^= flip.2 | 1;
        // Either an error or (rarely) an aliased decode of equal length —
        // never a panic or OOB.
        if let Ok(out) = pipe.decode_stream(&enc) {
            prop_assert_eq!(out.len(), data.len());
        }
    }

    #[test]
    fn faulted_streams_decode_ok_or_typed_error(
        data in payload(),
        seed in any::<u64>(),
        kidx in 0usize..6,
    ) {
        let mut data = data;
        data.truncate(data.len() & !3);
        clear_index_top_bits(&mut data);
        let config = PipelineConfig {
            delta: true,
            snappy: true,
            huffman: true,
            block_bytes: 256,
            huffman_sample_every: 2,
        };
        let pipe = Pipeline::train(config, &data).unwrap();
        let mut enc = pipe.encode_stream(&data).unwrap();
        let report = FaultInjector::new(seed).inject(&mut enc, FaultKind::ALL[kidx]);
        // Every outcome is Ok(original) or a typed error — never a panic,
        // never silently wrong bytes.
        match pipe.decode_stream(&enc) {
            Ok(out) => prop_assert_eq!(out, data),
            Err(_) => prop_assert!(report.is_some(), "typed error on an unmutated stream"),
        }
    }

    #[test]
    fn faulted_matrix_decompress_ok_or_typed_error(
        n in 20usize..80,
        mseed in any::<u64>(),
        fseed in any::<u64>(),
        kidx in 0usize..6,
        hit_values in any::<bool>(),
    ) {
        use recode_sparse::prelude::*;
        let a = generate(
            &GenSpec::ErdosRenyi { n, avg_deg: 4.0, values: ValueModel::MixedRepeated { distinct: 4 } },
            mseed,
        );
        // Small blocks so even small matrices span several of them.
        let cfg = MatrixCodecConfig {
            index: PipelineConfig { block_bytes: 512, ..PipelineConfig::dsh_udp() },
            value: PipelineConfig { block_bytes: 512, ..PipelineConfig::sh_udp() },
        };
        let mut c = CompressedMatrix::compress(&a, cfg).unwrap();
        let stream = if hit_values { &mut c.value_stream } else { &mut c.index_stream };
        let report = FaultInjector::new(fseed).inject(stream, FaultKind::ALL[kidx]);
        match c.decompress() {
            Ok(b) => prop_assert_eq!(b, a),
            Err(_) => prop_assert!(report.is_some(), "typed error on an unmutated matrix"),
        }
    }
}
