//! Seeded property-based round-trip fuzzing of the DSH codec — no external
//! fuzzing crate, so this suite runs everywhere (including offline builds
//! where `proptest` is unavailable). All randomness comes from the same
//! [`SplitMix64`] generator the fault injector uses, so any failure is a
//! reproducible `(MASTER_SEED, case index)` pair.
//!
//! Three identities, ~1k cases total:
//!
//! 1. software `Pipeline` encode→decode is the identity on random
//!    CSR-shaped index streams and value payloads (768 cases);
//! 2. the lane `DshDecoder` (real UDP programs on the cycle simulator)
//!    produces byte-identical output to the software decoder (128 cases);
//! 3. `CompressedMatrix` compress→decompress is the identity on random CSR
//!    matrices covering empty rows, dense rows, single-element rows, and
//!    extreme column deltas (128 cases).

use recode_codec::faults::SplitMix64;
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig, Pipeline, PipelineConfig};
use recode_sparse::prelude::*;
use recode_udp::progs::DshDecoder;
use recode_udp::Lane;

const MASTER_SEED: u64 = 0x5eed_0001;

/// Row shapes the generator mixes: the structural corner cases the DSH
/// index stream has to survive.
#[derive(Clone, Copy)]
enum RowShape {
    /// No entries at all (row_ptr repeats).
    Empty,
    /// A run of consecutive columns (delta 1 — the stencil fast path).
    Dense,
    /// Exactly one entry at a random column.
    Single,
    /// A few entries scattered across the full column range (deltas up to
    /// ~2^20 — stresses the varint/zigzag wide-delta path).
    ExtremeDeltas,
}

const SHAPES: [RowShape; 4] =
    [RowShape::Empty, RowShape::Dense, RowShape::Single, RowShape::ExtremeDeltas];

/// Random CSR with a per-row mix of the four shapes.
fn random_csr(rng: &mut SplitMix64) -> Csr {
    let nrows = 1 + rng.below(32);
    let ncols = 1 << (8 + rng.below(13)); // 256 .. 2^20 columns
    let mut coo = Coo::new(nrows, ncols).expect("coo dims");
    // A small value alphabet most of the time (compressible, like real PDE
    // coefficients), raw random doubles otherwise.
    let palette = [1.0, -4.0, 0.25, 1e-3];
    for row in 0..nrows {
        let shape = SHAPES[rng.below(SHAPES.len())];
        let mut cols: Vec<usize> = match shape {
            RowShape::Empty => Vec::new(),
            RowShape::Dense => {
                let len = 1 + rng.below(24.min(ncols));
                let start = rng.below(ncols - len + 1);
                (start..start + len).collect()
            }
            RowShape::Single => vec![rng.below(ncols)],
            RowShape::ExtremeDeltas => {
                let k = 1 + rng.below(5);
                let mut c: Vec<usize> = (0..k).map(|_| rng.below(ncols)).collect();
                c.sort_unstable();
                c.dedup();
                c
            }
        };
        cols.sort_unstable();
        for col in cols {
            let val = if rng.below(4) == 0 {
                rng.f64() * 2.0 - 1.0
            } else {
                palette[rng.below(palette.len())]
            };
            coo.push(row, col, val).expect("in-bounds push");
        }
    }
    coo.to_csr()
}

/// Random stream payload: 4-byte-aligned little-endian u32 words shaped
/// like a CSR column stream (all four row shapes), each word < 2^31 as the
/// delta stage requires.
fn random_index_payload(rng: &mut SplitMix64) -> Vec<u8> {
    let mut words: Vec<u32> = Vec::new();
    let rows = rng.below(40);
    for _ in 0..rows {
        match SHAPES[rng.below(SHAPES.len())] {
            RowShape::Empty => {}
            RowShape::Dense => {
                let len = 1 + rng.below(32);
                let start = rng.below(1 << 20) as u32;
                words.extend((0..len as u32).map(|k| start + k));
            }
            RowShape::Single => words.push(rng.below(1 << 30) as u32),
            RowShape::ExtremeDeltas => {
                // Deltas that swing across nearly the whole legal range.
                let k = 1 + rng.below(4);
                for _ in 0..k {
                    words.push((rng.next_u64() as u32) & 0x7FFF_FFFF);
                }
            }
        }
    }
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Random value-like payload: runs, small alphabets, or raw bytes.
fn random_value_payload(rng: &mut SplitMix64) -> Vec<u8> {
    let len = rng.below(2048) & !3;
    let mut data: Vec<u8> = match rng.below(3) {
        0 => vec![rng.below(256) as u8; len],
        1 => (0..len).map(|_| rng.below(6) as u8).collect(),
        _ => (0..len).map(|_| rng.below(256) as u8).collect(),
    };
    // Clear each little-endian word's top bit: the delta stage requires
    // every u32 index < 2^31.
    for word in data.chunks_exact_mut(4) {
        word[3] &= 0x7F;
    }
    data
}

fn small_block_config(rng: &mut SplitMix64) -> PipelineConfig {
    PipelineConfig {
        block_bytes: 256 << rng.below(3), // 256 / 512 / 1024
        ..PipelineConfig::dsh_udp()
    }
}

#[test]
fn software_pipeline_round_trips_random_csr_streams() {
    let mut rng = SplitMix64::new(MASTER_SEED);
    for case in 0..768 {
        let data = if case % 2 == 0 {
            random_index_payload(&mut rng)
        } else {
            random_value_payload(&mut rng)
        };
        let config = small_block_config(&mut rng);
        let pipe = Pipeline::train(config, &data)
            .unwrap_or_else(|e| panic!("case {case}: train failed: {e}"));
        let enc =
            pipe.encode_stream(&data).unwrap_or_else(|e| panic!("case {case}: encode failed: {e}"));
        let dec =
            pipe.decode_stream(&enc).unwrap_or_else(|e| panic!("case {case}: decode failed: {e}"));
        assert_eq!(dec, data, "case {case}: software round trip diverged");
        assert_eq!(enc.total_uncompressed, data.len(), "case {case}: stream header length drifted");
    }
}

#[test]
fn lane_decoder_matches_the_software_pipeline() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0xDEC0DE);
    let mut lane = Lane::new();
    for case in 0..128 {
        let mut data = if case % 2 == 0 {
            random_index_payload(&mut rng)
        } else {
            random_value_payload(&mut rng)
        };
        data.truncate(1024); // keep the cycle-level simulation cheap
        data.truncate(data.len() & !3);
        let config = small_block_config(&mut rng);
        let pipe = Pipeline::train(config, &data)
            .unwrap_or_else(|e| panic!("case {case}: train failed: {e}"));
        let enc =
            pipe.encode_stream(&data).unwrap_or_else(|e| panic!("case {case}: encode failed: {e}"));
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice()))
            .unwrap_or_else(|e| panic!("case {case}: decoder build failed: {e}"));
        let mut out = Vec::new();
        for (bi, block) in enc.blocks.iter().enumerate() {
            let res = decoder
                .decode_block(&mut lane, block)
                .unwrap_or_else(|e| panic!("case {case}: lane decode of block {bi} failed: {e}"));
            out.extend(res.output);
        }
        assert_eq!(out, data, "case {case}: lane decoder diverged from encoder input");
    }
}

#[test]
fn compressed_matrix_round_trips_random_csr() {
    let mut rng = SplitMix64::new(MASTER_SEED ^ 0xCC55);
    for case in 0..128 {
        let a = random_csr(&mut rng);
        // Small blocks so even tiny matrices span several of them.
        let cfg = MatrixCodecConfig {
            index: PipelineConfig { block_bytes: 512, ..PipelineConfig::dsh_udp() },
            value: PipelineConfig { block_bytes: 512, ..PipelineConfig::sh_udp() },
        };
        let cm = CompressedMatrix::compress(&a, cfg)
            .unwrap_or_else(|e| panic!("case {case}: compress failed: {e}"));
        let back =
            cm.decompress().unwrap_or_else(|e| panic!("case {case}: decompress failed: {e}"));
        assert_eq!(back, a, "case {case}: matrix round trip diverged");
        assert_eq!(cm.nnz, a.nnz(), "case {case}: nnz drifted");
    }
}
