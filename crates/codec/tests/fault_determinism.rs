//! Determinism contract of the transport-fault injector: a campaign seeded
//! with the same value produces the *identical* fault sequence — same
//! kinds, same target blocks, same byte-level mutations — across runs.
//! Chaos campaigns lean on this: any failing trial reproduces exactly from
//! `(seed, trial index)`, never "roughly".

use recode_codec::faults::{FaultInjector, FaultKind, FaultReport, SplitMix64};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_codec::BlockStream;
use recode_sparse::prelude::*;

fn fixture_stream() -> BlockStream {
    let a = generate(
        &GenSpec::Stencil2D {
            nx: 40,
            ny: 40,
            points: 5,
            values: ValueModel::QuantizedGaussian { levels: 16 },
        },
        23,
    );
    let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).expect("compress");
    cm.index_stream
}

/// Replays one seeded injection campaign: `rounds` random injections plus
/// one directed injection of every [`FaultKind`], recording each report and
/// a digest of the mutated stream after every step.
fn campaign(seed: u64, rounds: usize) -> (Vec<Option<FaultReport>>, Vec<u64>) {
    let mut stream = fixture_stream();
    let mut injector = FaultInjector::new(seed);
    let mut reports = Vec::new();
    let mut digests = Vec::new();
    for _ in 0..rounds {
        reports.push(injector.inject_random(&mut stream));
        digests.push(digest(&stream));
    }
    for kind in FaultKind::ALL {
        let mut fresh = fixture_stream();
        reports.push(injector.inject(&mut fresh, kind));
        digests.push(digest(&fresh));
    }
    (reports, digests)
}

/// Order-sensitive FNV-1a over every block's framing and payload.
fn digest(stream: &BlockStream) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for block in &stream.blocks {
        for v in [block.seq as u64, block.bit_len as u64, block.checksum as u64] {
            v.to_le_bytes().into_iter().for_each(&mut eat);
        }
        block.payload.iter().copied().for_each(&mut eat);
    }
    h
}

#[test]
fn same_seed_produces_the_identical_fault_sequence() {
    let (reports_a, digests_a) = campaign(0xFA57_5EED, 64);
    let (reports_b, digests_b) = campaign(0xFA57_5EED, 64);
    assert_eq!(reports_a, reports_b, "fault kinds, targets, and details must replay exactly");
    assert_eq!(digests_a, digests_b, "the mutated streams must be byte-identical");
    // Sanity: the campaign actually did something (not 64 no-ops).
    assert!(reports_a.iter().filter(|r| r.is_some()).count() > 32);
}

#[test]
fn different_seeds_diverge() {
    let (reports_a, _) = campaign(1, 64);
    let (reports_b, _) = campaign(2, 64);
    assert_ne!(reports_a, reports_b, "distinct seeds must explore distinct fault sequences");
}

#[test]
fn splitmix_streams_are_reproducible_and_full_range() {
    let mut a = SplitMix64::new(99);
    let mut b = SplitMix64::new(99);
    let xs: Vec<u64> = (0..256).map(|_| a.next_u64()).collect();
    let ys: Vec<u64> = (0..256).map(|_| b.next_u64()).collect();
    assert_eq!(xs, ys);
    // below(n) stays in range and hits more than one residue.
    let mut c = SplitMix64::new(7);
    let draws: Vec<usize> = (0..128).map(|_| c.below(10)).collect();
    assert!(draws.iter().all(|&d| d < 10));
    assert!(draws.iter().collect::<std::collections::BTreeSet<_>>().len() > 5);
}
