//! Fixed-width zigzag delta coding of 32-bit index streams.
//!
//! The paper is explicit that "the delta encoding step on its own provides
//! no benefit": output stays 4 bytes per index. What it does is turn the
//! arithmetic sequences of banded/diagonal matrices into *small repeating
//! integers* — e.g. a tridiagonal row's columns `[k-1, k, k+1]` become
//! deltas `[.., 1, 1]` — which Snappy's copy elements and Huffman's short
//! codes then compress aggressively.
//!
//! Each block is self-contained: the first index is stored absolutely, so
//! blocks decode independently on parallel UDP lanes.

use crate::error::{CodecError, CodecResult};

/// Zigzag-maps a signed delta to unsigned so small magnitudes of either sign
/// get small encodings.
#[inline]
pub fn zigzag(v: i64) -> u32 {
    ((v << 1) ^ (v >> 63)) as u32
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u32) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Delta-encodes `indices` into little-endian bytes, 4 per index. The first
/// index is absolute, each subsequent one a zigzagged difference.
///
/// # Errors
/// [`CodecError::Precondition`] if any index exceeds `i32::MAX`: zigzagged
/// differences of larger indices would not fit the fixed 4-byte words
/// (CSR columns are bounded by `ncols`, which real matrices keep far below
/// 2^31).
pub fn encode_u32(indices: &[u32]) -> CodecResult<Vec<u8>> {
    let mut out = Vec::with_capacity(indices.len() * 4);
    let mut prev = 0i64;
    for (k, &idx) in indices.iter().enumerate() {
        if idx > i32::MAX as u32 {
            return Err(CodecError::Precondition(format!(
                "index {idx} at position {k} exceeds the 2^31-1 delta-coding bound"
            )));
        }
        let word = if k == 0 { idx } else { zigzag(idx as i64 - prev) };
        out.extend_from_slice(&word.to_le_bytes());
        prev = idx as i64;
    }
    Ok(out)
}

/// Decodes bytes produced by [`encode_u32`].
///
/// # Errors
/// [`CodecError::Precondition`] if the length is not a multiple of 4;
/// [`CodecError::Corrupt`] if a decoded index leaves `u32` range.
pub fn decode_u32(bytes: &[u8]) -> CodecResult<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(CodecError::Precondition(format!(
            "delta stream length {} not a multiple of 4",
            bytes.len()
        )));
    }
    let n = bytes.len() / 4;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0i64;
    for k in 0..n {
        let word = u32::from_le_bytes(bytes[k * 4..k * 4 + 4].try_into().expect("length checked"));
        let value = if k == 0 { word as i64 } else { prev + unzigzag(word) };
        if !(0..=u32::MAX as i64).contains(&value) {
            return Err(CodecError::Corrupt(format!(
                "delta-decoded index {value} out of u32 range at position {k}"
            )));
        }
        out.push(value as u32);
        prev = value;
    }
    Ok(out)
}

/// Byte-level wrapper used by the pipeline: treats `bytes` as a u32 stream.
///
/// # Errors
/// As [`decode_u32`]; `encode_bytes` errors on misaligned input length.
pub fn encode_bytes(bytes: &[u8]) -> CodecResult<Vec<u8>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(CodecError::Precondition(format!(
            "index stream length {} not a multiple of 4",
            bytes.len()
        )));
    }
    let indices: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact")))
        .collect();
    encode_u32(&indices)
}

/// Inverse of [`encode_bytes`].
///
/// # Errors
/// As [`decode_u32`].
pub fn decode_bytes(bytes: &[u8]) -> CodecResult<Vec<u8>> {
    let indices = decode_u32(bytes)?;
    let mut out = Vec::with_capacity(indices.len() * 4);
    for idx in indices {
        out.extend_from_slice(&idx.to_le_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip_and_ordering() {
        for v in [-5i64, -1, 0, 1, 5, 1 << 30, -(1 << 30)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn encode_preserves_length() {
        let idx = [100u32, 101, 102, 50, 51];
        let enc = encode_u32(&idx).unwrap();
        assert_eq!(enc.len(), idx.len() * 4, "delta alone must not change size");
        assert_eq!(decode_u32(&enc).unwrap(), idx);
    }

    #[test]
    fn banded_indices_become_repeating_small_words() {
        // Tridiagonal-ish column pattern.
        let idx = [9u32, 10, 11, 10, 11, 12, 11, 12, 13];
        let enc = encode_u32(&idx).unwrap();
        // After the absolute first word, deltas alternate +1, +1, -1...
        // zigzag(+1)=2, zigzag(-1)=1 — tiny repeating values.
        let words: Vec<u32> =
            enc.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(words[0], 9);
        assert!(words[1..].iter().all(|&w| w <= 2), "words: {words:?}");
    }

    #[test]
    fn empty_and_singleton_streams() {
        assert_eq!(encode_u32(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(decode_u32(&[]).unwrap(), Vec::<u32>::new());
        let enc = encode_u32(&[7]).unwrap();
        assert_eq!(decode_u32(&enc).unwrap(), vec![7]);
    }

    #[test]
    fn misaligned_input_rejected() {
        assert!(decode_u32(&[1, 2, 3]).is_err());
        assert!(encode_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn corrupt_stream_cannot_escape_u32_range() {
        // Absolute start at u32::MAX then a positive delta overflows.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&zigzag(10).to_le_bytes());
        assert!(matches!(decode_u32(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn byte_wrappers_round_trip() {
        let idx = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let raw: Vec<u8> = idx.iter().flat_map(|i| i.to_le_bytes()).collect();
        let enc = encode_bytes(&raw).unwrap();
        assert_eq!(decode_bytes(&enc).unwrap(), raw);
    }
}

#[cfg(test)]
mod overflow_tests {
    use super::*;

    #[test]
    fn encode_rejects_indices_above_i32_max() {
        assert!(matches!(encode_u32(&[i32::MAX as u32 + 1]), Err(CodecError::Precondition(_))));
        assert!(encode_u32(&[i32::MAX as u32]).is_ok());
    }
}
