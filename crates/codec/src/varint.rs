//! Little-endian base-128 varints — the Snappy preamble encoding.

use crate::error::{CodecError, CodecResult};

/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as a little-endian varint; returns bytes written.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from the front of `input`, returning `(value, bytes_read)`.
///
/// # Errors
/// [`CodecError::Truncated`] if the continuation chain outruns the input,
/// [`CodecError::Corrupt`] if it exceeds 10 bytes (u64 overflow).
pub fn read_uvarint(input: &[u8]) -> CodecResult<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(CodecError::Corrupt("varint longer than 10 bytes".into()));
        }
        let payload = (byte & 0x7f) as u64;
        value |= payload
            .checked_shl(shift)
            .filter(|_| shift < 64 && (shift != 63 || payload <= 1))
            .ok_or_else(|| CodecError::Corrupt("varint overflows u64".into()))?;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::Truncated { context: "varint" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let n = write_uvarint(&mut buf, v);
            assert_eq!(n, buf.len());
            let (got, read) = read_uvarint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(read, buf.len());
        }
    }

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 300);
        assert_eq!(buf, vec![0xAC, 0x02]);
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(read_uvarint(&[0x80]), Err(CodecError::Truncated { context: "varint" }));
        assert!(read_uvarint(&[]).is_err());
    }

    #[test]
    fn oversized_varint_errors() {
        let bad = [0xFFu8; 11];
        assert!(matches!(read_uvarint(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let buf = [0x05, 0xAA, 0xBB];
        let (v, n) = read_uvarint(&buf).unwrap();
        assert_eq!((v, n), (5, 1));
    }
}
