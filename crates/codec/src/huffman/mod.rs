//! Canonical, length-limited Huffman coding over bytes.
//!
//! The paper builds one Huffman tree per matrix by sampling a subset of its
//! 8 KB blocks (up to 40%), then uses it as the final stage of the
//! Delta→Snappy→Huffman pipeline. Three implementation choices here are
//! load-bearing for the UDP side:
//!
//! * **Length limit 15 bits** (package-merge algorithm) — so the UDP decoder
//!   needs at most a two-level multi-way dispatch (8 + 7 bits).
//! * **Canonical codes** — the table ships as 256 code lengths; codes are
//!   reconstructed deterministically, and the UDP program compiler derives
//!   its dispatch tables from the same lengths.
//! * **Add-one smoothing** — every byte value gets a code even if the
//!   sampled blocks never contained it, so unsampled blocks always encode.

mod codec;

pub use codec::{decode, encode, FlatDecoder};

use crate::error::{CodecError, CodecResult};

/// Maximum code length in bits. 15 = 8-bit primary + 7-bit secondary
/// dispatch on the UDP.
pub const MAX_CODE_LEN: u8 = 15;

/// A canonical Huffman code for the byte alphabet.
///
/// `lengths[b]` is the code length of byte `b` (0 = byte has no code);
/// `codes[b]` is its canonical code, aligned to the least-significant bits.
/// Only the lengths are ever serialized (see
/// [`HuffmanTable::from_lengths`]); codes are a deterministic function of
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanTable {
    /// Code length per byte value (0 if absent).
    pub lengths: Vec<u8>,
    /// Canonical code per byte value (valid where `lengths > 0`).
    pub codes: Vec<u16>,
}

impl HuffmanTable {
    /// Builds a table from a byte histogram using package-merge for
    /// length-limited optimal codes.
    pub fn from_histogram(hist: &[u64; 256]) -> Self {
        let lengths = package_merge_lengths(hist, MAX_CODE_LEN);
        Self::from_lengths(lengths).expect("package-merge always satisfies Kraft")
    }

    /// Builds a table from sampled data blocks with add-one smoothing, the
    /// per-matrix construction the paper describes. `sample_every` keeps one
    /// block in `sample_every` (1 = all blocks, 3 ≈ the paper's ≤40%).
    pub fn from_sampled_blocks<'a, I>(blocks: I, sample_every: usize) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let stride = sample_every.max(1);
        let mut hist = [1u64; 256]; // add-one smoothing
        for (i, block) in blocks.into_iter().enumerate() {
            if i % stride != 0 {
                continue;
            }
            for &b in block {
                hist[b as usize] += 1;
            }
        }
        Self::from_histogram(&hist)
    }

    /// Reconstructs canonical codes from lengths (the serialized form).
    ///
    /// # Errors
    /// [`CodecError::Corrupt`] if lengths violate the Kraft inequality, the
    /// 15-bit limit, or the array is not 256 entries.
    pub fn from_lengths(lengths: Vec<u8>) -> CodecResult<Self> {
        if lengths.len() != 256 {
            return Err(CodecError::Corrupt(format!(
                "huffman table needs 256 lengths, got {}",
                lengths.len()
            )));
        }
        if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
            return Err(CodecError::Corrupt("code length exceeds 15 bits".into()));
        }
        // Kraft sum in units of 2^-15.
        let kraft: u64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (MAX_CODE_LEN - l)).sum();
        if kraft > 1 << MAX_CODE_LEN {
            return Err(CodecError::Corrupt("lengths violate Kraft inequality".into()));
        }
        // Canonical assignment: sort by (length, symbol).
        let mut order: Vec<u16> = (0..256u16).filter(|&s| lengths[s as usize] > 0).collect();
        order.sort_unstable_by_key(|&s| (lengths[s as usize], s));
        let mut codes = vec![0u16; 256];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &order {
            let l = lengths[s as usize];
            code <<= l - prev_len;
            codes[s as usize] = code as u16;
            code += 1;
            prev_len = l;
        }
        Ok(HuffmanTable { lengths, codes })
    }

    /// Number of byte values that have a code.
    pub fn coded_symbols(&self) -> usize {
        self.lengths.iter().filter(|&&l| l > 0).count()
    }

    /// Expected bits per input byte under this table for the given
    /// histogram — used by size estimators.
    pub fn expected_bits_per_byte(&self, hist: &[u64; 256]) -> f64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut bits = 0u64;
        for (h, l) in hist.iter().zip(&self.lengths) {
            bits += h * *l as u64;
        }
        bits as f64 / total as f64
    }
}

/// Package-merge: optimal code lengths under a maximum length.
/// Returns 256 lengths (0 for zero-weight symbols).
fn package_merge_lengths(hist: &[u64; 256], max_len: u8) -> Vec<u8> {
    // An item is (weight, multiset of leaf symbols it contains).
    type Item = (u64, Vec<u16>);
    let symbols: Vec<u16> = (0..256u16).filter(|&s| hist[s as usize] > 0).collect();
    let n = symbols.len();
    let mut lengths = vec![0u8; 256];
    match n {
        0 => return lengths,
        1 => {
            lengths[symbols[0] as usize] = 1;
            return lengths;
        }
        _ => {}
    }
    debug_assert!((1usize << max_len) >= n, "alphabet too large for length limit");

    let mut leaves: Vec<Item> = symbols.iter().map(|&s| (hist[s as usize], vec![s])).collect();
    leaves.sort_unstable_by_key(|(w, _)| *w);

    // Level max_len starts with just the leaves; each shallower level
    // packages pairs from the level below and merges with fresh leaves.
    let mut packages: Vec<Item> = leaves.clone();
    for _ in 1..max_len {
        let mut paired: Vec<Item> = Vec::with_capacity(packages.len() / 2);
        for pair in packages.chunks_exact(2) {
            let mut syms = pair[0].1.clone();
            syms.extend_from_slice(&pair[1].1);
            paired.push((pair[0].0 + pair[1].0, syms));
        }
        // Merge sorted lists of leaves and pairs.
        let mut merged = Vec::with_capacity(leaves.len() + paired.len());
        let (mut i, mut j) = (0, 0);
        while i < leaves.len() || j < paired.len() {
            let take_leaf = j >= paired.len() || (i < leaves.len() && leaves[i].0 <= paired[j].0);
            if take_leaf {
                merged.push(leaves[i].clone());
                i += 1;
            } else {
                merged.push(std::mem::take(&mut paired[j]));
                j += 1;
            }
        }
        packages = merged;
    }

    // The first 2n-2 items of the final level define the code: a symbol's
    // length is the number of items containing it.
    for item in packages.iter().take(2 * n - 2) {
        for &s in &item.1 {
            lengths[s as usize] += 1;
        }
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(data: &[u8]) -> [u64; 256] {
        let mut h = [0u64; 256];
        for &b in data {
            h[b as usize] += 1;
        }
        h
    }

    fn kraft_exact(lengths: &[u8]) -> bool {
        let sum: u64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (MAX_CODE_LEN - l)).sum();
        sum == 1 << MAX_CODE_LEN
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let t = HuffmanTable::from_histogram(&hist_of(b"aaaabb"));
        assert_eq!(t.lengths[b'a' as usize], 1);
        assert_eq!(t.lengths[b'b' as usize], 1);
        assert_eq!(t.coded_symbols(), 2);
    }

    #[test]
    fn skewed_distribution_gives_short_code_to_common_symbol() {
        let mut data = vec![b'x'; 1000];
        data.extend_from_slice(b"abcdefgh");
        let t = HuffmanTable::from_histogram(&hist_of(&data));
        assert_eq!(t.lengths[b'x' as usize], 1);
        for &b in b"abcdefgh" {
            assert!(t.lengths[b as usize] >= 3, "rare symbol {b} got {}", t.lengths[b as usize]);
        }
        assert!(kraft_exact(&t.lengths));
    }

    #[test]
    fn uniform_256_symbols_all_get_8_bits() {
        let hist = [100u64; 256];
        let t = HuffmanTable::from_histogram(&hist);
        assert!(t.lengths.iter().all(|&l| l == 8), "{:?}", &t.lengths[..16]);
        assert!(kraft_exact(&t.lengths));
    }

    #[test]
    fn length_limit_is_respected_on_exponential_weights() {
        // Fibonacci-ish weights drive unbounded Huffman depth > 15.
        let mut hist = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for h in hist.iter_mut().take(40) {
            *h = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let t = HuffmanTable::from_histogram(&hist);
        let max = t.lengths.iter().copied().max().unwrap();
        assert!(max <= MAX_CODE_LEN, "max length {max}");
        assert!(kraft_exact(&t.lengths));
    }

    #[test]
    fn single_symbol_gets_a_one_bit_code() {
        let t = HuffmanTable::from_histogram(&hist_of(b"zzzz"));
        assert_eq!(t.lengths[b'z' as usize], 1);
        assert_eq!(t.coded_symbols(), 1);
    }

    #[test]
    fn empty_histogram_gives_empty_table() {
        let t = HuffmanTable::from_histogram(&[0u64; 256]);
        assert_eq!(t.coded_symbols(), 0);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut data: Vec<u8> = Vec::new();
        for b in 0..=255u8 {
            data.extend(std::iter::repeat_n(b, (b as usize % 17) + 1));
        }
        let t = HuffmanTable::from_histogram(&hist_of(&data));
        // Brute-force prefix check on (code << (15 - len)) intervals.
        let mut intervals: Vec<(u32, u32)> = (0..256)
            .filter(|&s| t.lengths[s] > 0)
            .map(|s| {
                let l = t.lengths[s];
                let lo = (t.codes[s] as u32) << (MAX_CODE_LEN - l);
                (lo, lo + (1 << (MAX_CODE_LEN - l)))
            })
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping codes: {w:?}");
        }
    }

    #[test]
    fn from_lengths_round_trips_and_validates() {
        let t = HuffmanTable::from_histogram(&hist_of(b"hello world, hello huffman"));
        let rebuilt = HuffmanTable::from_lengths(t.lengths.clone()).unwrap();
        assert_eq!(rebuilt.codes, t.codes);
        // Over-full set of lengths violates Kraft.
        let mut bad = vec![0u8; 256];
        bad[0] = 1;
        bad[1] = 1;
        bad[2] = 1;
        assert!(HuffmanTable::from_lengths(bad).is_err());
        assert!(HuffmanTable::from_lengths(vec![0u8; 255]).is_err());
        let mut too_long = vec![0u8; 256];
        too_long[0] = 16;
        assert!(HuffmanTable::from_lengths(too_long).is_err());
    }

    #[test]
    fn sampling_with_smoothing_codes_every_byte() {
        let blocks: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 100]).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(std::vec::Vec::as_slice).collect();
        let t = HuffmanTable::from_sampled_blocks(refs, 3);
        assert_eq!(t.coded_symbols(), 256, "smoothing must cover the whole alphabet");
    }

    #[test]
    fn expected_bits_reflects_skew() {
        let mut data = vec![0u8; 10_000];
        data.extend_from_slice(&[1, 2, 3]);
        let hist = hist_of(&data);
        let t = HuffmanTable::from_histogram(&hist);
        let bits = t.expected_bits_per_byte(&hist);
        assert!(bits < 1.1, "skewed stream should need ~1 bit/byte, got {bits}");
    }
}
