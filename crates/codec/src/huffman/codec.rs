//! Huffman encode/decode against a [`HuffmanTable`].
//!
//! Decoding uses a flat 15-bit lookup table (peek `MAX_CODE_LEN` bits,
//! zero-padded at end-of-stream, then skip the matched code's length) — the
//! software analogue of the UDP's multi-way dispatch decoder.

use super::{HuffmanTable, MAX_CODE_LEN};
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{CodecError, CodecResult};
#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
use crate::jit::huff::{HuffState, STATUS_BAIL};

/// Encodes `data`, returning `(bytes, bit_len)`.
///
/// # Errors
/// [`CodecError::Corrupt`] if a byte has no code in the table (cannot happen
/// for tables built with add-one smoothing).
pub fn encode(data: &[u8], table: &HuffmanTable) -> CodecResult<(Vec<u8>, usize)> {
    let mut w = BitWriter::new();
    for &b in data {
        let len = table.lengths[b as usize];
        if len == 0 {
            return Err(CodecError::Corrupt(format!("byte {b:#04x} has no huffman code")));
        }
        w.write_bits(table.codes[b as usize] as u32, len);
    }
    Ok(w.finish())
}

/// A flat decode table: one entry per 15-bit window. Building it touches
/// all 2^15 entries, so callers that decode many blocks against one table
/// (the pipeline, benches) should build once and reuse — both decode entry
/// points here are methods on the prebuilt table.
#[derive(Clone)]
pub struct FlatDecoder {
    /// `(symbol, code_length)` per window; length 0 marks an invalid window.
    entries: Vec<(u8, u8)>,
    /// Shortest code length in the table (0 when the table has no codes).
    min_len: u8,
    /// Compiled dispatch loop (x86-64 Linux with the JIT tier enabled);
    /// `None` sends every decode down the scalar path. Shared so clones
    /// reuse the published pages — the compiled code reads the entry table
    /// through per-call state, never a captured pointer, so a clone can
    /// never execute against a stale table.
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    jit: Option<std::sync::Arc<crate::jit::huff::HuffJit>>,
}

// The elided fields are a 32 Ki-entry LUT and the compiled artifact —
// noise in debug output; the shape identifies the decoder.
#[allow(clippy::missing_fields_in_debug)]
impl std::fmt::Debug for FlatDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatDecoder")
            .field("windows", &self.entries.len())
            .field("min_len", &self.min_len)
            .finish()
    }
}

impl FlatDecoder {
    /// Builds the flat table (one pass over all 2^15 windows).
    pub fn build(table: &HuffmanTable) -> Self {
        let mut entries = vec![(0u8, 0u8); 1 << MAX_CODE_LEN];
        let mut min_len = 0u8;
        for s in 0..256usize {
            let l = table.lengths[s];
            if l == 0 {
                continue;
            }
            if min_len == 0 || l < min_len {
                min_len = l;
            }
            let lo = (table.codes[s] as usize) << (MAX_CODE_LEN - l);
            let hi = lo + (1usize << (MAX_CODE_LEN - l));
            for e in &mut entries[lo..hi] {
                *e = (s as u8, l);
            }
        }
        #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
        let jit = Self::compile_dispatch(entries.len());
        FlatDecoder {
            entries,
            min_len,
            #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
            jit,
        }
    }

    /// Lowers the dispatch loop to native code, reporting the compile (or
    /// its failure, which falls back to the scalar tier) to the JIT hook.
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    fn compile_dispatch(windows: usize) -> Option<std::sync::Arc<crate::jit::huff::HuffJit>> {
        use crate::jit::{huff::HuffJit, report_compile, CompileEvent};
        if !crate::jit::enabled() {
            return None;
        }
        let t0 = std::time::Instant::now();
        let res = HuffJit::compile();
        let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report_compile(&CompileEvent {
            what: "huffman",
            code_bytes: res.as_ref().map_or(0, HuffJit::code_bytes),
            blocks: if res.is_ok() { windows } else { 0 },
            wall_ns,
            ok: res.is_ok(),
        });
        res.ok().map(std::sync::Arc::new)
    }

    /// Shortest code length in the table (0 when the table has no codes).
    pub fn min_code_len(&self) -> u8 {
        self.min_len
    }

    /// Decodes one symbol at the reader's position — the single window-
    /// decode step every Huffman decode path in this crate goes through.
    #[inline]
    fn read_symbol(&self, r: &mut BitReader<'_>) -> CodecResult<u8> {
        let window = r.peek_bits_padded(MAX_CODE_LEN);
        let (sym, len) = self.entries[window as usize];
        if len == 0 {
            return Err(CodecError::Corrupt(format!(
                "invalid huffman window {window:#06x} at bit {}",
                r.bit_len() - r.remaining()
            )));
        }
        if (len as usize) > r.remaining() {
            return Err(CodecError::Truncated { context: "huffman code" });
        }
        r.skip_bits(len).expect("length checked against remaining");
        Ok(sym)
    }

    /// Decodes exactly `expected_len` symbols from a bitstream of `bit_len`
    /// valid bits.
    ///
    /// # Errors
    /// [`CodecError`] on invalid windows, premature end, or trailing bits
    /// that don't form a whole code.
    pub fn decode_exact(
        &self,
        bytes: &[u8],
        bit_len: usize,
        expected_len: usize,
    ) -> CodecResult<Vec<u8>> {
        #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
        if let Some(jit) = &self.jit {
            if bit_len <= bytes.len() * 8 {
                return self.decode_exact_jit(jit, bytes, bit_len, expected_len);
            }
            // Out-of-range bit_len: scalar produces the exact error.
        }
        self.decode_exact_scalar(bytes, bit_len, expected_len)
    }

    /// The scalar tier of [`Self::decode_exact`] — the semantic source of
    /// truth the compiled loop is differenced against, and the portable
    /// fallback.
    ///
    /// # Errors
    /// As [`Self::decode_exact`].
    pub fn decode_exact_scalar(
        &self,
        bytes: &[u8],
        bit_len: usize,
        expected_len: usize,
    ) -> CodecResult<Vec<u8>> {
        let mut r = BitReader::new(bytes, bit_len)?;
        let mut out = Vec::with_capacity(expected_len);
        while out.len() < expected_len {
            out.push(self.read_symbol(&mut r)?);
        }
        if r.remaining() >= 8 {
            return Err(CodecError::Corrupt(format!(
                "{} unread bits after decoding {expected_len} symbols",
                r.remaining()
            )));
        }
        Ok(out)
    }

    /// Decodes until the bitstream is exhausted (fewer bits remain than the
    /// shortest code, which must all be padding: zero leftover bits are
    /// tolerated at the end only because codes are byte-packed). Used when
    /// the symbol count is not stored explicitly.
    ///
    /// # Errors
    /// [`CodecError`] on invalid windows, premature end, leftover bits, or
    /// a code-less table facing a non-empty stream.
    pub fn decode_all(&self, bytes: &[u8], bit_len: usize) -> CodecResult<Vec<u8>> {
        #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
        if let Some(jit) = &self.jit {
            if self.min_len > 0 && bit_len <= bytes.len() * 8 {
                return self.decode_all_jit(jit, bytes, bit_len);
            }
            // min_len == 0 / out-of-range bit_len: scalar early paths apply.
        }
        self.decode_all_scalar(bytes, bit_len)
    }

    /// The scalar tier of [`Self::decode_all`] — the semantic source of
    /// truth the compiled loop is differenced against, and the portable
    /// fallback.
    ///
    /// # Errors
    /// As [`Self::decode_all`].
    pub fn decode_all_scalar(&self, bytes: &[u8], bit_len: usize) -> CodecResult<Vec<u8>> {
        if self.min_len == 0 {
            return if bit_len == 0 {
                Ok(Vec::new())
            } else {
                Err(CodecError::Corrupt("bits present but table has no codes".into()))
            };
        }
        let mut r = BitReader::new(bytes, bit_len)?;
        let mut out = Vec::with_capacity(bit_len / self.min_len as usize + 1);
        while r.remaining() >= self.min_len as usize {
            out.push(self.read_symbol(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt(format!(
                "{} leftover bits shorter than any code",
                r.remaining()
            )));
        }
        Ok(out)
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
impl FlatDecoder {
    /// Seeds the per-call state for a compiled decode starting at bit 0.
    fn jit_state(
        &self,
        bytes: &[u8],
        bit_len: usize,
        out: &mut Vec<u8>,
        expected: usize,
    ) -> HuffState {
        HuffState {
            in_ptr: bytes.as_ptr(),
            bit_len: bit_len as u64,
            pos: 0,
            entries: self.entries.as_ptr().cast(),
            out_ptr: out.as_mut_ptr(),
            out_len: 0,
            expected: expected as u64,
            status: 0,
        }
    }

    /// Compiled tier of [`Self::decode_exact`]: fast loop over the easy
    /// region, scalar tail, full scalar re-run on bail (reproducing the
    /// exact error).
    fn decode_exact_jit(
        &self,
        jit: &crate::jit::huff::HuffJit,
        bytes: &[u8],
        bit_len: usize,
        expected_len: usize,
    ) -> CodecResult<Vec<u8>> {
        let mut out = Vec::with_capacity(expected_len);
        let mut st = self.jit_state(bytes, bit_len, &mut out, expected_len);
        // SAFETY: `bytes` backs `bit_len` (checked by the caller) and is
        // readable through any 8-byte refill window (the loop only loads
        // when >= 64 bits remain); `entries` is the live table; `out` has
        // capacity `expected_len` and the loop stops at that count.
        unsafe { jit.run_exact(&mut st) };
        if st.status == STATUS_BAIL {
            return self.decode_exact_scalar(bytes, bit_len, expected_len);
        }
        let produced = usize::try_from(st.out_len).expect("count fits usize");
        debug_assert!(produced <= expected_len);
        // SAFETY: the compiled loop initialized exactly `produced` bytes
        // (bounded by the capacity reserved above).
        unsafe { out.set_len(produced) };
        let mut r = BitReader::resume_at(bytes, bit_len, usize::try_from(st.pos).expect("pos"))?;
        while out.len() < expected_len {
            out.push(self.read_symbol(&mut r)?);
        }
        if r.remaining() >= 8 {
            return Err(CodecError::Corrupt(format!(
                "{} unread bits after decoding {expected_len} symbols",
                r.remaining()
            )));
        }
        Ok(out)
    }

    /// Compiled tier of [`Self::decode_all`]; caller guarantees
    /// `min_len > 0` and an in-range `bit_len`.
    fn decode_all_jit(
        &self,
        jit: &crate::jit::huff::HuffJit,
        bytes: &[u8],
        bit_len: usize,
    ) -> CodecResult<Vec<u8>> {
        let cap = bit_len / self.min_len as usize + 1;
        let mut out = Vec::with_capacity(cap);
        let mut st = self.jit_state(bytes, bit_len, &mut out, usize::MAX);
        // SAFETY: as in `decode_exact_jit`; every decoded symbol consumes
        // at least `min_len >= 1` bits, so the loop writes at most
        // `bit_len / min_len < cap` symbols.
        unsafe { jit.run_all(&mut st) };
        if st.status == STATUS_BAIL {
            return self.decode_all_scalar(bytes, bit_len);
        }
        let produced = usize::try_from(st.out_len).expect("count fits usize");
        debug_assert!(produced < cap);
        // SAFETY: the compiled loop initialized exactly `produced` bytes.
        unsafe { out.set_len(produced) };
        let mut r = BitReader::resume_at(bytes, bit_len, usize::try_from(st.pos).expect("pos"))?;
        while r.remaining() >= self.min_len as usize {
            out.push(self.read_symbol(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt(format!(
                "{} leftover bits shorter than any code",
                r.remaining()
            )));
        }
        Ok(out)
    }
}

/// Decodes exactly `expected_len` symbols from a bitstream of `bit_len`
/// valid bits. Builds a throwaway [`FlatDecoder`]; repeat callers should
/// build one and use [`FlatDecoder::decode_exact`].
///
/// # Errors
/// [`CodecError`] on invalid windows, premature end, or trailing bits that
/// don't form a whole code.
pub fn decode(
    bytes: &[u8],
    bit_len: usize,
    table: &HuffmanTable,
    expected_len: usize,
) -> CodecResult<Vec<u8>> {
    FlatDecoder::build(table).decode_exact(bytes, bit_len, expected_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_for(data: &[u8]) -> HuffmanTable {
        let mut hist = [1u64; 256]; // smoothing, as the pipeline does
        for &b in data {
            hist[b as usize] += 1;
        }
        HuffmanTable::from_histogram(&hist)
    }

    fn round_trip(data: &[u8]) {
        let t = table_for(data);
        let (bytes, bits) = encode(data, &t).unwrap();
        let back = decode(&bytes, bits, &t, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn round_trips() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abracadabra, abracadabra!");
        round_trip(&(0..=255u8).collect::<Vec<_>>());
        let skew: Vec<u8> = (0..5000).map(|i| if i % 17 == 0 { 7 } else { 0 }).collect();
        round_trip(&skew);
    }

    #[test]
    fn compresses_skewed_data() {
        let data: Vec<u8> = (0..8192).map(|i| if i % 20 == 0 { 99 } else { 0 }).collect();
        let t = table_for(&data);
        let (bytes, _) = encode(&data, &t).unwrap();
        assert!(
            bytes.len() < data.len() / 4,
            "skewed data should shrink 4x+, got {} -> {}",
            data.len(),
            bytes.len()
        );
    }

    #[test]
    fn uniform_random_does_not_shrink_much() {
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 20) as u8).collect();
        let t = table_for(&data);
        let (bytes, _) = encode(&data, &t).unwrap();
        assert!(bytes.len() as f64 > data.len() as f64 * 0.9);
    }

    #[test]
    fn missing_code_is_an_error() {
        let mut hist = [0u64; 256];
        hist[b'a' as usize] = 5;
        hist[b'b' as usize] = 5;
        let t = HuffmanTable::from_histogram(&hist);
        assert!(matches!(encode(b"abc", &t), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn truncated_stream_is_detected() {
        let data = b"hello hello hello";
        let t = table_for(data);
        let (bytes, bits) = encode(data, &t).unwrap();
        // Chop the last byte off.
        let chopped = &bytes[..bytes.len() - 1];
        let chopped_bits = bits.min(chopped.len() * 8);
        let r = decode(chopped, chopped_bits, &t, data.len());
        assert!(r.is_err());
    }

    #[test]
    fn wrong_expected_len_leaves_unread_bits() {
        let data = b"mississippi river mississippi";
        let t = table_for(data);
        let (bytes, bits) = encode(data, &t).unwrap();
        let r = decode(&bytes, bits, &t, data.len() / 2);
        assert!(matches!(r, Err(CodecError::Corrupt(_))), "got {r:?}");
    }

    /// The compiled dispatch must be observationally identical to the
    /// scalar decoder — same symbols, same `CodecError` payloads — on
    /// clean, truncated, and bit-flipped streams, for both entry points.
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    #[test]
    fn compiled_dispatch_matches_scalar_exactly() {
        fn all_pairs(fd: &FlatDecoder, bytes: &[u8], bits: usize, expected: usize) {
            let jit_all = fd.decode_all(bytes, bits);
            let sc_all = fd.decode_all_scalar(bytes, bits);
            assert_eq!(format!("{jit_all:?}"), format!("{sc_all:?}"));
            let jit_ex = fd.decode_exact(bytes, bits, expected);
            let sc_ex = fd.decode_exact_scalar(bytes, bits, expected);
            assert_eq!(format!("{jit_ex:?}"), format!("{sc_ex:?}"));
        }

        let datasets: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abracadabra, abracadabra!".to_vec(),
            (0..=255u8).collect(),
            (0..9000).map(|i| if i % 17 == 0 { 7 } else { 0 }).collect(),
            (0..4096u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 20) as u8).collect(),
        ];
        for data in &datasets {
            let t = table_for(data);
            let fd = FlatDecoder::build(&t);
            let (bytes, bits) = encode(data, &t).unwrap();
            all_pairs(&fd, &bytes, bits, data.len());
            // Truncations at every byte boundary.
            for cut in 0..bytes.len().min(24) {
                let chopped = &bytes[..cut];
                all_pairs(&fd, chopped, bits.min(cut * 8), data.len());
            }
            // Bit flips across the stream (every byte for short streams).
            let mut mutated = bytes.clone();
            for i in 0..mutated.len() {
                mutated[i] ^= 0x55;
                all_pairs(&fd, &mutated, bits, data.len());
                mutated[i] ^= 0x55;
            }
            // Wrong expected counts exercise the unread-bits tail error.
            for wrong in [data.len() / 2, data.len() + 3] {
                let jit = fd.decode_exact(&bytes, bits, wrong);
                let sc = fd.decode_exact_scalar(&bytes, bits, wrong);
                assert_eq!(format!("{jit:?}"), format!("{sc:?}"));
            }
        }
    }

    #[test]
    fn corrupt_bits_never_panic() {
        let data = b"some sample payload for corruption";
        let t = table_for(data);
        let (mut bytes, bits) = encode(data, &t).unwrap();
        for i in 0..bytes.len() {
            bytes[i] ^= 0xFF;
            let _ = decode(&bytes, bits, &t, data.len());
            bytes[i] ^= 0xFF;
        }
    }
}
