//! MSB-first bit I/O used by the Huffman stage.
//!
//! MSB-first ordering means a canonical code's bits appear in the byte
//! stream in the same order they appear in the code word, which is also the
//! order the UDP's `dispatch.peek` consumes them — keeping the software
//! codec and the UDP program bit-compatible.

use crate::error::{CodecError, CodecResult};

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8; 0 means byte-aligned).
    used: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `nbits` of `code`, most significant of those first.
    ///
    /// # Panics
    /// If `nbits > 32`.
    pub fn write_bits(&mut self, code: u32, nbits: u8) {
        assert!(nbits <= 32, "at most 32 bits per write");
        for i in (0..nbits).rev() {
            let bit = (code >> i) & 1;
            if self.used == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.used);
            self.used = (self.used + 1) % 8;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finishes the stream, returning `(bytes, bit_len)`. Trailing padding
    /// bits in the final byte are zero.
    pub fn finish(self) -> (Vec<u8>, usize) {
        let bits = self.bit_len();
        (self.bytes, bits)
    }
}

/// Reads bits MSB-first from a byte slice.
///
/// Requests are served from a 64-bit refill buffer holding the bits at
/// `[pos, pos + buf_bits)` MSB-aligned; bits below `buf_bits` are zero, so
/// past-the-end peeks get their zero padding for free. Bytes are loaded
/// whole instead of the reader touching the slice bit-by-bit.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next (unconsumed) bit position.
    pos: usize,
    /// Total valid bits (may be less than `bytes.len() * 8`).
    bit_len: usize,
    buf: u64,
    buf_bits: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps `bytes`, of which only the first `bit_len` bits are valid.
    ///
    /// # Errors
    /// [`CodecError::Corrupt`] if `bit_len` exceeds the buffer.
    pub fn new(bytes: &'a [u8], bit_len: usize) -> CodecResult<Self> {
        if bit_len > bytes.len() * 8 {
            return Err(CodecError::Corrupt(format!(
                "bit length {bit_len} exceeds buffer of {} bits",
                bytes.len() * 8
            )));
        }
        Ok(BitReader { bytes, pos: 0, bit_len, buf: 0, buf_bits: 0 })
    }

    /// Wraps `bytes` with the cursor already at bit `pos` — how the scalar
    /// decoder takes over mid-stream from the compiled Huffman loop. `pos`
    /// may be mid-byte; the refill invariant is re-established.
    ///
    /// # Errors
    /// [`CodecError::Corrupt`] if `bit_len` exceeds the buffer.
    ///
    /// # Panics
    /// Debug-asserts `pos <= bit_len`.
    pub(crate) fn resume_at(bytes: &'a [u8], bit_len: usize, pos: usize) -> CodecResult<Self> {
        let mut r = BitReader::new(bytes, bit_len)?;
        debug_assert!(pos <= bit_len, "resume position {pos} past bit length {bit_len}");
        r.pos = pos.min(bit_len);
        r.rebase();
        Ok(r)
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }

    /// Total valid bits in the stream.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Tops up the buffer. Invariant: the next load position
    /// (`pos + buf_bits`) is byte-aligned or `>= bit_len`, so whole bytes
    /// can be appended; the final partial byte is masked to `bit_len`.
    #[inline]
    fn refill(&mut self) {
        let mut next = self.pos + self.buf_bits as usize;
        while self.buf_bits <= 56 && next < self.bit_len {
            debug_assert_eq!(next % 8, 0);
            let avail = self.bit_len - next;
            let mut b = self.bytes[next / 8];
            if avail < 8 {
                b &= 0xFF << (8 - avail);
            }
            self.buf |= (b as u64) << (56 - self.buf_bits);
            self.buf_bits += if avail < 8 { avail as u32 } else { 8 };
            next += 8;
        }
    }

    /// Re-establishes the refill invariant after `pos` jumped past the
    /// buffer to a possibly mid-byte position.
    fn rebase(&mut self) {
        self.buf = 0;
        self.buf_bits = 0;
        let frac = self.pos % 8;
        if frac != 0 && self.pos < self.bit_len {
            let avail = (8 - frac).min(self.bit_len - self.pos);
            let b = (self.bytes[self.pos / 8] << frac) & (0xFFu16 << (8 - avail)) as u8;
            self.buf = (b as u64) << 56;
            self.buf_bits = avail as u32;
        }
    }

    /// Consumes `n` bits; caller has checked `n <= remaining()`.
    #[inline]
    fn advance(&mut self, n: usize) {
        self.pos += n;
        if (n as u64) < u64::from(self.buf_bits) {
            self.buf <<= n;
            self.buf_bits -= n as u32;
        } else {
            self.rebase();
        }
    }

    /// Reads `nbits` (<= 32) MSB-first.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if fewer than `nbits` remain.
    pub fn read_bits(&mut self, nbits: u8) -> CodecResult<u32> {
        debug_assert!(nbits <= 32, "at most 32 bits per read");
        if nbits as usize > self.remaining() {
            return Err(CodecError::Truncated { context: "bitstream" });
        }
        let out = self.peek_bits_padded(nbits);
        self.advance(nbits as usize);
        Ok(out)
    }

    /// Peeks up to `nbits` (<= 32) without consuming; missing tail bits
    /// read as 0 (the standard trick that lets table-driven decoders peek a
    /// full index near end-of-stream).
    pub fn peek_bits_padded(&mut self, nbits: u8) -> u32 {
        debug_assert!(nbits <= 32, "at most 32 bits per peek");
        if nbits == 0 {
            return 0;
        }
        if u32::from(nbits) > self.buf_bits {
            self.refill();
        }
        (self.buf >> (64 - u32::from(nbits))) as u32
    }

    /// Consumes `nbits`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if fewer remain.
    pub fn skip_bits(&mut self, nbits: u8) -> CodecResult<()> {
        if nbits as usize > self.remaining() {
            return Err(CodecError::Truncated { context: "bitstream skip" });
        }
        self.advance(nbits as usize);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b0110, 4);
        w.write_bits(0xDEAD, 16);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 23);
        let mut r = BitReader::new(&bytes, bits).unwrap();
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(4).unwrap(), 0b0110);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.remaining(), 0);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // bit 7 of byte 0
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        let (bytes, _) = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn peek_pads_past_the_end_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits).unwrap();
        assert_eq!(r.peek_bits_padded(8), 0b1100_0000);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits).unwrap();
        assert_eq!(r.peek_bits_padded(4), 0b1011);
        assert_eq!(r.peek_bits_padded(4), 0b1011);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
    }

    #[test]
    fn bad_bit_len_rejected() {
        assert!(BitReader::new(&[0u8], 9).is_err());
        assert!(BitReader::new(&[], 0).is_ok());
    }

    #[test]
    fn skip_bits_moves_cursor() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 8);
        w.write_bits(0b01, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits).unwrap();
        r.skip_bits(8).unwrap();
        assert_eq!(r.read_bits(2).unwrap(), 0b01);
        assert!(r.skip_bits(1).is_err());
    }
}
