//! Hand-rolled CRC32c (Castagnoli) — table-driven, no external deps.
//!
//! Used by the block framing layer to detect payload/header corruption
//! anywhere between the encoder and the lane that decodes the block. The
//! Castagnoli polynomial is preferred over CRC32 (IEEE) for its better
//! error-detection properties on short messages, and matches what real
//! storage/transport stacks (iSCSI, ext4, ROCKSDB) checksum blocks with.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Byte-at-a-time lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

/// Incremental CRC32c hasher.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32c of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the CRC-32C polynomial.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 3720 (iSCSI) appendix: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = crc32c(&data);
        let mut h = Crc32c::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0xA5u8; 64];
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32c(&d), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
