//! The composed recoding pipeline and whole-matrix compression.
//!
//! Encoding runs **Delta → Snappy → Huffman** per block (any stage can be
//! toggled off); decoding runs the reverse — Huffman decode, Snappy decode,
//! inverse delta — exactly the three steps §V-A describes running "as a
//! series of steps in a single lane of the UDP".
//!
//! A sparse matrix compresses as two independent block streams, one for the
//! column indices and one for the values, mirroring the two `recode()`
//! calls in the paper's Fig. 7 tiled SpMV. The `row_ptr` array stays raw:
//! it is `O(rows)` not `O(nnz)` and the paper's 12 B/nnz baseline excludes
//! it as well.

use crate::block::{split_blocks, BlockStream, CompressedBlock};
use crate::error::{CodecError, CodecResult};
use crate::huffman::{self, FlatDecoder, HuffmanTable};
use crate::telemetry::StageTelemetry;
use crate::{delta, snappy};
use rayon::prelude::*;
use recode_sparse::Csr;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Which stages a pipeline runs and at what block granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Fixed-width zigzag delta (index streams only — requires 4-byte
    /// alignment).
    pub delta: bool,
    /// Snappy stage.
    pub snappy: bool,
    /// Huffman stage (requires a trained table).
    pub huffman: bool,
    /// Uncompressed bytes per block.
    pub block_bytes: usize,
    /// Keep 1 block in `huffman_sample_every` when training the Huffman
    /// table (paper: sampled "up to 40%" of blocks → every ~3rd block).
    pub huffman_sample_every: usize,
}

impl PipelineConfig {
    /// The paper's UDP pipeline for index streams: Delta+Snappy+Huffman on
    /// 8 KB blocks.
    pub fn dsh_udp() -> Self {
        PipelineConfig {
            delta: true,
            snappy: true,
            huffman: true,
            block_bytes: crate::UDP_BLOCK_BYTES,
            huffman_sample_every: 3,
        }
    }

    /// The paper's UDP pipeline for value streams (no delta: doubles don't
    /// difference meaningfully at the byte level).
    pub fn sh_udp() -> Self {
        PipelineConfig { delta: false, ..Self::dsh_udp() }
    }

    /// Delta+Snappy without Huffman (the paper's intermediate data point:
    /// geomean 5.92 B/nnz).
    pub fn ds_udp() -> Self {
        PipelineConfig { huffman: false, ..Self::dsh_udp() }
    }

    /// The CPU baseline: plain Snappy on 32 KB blocks (paper: geomean
    /// 5.20 B/nnz).
    pub fn snappy_cpu() -> Self {
        PipelineConfig {
            delta: false,
            snappy: true,
            huffman: false,
            block_bytes: crate::CPU_BLOCK_BYTES,
            huffman_sample_every: 1,
        }
    }
}

/// A trained pipeline: config plus the per-stream Huffman table (if the
/// Huffman stage is enabled).
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    table: Option<HuffmanTable>,
    /// Flat decode LUT built once per table at pipeline construction —
    /// `decode_block` must not pay the 2^15-entry rebuild per block.
    decoder: Option<FlatDecoder>,
    /// Optional shared per-stage telemetry. `None` (the default) keeps the
    /// encode/decode hot paths free of any timing calls.
    telemetry: Option<Arc<StageTelemetry>>,
}

impl Pipeline {
    /// Builds a pipeline, training the Huffman table on `data` if the
    /// config enables that stage. Training compresses a sample of blocks
    /// through the earlier stages so the table models what Huffman will
    /// actually see.
    ///
    /// # Errors
    /// Propagates stage preconditions (e.g. delta on misaligned data).
    pub fn train(config: PipelineConfig, data: &[u8]) -> CodecResult<Self> {
        if config.delta && !config.block_bytes.is_multiple_of(4) {
            return Err(CodecError::Precondition(
                "delta stage requires 4-byte-aligned blocks".into(),
            ));
        }
        let table = if config.huffman {
            let stride = config.huffman_sample_every.max(1);
            let mut hist = [1u64; 256]; // add-one smoothing
            for (i, block) in split_blocks(data, config.block_bytes)?.into_iter().enumerate() {
                if i % stride != 0 {
                    continue;
                }
                let pre = Self::run_pre_huffman(&config, block)?;
                for &b in &pre {
                    hist[b as usize] += 1;
                }
            }
            Some(HuffmanTable::from_histogram(&hist))
        } else {
            None
        };
        let decoder = table.as_ref().map(FlatDecoder::build);
        Ok(Pipeline { config, table, decoder, telemetry: None })
    }

    /// Builds a pipeline with an externally supplied table (e.g. decoder
    /// side, reconstructed from serialized lengths).
    ///
    /// # Errors
    /// [`CodecError::MissingTable`] if the config needs a table and none is
    /// given.
    pub fn with_table(config: PipelineConfig, table: Option<HuffmanTable>) -> CodecResult<Self> {
        if config.huffman && table.is_none() {
            return Err(CodecError::MissingTable);
        }
        let decoder = table.as_ref().map(FlatDecoder::build);
        Ok(Pipeline { config, table, decoder, telemetry: None })
    }

    /// The configuration this pipeline runs.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The trained Huffman table, if any.
    pub fn table(&self) -> Option<&HuffmanTable> {
        self.table.as_ref()
    }

    /// Attaches (or detaches) shared per-stage telemetry. With `None`, the
    /// encode/decode paths make no timing calls at all.
    pub fn set_telemetry(&mut self, telemetry: Option<Arc<StageTelemetry>>) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&Arc<StageTelemetry>> {
        self.telemetry.as_ref()
    }

    /// Stages before Huffman (shared by encoding and table training).
    fn run_pre_huffman(config: &PipelineConfig, block: &[u8]) -> CodecResult<Vec<u8>> {
        Self::run_pre_huffman_observed(config, block, None)
    }

    /// [`Self::run_pre_huffman`] with optional per-stage instrumentation.
    fn run_pre_huffman_observed(
        config: &PipelineConfig,
        block: &[u8],
        tel: Option<&StageTelemetry>,
    ) -> CodecResult<Vec<u8>> {
        let after_delta = if config.delta {
            let t0 = tel.map(|_| Instant::now());
            let out = delta::encode_bytes(block)?;
            if let (Some(tel), Some(t0)) = (tel, t0) {
                tel.encode.delta.record(t0, block.len(), out.len());
            }
            out
        } else {
            block.to_vec()
        };
        Ok(if config.snappy {
            let t0 = tel.map(|_| Instant::now());
            let out = snappy::compress(&after_delta);
            if let (Some(tel), Some(t0)) = (tel, t0) {
                tel.encode.snappy.record(t0, after_delta.len(), out.len());
            }
            out
        } else {
            after_delta
        })
    }

    /// Encodes one standalone block (sealed with sequence number 0).
    ///
    /// # Errors
    /// Stage preconditions (alignment) and internal encoding failures.
    pub fn encode_block(&self, block: &[u8]) -> CodecResult<CompressedBlock> {
        self.encode_block_at(block, 0)
    }

    /// Encodes one block destined for stream position `seq`, sealing it with
    /// its checksum.
    ///
    /// # Errors
    /// Stage preconditions (alignment) and internal encoding failures.
    pub fn encode_block_at(&self, block: &[u8], seq: u32) -> CodecResult<CompressedBlock> {
        let tel = self.telemetry.as_deref();
        let pre = Self::run_pre_huffman_observed(&self.config, block, tel)?;
        let (payload, bit_len) = if self.config.huffman {
            let table = self.table.as_ref().ok_or(CodecError::MissingTable)?;
            let t0 = tel.map(|_| Instant::now());
            let (payload, bit_len) = huffman::encode(&pre, table)?;
            if let (Some(tel), Some(t0)) = (tel, t0) {
                tel.encode.huffman.record(t0, pre.len(), payload.len());
            }
            (payload, bit_len)
        } else {
            let bits = pre.len() * 8;
            (pre, bits)
        };
        Ok(CompressedBlock::sealed(payload, bit_len, block.len(), seq))
    }

    /// Decodes one block back to its uncompressed bytes. The block checksum
    /// is verified before any stage touches the payload, so corruption is
    /// reported as [`CodecError::ChecksumMismatch`] rather than whatever a
    /// stage happens to notice (or fail to notice).
    ///
    /// # Errors
    /// Checksum mismatch, any stage's corruption/truncation errors; the
    /// final length is verified against the block header.
    pub fn decode_block(&self, block: &CompressedBlock) -> CodecResult<Vec<u8>> {
        block.verify_checksum()?;
        let tel = self.telemetry.as_deref();
        // Stage 1: Huffman decode (needs the intermediate length, which is
        // recoverable: snappy self-describes, so decode until the bitstream
        // is exhausted — we instead store the intermediate implicitly by
        // decoding symbol-by-symbol until all bits are consumed).
        let pre = if self.config.huffman {
            let decoder = self.decoder.as_ref().ok_or(CodecError::MissingTable)?;
            let t0 = tel.map(|_| Instant::now());
            let out = decoder.decode_all(&block.payload, block.bit_len)?;
            if let (Some(tel), Some(t0)) = (tel, t0) {
                tel.decode.huffman.record(t0, block.payload.len(), out.len());
            }
            out
        } else {
            block.payload.clone()
        };
        // Stage 2: Snappy decode.
        let after_snappy = if self.config.snappy {
            let t0 = tel.map(|_| Instant::now());
            let in_len = pre.len();
            let out = snappy::decompress_with_limit(
                &pre,
                self.config.block_bytes.max(block.uncompressed_len),
            )?;
            if let (Some(tel), Some(t0)) = (tel, t0) {
                tel.decode.snappy.record(t0, in_len, out.len());
            }
            out
        } else {
            pre
        };
        // Stage 3: inverse delta.
        let out = if self.config.delta {
            let t0 = tel.map(|_| Instant::now());
            let in_len = after_snappy.len();
            let out = delta::decode_bytes(&after_snappy)?;
            if let (Some(tel), Some(t0)) = (tel, t0) {
                tel.decode.delta.record(t0, in_len, out.len());
            }
            out
        } else {
            after_snappy
        };
        if out.len() != block.uncompressed_len {
            return Err(CodecError::LengthMismatch {
                expected: block.uncompressed_len,
                actual: out.len(),
            });
        }
        Ok(out)
    }

    /// Encodes a whole byte stream into framed blocks (parallel across
    /// blocks).
    ///
    /// # Errors
    /// First failing block's error.
    pub fn encode_stream(&self, data: &[u8]) -> CodecResult<BlockStream> {
        let blocks: Vec<CompressedBlock> = split_blocks(data, self.config.block_bytes)?
            .into_par_iter()
            .enumerate()
            .map(|(k, b)| self.encode_block_at(b, k as u32))
            .collect::<CodecResult<_>>()?;
        Ok(BlockStream {
            block_bytes: self.config.block_bytes,
            blocks,
            total_uncompressed: data.len(),
        })
    }

    /// Decodes a framed stream back to bytes (parallel across blocks).
    /// Stream structure (block count, sequence numbers, checksums) is
    /// verified up front, so dropped/duplicated/reordered blocks surface as
    /// typed errors instead of silently wrong bytes.
    ///
    /// # Errors
    /// Structural integrity errors, the first failing block's error; total
    /// length is re-verified.
    pub fn decode_stream(&self, stream: &BlockStream) -> CodecResult<Vec<u8>> {
        stream.verify()?;
        let parts: Vec<Vec<u8>> =
            stream.blocks.par_iter().map(|b| self.decode_block(b)).collect::<CodecResult<_>>()?;
        let out: Vec<u8> = parts.concat();
        if out.len() != stream.total_uncompressed {
            return Err(CodecError::LengthMismatch {
                expected: stream.total_uncompressed,
                actual: out.len(),
            });
        }
        Ok(out)
    }
}

/// Matrix-level codec configuration: one pipeline per stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCodecConfig {
    /// Pipeline for the column-index stream.
    pub index: PipelineConfig,
    /// Pipeline for the value stream.
    pub value: PipelineConfig,
}

impl MatrixCodecConfig {
    /// The paper's UDP configuration: DSH indices, SH values, 8 KB blocks.
    pub fn udp_dsh() -> Self {
        MatrixCodecConfig { index: PipelineConfig::dsh_udp(), value: PipelineConfig::sh_udp() }
    }

    /// Delta+Snappy (no Huffman) on both streams — the paper's 5.92 B/nnz
    /// intermediate point.
    pub fn udp_ds() -> Self {
        MatrixCodecConfig {
            index: PipelineConfig::ds_udp(),
            value: PipelineConfig { delta: false, ..PipelineConfig::ds_udp() },
        }
    }

    /// The CPU Snappy baseline (32 KB blocks, both streams).
    pub fn cpu_snappy() -> Self {
        MatrixCodecConfig {
            index: PipelineConfig::snappy_cpu(),
            value: PipelineConfig::snappy_cpu(),
        }
    }
}

/// A fully compressed sparse matrix: raw `row_ptr`, compressed index and
/// value streams, and everything needed to decode (configs + Huffman code
/// lengths).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressedMatrix {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Raw row pointers (kept uncompressed, as in the paper).
    pub row_ptr: Vec<usize>,
    /// Compressed column-index stream.
    pub index_stream: BlockStream,
    /// Compressed value stream.
    pub value_stream: BlockStream,
    /// Codec configuration used.
    pub config: MatrixCodecConfig,
    /// Serialized Huffman table (code lengths) for the index stream.
    pub index_table_lengths: Option<Vec<u8>>,
    /// Serialized Huffman table (code lengths) for the value stream.
    pub value_table_lengths: Option<Vec<u8>>,
}

impl CompressedMatrix {
    /// Compresses `a` under `config` (trains per-stream Huffman tables).
    ///
    /// # Errors
    /// Stage preconditions (e.g. a matrix with `ncols > 2^31` cannot be
    /// delta-coded).
    pub fn compress(a: &Csr, config: MatrixCodecConfig) -> CodecResult<Self> {
        Self::compress_observed(a, config, None)
    }

    /// [`Self::compress`] with per-stage encode telemetry recorded into
    /// `telemetry`.
    ///
    /// # Errors
    /// Same as [`Self::compress`].
    pub fn compress_with_telemetry(
        a: &Csr,
        config: MatrixCodecConfig,
        telemetry: &Arc<StageTelemetry>,
    ) -> CodecResult<Self> {
        Self::compress_observed(a, config, Some(telemetry))
    }

    fn compress_observed(
        a: &Csr,
        config: MatrixCodecConfig,
        telemetry: Option<&Arc<StageTelemetry>>,
    ) -> CodecResult<Self> {
        let index_bytes: Vec<u8> = a.col_idx().iter().flat_map(|c| c.to_le_bytes()).collect();
        let value_bytes: Vec<u8> = a.values().iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut index_pipe = Pipeline::train(config.index, &index_bytes)?;
        let mut value_pipe = Pipeline::train(config.value, &value_bytes)?;
        index_pipe.set_telemetry(telemetry.cloned());
        value_pipe.set_telemetry(telemetry.cloned());
        Ok(CompressedMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            row_ptr: a.row_ptr().to_vec(),
            index_stream: index_pipe.encode_stream(&index_bytes)?,
            value_stream: value_pipe.encode_stream(&value_bytes)?,
            config,
            index_table_lengths: index_pipe.table().map(|t| t.lengths.clone()),
            value_table_lengths: value_pipe.table().map(|t| t.lengths.clone()),
        })
    }

    /// Rebuilds the per-stream decode pipelines with shared telemetry
    /// attached to both.
    ///
    /// # Errors
    /// Corrupt table lengths or missing tables.
    pub fn pipelines_with_telemetry(
        &self,
        telemetry: &Arc<StageTelemetry>,
    ) -> CodecResult<(Pipeline, Pipeline)> {
        let (mut index_pipe, mut value_pipe) = self.pipelines()?;
        index_pipe.set_telemetry(Some(Arc::clone(telemetry)));
        value_pipe.set_telemetry(Some(Arc::clone(telemetry)));
        Ok((index_pipe, value_pipe))
    }

    /// Rebuilds the per-stream decode pipelines from the serialized state.
    ///
    /// # Errors
    /// Corrupt table lengths or missing tables.
    pub fn pipelines(&self) -> CodecResult<(Pipeline, Pipeline)> {
        let index_table = self
            .index_table_lengths
            .as_ref()
            .map(|l| HuffmanTable::from_lengths(l.clone()))
            .transpose()?;
        let value_table = self
            .value_table_lengths
            .as_ref()
            .map(|l| HuffmanTable::from_lengths(l.clone()))
            .transpose()?;
        Ok((
            Pipeline::with_table(self.config.index, index_table)?,
            Pipeline::with_table(self.config.value, value_table)?,
        ))
    }

    /// Decompresses back to CSR. The result is bit-identical to the input
    /// matrix (lossless pipeline).
    ///
    /// # Errors
    /// Decode errors, or structural errors if the decoded streams do not
    /// reassemble into a valid CSR matrix.
    pub fn decompress(&self) -> CodecResult<Csr> {
        self.decompress_observed(None)
    }

    /// [`Self::decompress`] with per-stage decode telemetry recorded into
    /// `telemetry`.
    ///
    /// # Errors
    /// Same as [`Self::decompress`].
    pub fn decompress_with_telemetry(&self, telemetry: &Arc<StageTelemetry>) -> CodecResult<Csr> {
        self.decompress_observed(Some(telemetry))
    }

    fn decompress_observed(&self, telemetry: Option<&Arc<StageTelemetry>>) -> CodecResult<Csr> {
        let (index_pipe, value_pipe) = match telemetry {
            Some(t) => self.pipelines_with_telemetry(t)?,
            None => self.pipelines()?,
        };
        let index_bytes = index_pipe.decode_stream(&self.index_stream)?;
        let value_bytes = value_pipe.decode_stream(&self.value_stream)?;
        if index_bytes.len() != self.nnz * 4 || value_bytes.len() != self.nnz * 8 {
            return Err(CodecError::LengthMismatch {
                expected: self.nnz * 12,
                actual: index_bytes.len() + value_bytes.len(),
            });
        }
        let col_idx: Vec<u32> = index_bytes
            .chunks_exact(4)
            .map(|c| {
                c.try_into()
                    .map(u32::from_le_bytes)
                    .map_err(|_| CodecError::Corrupt("index stream not 4-byte aligned".into()))
            })
            .collect::<CodecResult<_>>()?;
        let values: Vec<f64> = value_bytes
            .chunks_exact(8)
            .map(|c| {
                c.try_into()
                    .map(f64::from_le_bytes)
                    .map_err(|_| CodecError::Corrupt("value stream not 8-byte aligned".into()))
            })
            .collect::<CodecResult<_>>()?;
        Csr::try_from_parts(self.nrows, self.ncols, self.row_ptr.clone(), col_idx, values)
            .map_err(|e| CodecError::Corrupt(format!("decoded matrix invalid: {e}")))
    }

    /// Total compressed wire bytes (both streams + serialized tables).
    pub fn wire_bytes(&self) -> usize {
        let tables = self.index_table_lengths.as_ref().map_or(0, Vec::len)
            + self.value_table_lengths.as_ref().map_or(0, Vec::len);
        self.index_stream.wire_bytes() + self.value_stream.wire_bytes() + tables
    }

    /// The paper's headline metric: compressed bytes per non-zero
    /// (raw CSR = 12.0), via the shared [`crate::metrics::bytes_per_nnz`]
    /// definition.
    pub fn bytes_per_nnz(&self) -> f64 {
        crate::metrics::bytes_per_nnz(self.wire_bytes(), self.nnz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_sparse::prelude::*;

    fn banded_matrix() -> Csr {
        generate(
            &GenSpec::FemBand {
                n: 600,
                band: 12,
                fill: 0.6,
                values: ValueModel::MixedRepeated { distinct: 8 },
            },
            11,
        )
    }

    fn random_matrix() -> Csr {
        generate(
            &GenSpec::ErdosRenyi { n: 500, avg_deg: 10.0, values: ValueModel::UniformRandom },
            5,
        )
    }

    #[test]
    fn stream_round_trip_all_stage_combinations() {
        let data: Vec<u8> = (0..40_000u32).flat_map(|i| ((i / 7) % 97).to_le_bytes()).collect();
        for delta in [false, true] {
            for snappy in [false, true] {
                for huffman in [false, true] {
                    let config = PipelineConfig {
                        delta,
                        snappy,
                        huffman,
                        block_bytes: 8192,
                        huffman_sample_every: 3,
                    };
                    let pipe = Pipeline::train(config, &data).unwrap();
                    let enc = pipe.encode_stream(&data).unwrap();
                    let dec = pipe.decode_stream(&enc).unwrap();
                    assert_eq!(dec, data, "stages d={delta} s={snappy} h={huffman}");
                }
            }
        }
    }

    #[test]
    fn matrix_round_trip_is_lossless_udp_config() {
        let a = banded_matrix();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        assert_eq!(c.decompress().unwrap(), a);
    }

    #[test]
    fn matrix_round_trip_is_lossless_cpu_config() {
        let a = random_matrix();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::cpu_snappy()).unwrap();
        assert_eq!(c.decompress().unwrap(), a);
    }

    #[test]
    fn banded_matrix_beats_12_bytes_per_nnz_substantially() {
        let a = banded_matrix();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let bpnnz = c.bytes_per_nnz();
        assert!(bpnnz < 7.0, "banded DSH should beat 7 B/nnz, got {bpnnz:.2}");
    }

    #[test]
    fn dsh_beats_plain_snappy_on_banded_indices() {
        let a = banded_matrix();
        let dsh = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let cpu = CompressedMatrix::compress(&a, MatrixCodecConfig::cpu_snappy()).unwrap();
        assert!(
            dsh.index_stream.wire_bytes() < cpu.index_stream.wire_bytes(),
            "DSH index stream {} vs CPU snappy {}",
            dsh.index_stream.wire_bytes(),
            cpu.index_stream.wire_bytes()
        );
    }

    #[test]
    fn random_values_resist_compression() {
        let a = random_matrix();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        // Value stream is 8 B/nnz raw; full-entropy doubles shouldn't shrink
        // much below that.
        let value_bpnnz = c.value_stream.wire_bytes() as f64 / c.nnz as f64;
        assert!(value_bpnnz > 6.5, "value stream {value_bpnnz:.2} B/nnz");
    }

    #[test]
    fn empty_matrix_compresses_and_round_trips() {
        let a = Csr::try_from_parts(4, 4, vec![0, 0, 0, 0, 0], vec![], vec![]).unwrap();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        assert_eq!(c.decompress().unwrap(), a);
        assert_eq!(c.bytes_per_nnz(), 0.0);
    }

    #[test]
    fn corrupt_payload_is_rejected_not_mispropagated() {
        let a = banded_matrix();
        let mut c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        if let Some(b) = c.index_stream.blocks.first_mut() {
            if let Some(byte) = b.payload.first_mut() {
                *byte ^= 0x55;
            }
        }
        assert!(c.decompress().is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let a = banded_matrix();
        let mut c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        c.value_stream.blocks.pop();
        assert!(c.decompress().is_err());
    }

    #[test]
    fn missing_table_is_reported() {
        let a = banded_matrix();
        let mut c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        c.index_table_lengths = None;
        assert!(matches!(c.decompress(), Err(CodecError::MissingTable)));
    }

    #[test]
    fn checksum_catches_stage_undetected_corruption() {
        // With every stage off the payload IS the data: pre-CRC framing, a
        // bit flip here decoded to silently wrong bytes. The checksum is the
        // only line of defense and must catch it.
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let config = PipelineConfig {
            delta: false,
            snappy: false,
            huffman: false,
            block_bytes: 1024,
            huffman_sample_every: 1,
        };
        let pipe = Pipeline::train(config, &data).unwrap();
        let mut enc = pipe.encode_stream(&data).unwrap();
        enc.blocks[3].payload[10] ^= 1;
        assert!(matches!(pipe.decode_stream(&enc), Err(CodecError::ChecksumMismatch { .. })));
    }

    #[test]
    fn reordered_blocks_are_rejected_by_stream_decode() {
        let data: Vec<u8> = (0..40_000u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        let config = PipelineConfig {
            delta: false,
            snappy: true,
            huffman: false,
            block_bytes: 4096,
            huffman_sample_every: 1,
        };
        let pipe = Pipeline::train(config, &data).unwrap();
        let mut enc = pipe.encode_stream(&data).unwrap();
        enc.blocks.swap(0, 1);
        assert!(matches!(pipe.decode_stream(&enc), Err(CodecError::BlockSequence { .. })));
    }

    #[test]
    fn telemetry_sees_enabled_stages_in_both_directions() {
        use crate::telemetry::StageTelemetry;
        use std::sync::Arc;
        let a = banded_matrix();
        let tel = Arc::new(StageTelemetry::new());
        let c = CompressedMatrix::compress_with_telemetry(&a, MatrixCodecConfig::udp_dsh(), &tel)
            .unwrap();
        let enc = tel.snapshot().encode;
        // Index stream is DSH, value stream SH: every stage ran somewhere.
        assert!(enc.delta.calls > 0 && enc.snappy.calls > 0 && enc.huffman.calls > 0);
        assert_eq!(enc.delta.bytes_in, (a.nnz() * 4) as u64, "delta sees raw index bytes");
        // Decode through instrumented pipelines and check the other side.
        let (ip, vp) = c.pipelines_with_telemetry(&tel).unwrap();
        ip.decode_stream(&c.index_stream).unwrap();
        vp.decode_stream(&c.value_stream).unwrap();
        let dec = tel.snapshot().decode;
        assert!(dec.delta.calls > 0 && dec.snappy.calls > 0 && dec.huffman.calls > 0);
        assert_eq!(dec.delta.bytes_out, (a.nnz() * 4) as u64);
        assert_eq!(dec.snappy.bytes_out, ((a.nnz() * 12) as u64), "snappy emits both streams");
    }

    #[test]
    fn untraced_pipeline_has_no_telemetry_attached() {
        let a = banded_matrix();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let (ip, vp) = c.pipelines().unwrap();
        assert!(ip.telemetry().is_none() && vp.telemetry().is_none());
    }

    #[test]
    fn serde_round_trip_preserves_decodability() {
        let a = banded_matrix();
        let c = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let c2: CompressedMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(c2.decompress().unwrap(), a);
    }
}
