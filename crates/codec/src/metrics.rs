//! Compression accounting in the paper's units: bytes per non-zero.

use crate::pipeline::CompressedMatrix;
use serde::{Deserialize, Serialize};

/// Raw CSR storage per non-zero: 4-byte index + 8-byte double.
pub const RAW_CSR_BYTES_PER_NNZ: f64 = 12.0;

/// The one definition of the paper's bytes-per-non-zero metric:
/// `wire_bytes / nnz`, with an empty matrix counting as 0.0.
///
/// Every consumer — [`CompressedMatrix::bytes_per_nnz`], the streaming and
/// overlapped executors' stats, and the bench reports — must compute B/nnz
/// through this helper so the paths cannot drift apart.
pub fn bytes_per_nnz(wire_bytes: usize, nnz: usize) -> f64 {
    if nnz == 0 {
        0.0
    } else {
        wire_bytes as f64 / nnz as f64
    }
}

/// Per-matrix compression summary (one row of the paper's Fig. 10/11 data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressionSummary {
    /// Stored non-zeros.
    pub nnz: usize,
    /// Compressed index-stream bytes per non-zero.
    pub index_bytes_per_nnz: f64,
    /// Compressed value-stream bytes per non-zero.
    pub value_bytes_per_nnz: f64,
    /// Total compressed bytes per non-zero (the paper's metric).
    pub bytes_per_nnz: f64,
    /// `12.0 / bytes_per_nnz` — how much less memory traffic SpMV moves.
    pub traffic_reduction: f64,
}

impl CompressionSummary {
    /// Summarizes a compressed matrix.
    pub fn of(c: &CompressedMatrix) -> Self {
        let nnz = c.nnz.max(1) as f64;
        let bpnnz = c.bytes_per_nnz();
        CompressionSummary {
            nnz: c.nnz,
            index_bytes_per_nnz: c.index_stream.wire_bytes() as f64 / nnz,
            value_bytes_per_nnz: c.value_stream.wire_bytes() as f64 / nnz,
            bytes_per_nnz: bpnnz,
            traffic_reduction: if bpnnz > 0.0 { RAW_CSR_BYTES_PER_NNZ / bpnnz } else { 1.0 },
        }
    }
}

/// Geometric mean of `bytes_per_nnz` across summaries — the corpus-level
/// number the paper reports (5.20 CPU Snappy / 5.92 DS / 5.00 DSH).
pub fn geomean_bytes_per_nnz(summaries: &[CompressionSummary]) -> Option<f64> {
    let xs: Vec<f64> = summaries.iter().map(|s| s.bytes_per_nnz).collect();
    recode_sparse::util::geometric_mean(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MatrixCodecConfig;
    use recode_sparse::prelude::*;

    #[test]
    fn summary_parts_add_up() {
        let a = generate(
            &GenSpec::Stencil2D { nx: 40, ny: 40, points: 5, values: ValueModel::StencilCoeffs },
            1,
        );
        let c =
            crate::pipeline::CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let s = CompressionSummary::of(&c);
        // index + value differ from total only by the serialized tables.
        assert!(s.bytes_per_nnz >= s.index_bytes_per_nnz + s.value_bytes_per_nnz);
        assert!(s.bytes_per_nnz - (s.index_bytes_per_nnz + s.value_bytes_per_nnz) < 1.0);
        assert!(s.traffic_reduction > 1.0, "stencil must compress: {s:?}");
    }

    #[test]
    fn geomean_empty_is_none() {
        assert!(geomean_bytes_per_nnz(&[]).is_none());
    }
}
