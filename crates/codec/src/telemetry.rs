//! Per-stage codec telemetry: wall-clock timing and byte counters for the
//! software Delta/Snappy/Huffman stages, in both directions.
//!
//! A [`StageTelemetry`] is a bag of relaxed atomics so a single instance can
//! be shared (via `Arc`) across the rayon-parallel encode/decode paths with
//! no locking. The trace-off path carries zero cost: a [`Pipeline`] without
//! an attached telemetry never calls `Instant::now()`.
//!
//! [`Pipeline`]: crate::pipeline::Pipeline

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Lock-free accumulator for one (stage, direction) pair.
#[derive(Debug, Default)]
pub struct StageCounters {
    calls: AtomicU64,
    ns: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl StageCounters {
    /// Records one stage invocation.
    pub fn record(&self, started: Instant, bytes_in: usize, bytes_out: usize) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in as u64, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out as u64, Ordering::Relaxed);
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> StageStats {
        StageStats {
            calls: self.calls.load(Ordering::Relaxed),
            ns: self.ns.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one (stage, direction) accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage invocations (blocks).
    pub calls: u64,
    /// Wall-clock nanoseconds across invocations.
    pub ns: u64,
    /// Bytes fed into the stage.
    pub bytes_in: u64,
    /// Bytes the stage produced.
    pub bytes_out: u64,
}

impl StageStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &StageStats) {
        self.calls += other.calls;
        self.ns += other.ns;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }
}

/// One direction's three stages.
#[derive(Debug, Default)]
pub struct DirectionCounters {
    /// Zigzag-delta stage.
    pub delta: StageCounters,
    /// Snappy stage.
    pub snappy: StageCounters,
    /// Huffman stage.
    pub huffman: StageCounters,
}

impl DirectionCounters {
    fn snapshot(&self) -> DirectionStats {
        DirectionStats {
            delta: self.delta.snapshot(),
            snappy: self.snappy.snapshot(),
            huffman: self.huffman.snapshot(),
        }
    }
}

/// Snapshot of one direction's three stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectionStats {
    /// Zigzag-delta stage.
    pub delta: StageStats,
    /// Snappy stage.
    pub snappy: StageStats,
    /// Huffman stage.
    pub huffman: StageStats,
}

impl DirectionStats {
    /// Total nanoseconds across the three stages.
    pub fn total_ns(&self) -> u64 {
        self.delta.ns + self.snappy.ns + self.huffman.ns
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &DirectionStats) {
        self.delta.merge(&other.delta);
        self.snappy.merge(&other.snappy);
        self.huffman.merge(&other.huffman);
    }
}

/// Shared telemetry for the software codec: per-stage encode and decode
/// accumulators. Attach to a [`crate::pipeline::Pipeline`] via
/// `Pipeline::set_telemetry` or use
/// [`crate::pipeline::CompressedMatrix::compress_with_telemetry`].
#[derive(Debug, Default)]
pub struct StageTelemetry {
    /// Encode-direction counters.
    pub encode: DirectionCounters,
    /// Decode-direction counters.
    pub decode: DirectionCounters,
}

impl StageTelemetry {
    /// Fresh zeroed telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value snapshot, serializable into a trace document.
    pub fn snapshot(&self) -> CodecStageReport {
        CodecStageReport { encode: self.encode.snapshot(), decode: self.decode.snapshot() }
    }
}

/// Serializable snapshot of a [`StageTelemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodecStageReport {
    /// Encode-direction stage stats.
    pub encode: DirectionStats,
    /// Decode-direction stage stats.
    pub decode: DirectionStats,
}

impl CodecStageReport {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &CodecStageReport) {
        self.encode.merge(&other.encode);
        self.decode.merge(&other.decode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_all_fields() {
        let tel = StageTelemetry::new();
        let t0 = Instant::now();
        tel.encode.snappy.record(t0, 100, 40);
        tel.encode.snappy.record(t0, 50, 20);
        let snap = tel.snapshot();
        assert_eq!(snap.encode.snappy.calls, 2);
        assert_eq!(snap.encode.snappy.bytes_in, 150);
        assert_eq!(snap.encode.snappy.bytes_out, 60);
        assert_eq!(snap.decode.snappy, StageStats::default());
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = CodecStageReport::default();
        let mut b = CodecStageReport::default();
        a.decode.delta = StageStats { calls: 1, ns: 10, bytes_in: 2, bytes_out: 3 };
        b.decode.delta = StageStats { calls: 4, ns: 40, bytes_in: 5, bytes_out: 6 };
        a.merge(&b);
        assert_eq!(a.decode.delta, StageStats { calls: 5, ns: 50, bytes_in: 7, bytes_out: 9 });
        assert_eq!(a.decode.total_ns(), 50);
    }

    #[test]
    fn shared_across_threads_counts_every_record() {
        use std::sync::Arc;
        let tel = Arc::new(StageTelemetry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let tel = Arc::clone(&tel);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    tel.decode.huffman.record(Instant::now(), 8, 16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.decode.huffman.calls, 400);
        assert_eq!(snap.decode.huffman.bytes_out, 6400);
    }
}
