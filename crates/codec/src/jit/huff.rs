//! Compiled two-level Huffman dispatch for `FlatDecoder` (x86-64 only).
//!
//! The scalar decoder pays a function-call round trip and a refill branch
//! per symbol. The compiled loop keeps the whole decode state in
//! registers — bit cursor, 64-bit MSB-aligned window, output cursor — and
//! inlines the refill: while at least 64 bits remain past the window it
//! loads 8 bytes, `bswap`s them MSB-first, and splices in 48 whole bits
//! (whole bytes only, so the "next load is byte-aligned" invariant the
//! scalar refill relies on is preserved).
//!
//! **Fallback ladder.** The compiled loop only runs the *easy* region of
//! the stream:
//!
//! - fewer than 64 bits left past the window → exit with
//!   [`STATUS_TAIL`]; the wrapper resumes the scalar decoder at the saved
//!   bit position for the tail (and all its end-of-stream error cases);
//! - an invalid window (length 0) → exit with [`STATUS_BAIL`]; the
//!   wrapper re-runs the *entire* decode through the scalar path, which
//!   deterministically reproduces the exact `CodecError` — the compiled
//!   code never fabricates error payloads.
//!
//! Symbols decoded in the easy region are bit-identical to the scalar
//! decoder's: with ≥ 15 buffered bits every window bit is a real stream
//! bit, so the zero-padding the scalar peek applies near end-of-stream
//! never matters here.

use super::asm::reg::{R10, R12, R13, R14, R15, R8, R9, RAX, RBX, RCX, RDI, RDX, RSI};
use super::asm::{Alu, Asm, Cc, Mem};
use super::exec::ExecBuf;
use super::JitError;

/// The compiled loop ran out of easy stream; `pos`/`out_len` are valid
/// and the scalar tail takes over from there.
pub const STATUS_TAIL: u64 = 2;
/// The compiled loop hit a condition the scalar path must diagnose;
/// all partial state is discarded and the decode re-runs scalar.
pub const STATUS_BAIL: u64 = 1;

/// In/out state for a compiled Huffman decode. The emitted code addresses
/// fields by `offset_of`, so the layout must stay `repr(C)`.
#[repr(C)]
pub struct HuffState {
    /// Input byte stream base.
    pub in_ptr: *const u8,
    /// Valid bits in the stream.
    pub bit_len: u64,
    /// Next unconsumed bit (updated on exit).
    pub pos: u64,
    /// `FlatDecoder::entries` base, passed per call so a cloned decoder
    /// never executes against a stale table.
    pub entries: *const u8,
    /// Output buffer base (capacity guaranteed by the wrapper).
    pub out_ptr: *mut u8,
    /// Symbols written so far (updated on exit).
    pub out_len: u64,
    /// Symbol budget for the `decode_exact` variant (ignored by `decode_all`).
    pub expected: u64,
    /// [`STATUS_TAIL`] or [`STATUS_BAIL`] on return.
    pub status: u64,
}

type Entry = unsafe extern "C" fn(*mut HuffState);

/// A published compiled dispatch: one `ExecBuf` holding both loop
/// variants.
#[derive(Debug)]
pub struct HuffJit {
    buf: ExecBuf,
    off_all: usize,
    off_exact: usize,
}

/// Byte offsets of the `(symbol, length)` fields inside a `(u8, u8)`
/// tuple element. `repr(Rust)` leaves this unspecified, so probe it.
fn tuple_offsets() -> (i32, i32) {
    assert_eq!(std::mem::size_of::<(u8, u8)>(), 2, "entry stride");
    let probe: (u8, u8) = (0, 0);
    let base = std::ptr::addr_of!(probe) as usize;
    let off_sym = std::ptr::addr_of!(probe.0) as usize - base;
    let off_len = std::ptr::addr_of!(probe.1) as usize - base;
    (off_sym as i32, off_len as i32)
}

#[allow(clippy::cast_possible_truncation)]
fn field(off: usize) -> i32 {
    off as i32
}

/// Emits one decode-loop variant. Register map (no calls, so caller-saved
/// registers are free without spills):
/// `rbx`=state `r12`=entries `r13`=out `r14`=in `r15`=out_len
/// `rdi`=pos `rsi`=window `r8`=window bits `r9`=bit_len `r10`=expected.
fn emit_variant(a: &mut Asm, exact: bool) {
    use std::mem::offset_of;
    let (off_sym, off_len) = tuple_offsets();

    for r in [RBX, R12, R13, R14, R15] {
        a.push(r);
    }
    a.mov_rr(RBX, RDI);
    a.load(R14, Mem::base(RBX, field(offset_of!(HuffState, in_ptr))));
    a.load(R9, Mem::base(RBX, field(offset_of!(HuffState, bit_len))));
    a.load(R12, Mem::base(RBX, field(offset_of!(HuffState, entries))));
    a.load(R13, Mem::base(RBX, field(offset_of!(HuffState, out_ptr))));
    a.load(R15, Mem::base(RBX, field(offset_of!(HuffState, out_len))));
    a.load(RDI, Mem::base(RBX, field(offset_of!(HuffState, pos))));
    if exact {
        a.load(R10, Mem::base(RBX, field(offset_of!(HuffState, expected))));
    }
    a.zero(RSI);
    a.zero(R8);

    let mut tail_jumps = Vec::new();
    let mut bail_jumps = Vec::new();

    let top = a.here();
    if exact {
        a.alu_rr(Alu::Cmp, R15, R10);
        tail_jumps.push(a.jcc_rel32(Cc::Ae));
    }
    // Refill when fewer than MAX_CODE_LEN bits are buffered.
    a.alu_ri(Alu::Cmp, R8, 15);
    let have_bits = a.jcc_rel32(Cc::Ae);
    {
        // next = pos + buffered; need >= 64 bits past it to refill fast.
        a.mov_rr(RAX, RDI);
        a.alu_rr(Alu::Add, RAX, R8);
        a.mov_rr(RDX, R9);
        a.alu_rr(Alu::Sub, RDX, RAX);
        a.alu_ri(Alu::Cmp, RDX, 64);
        tail_jumps.push(a.jcc_rel32(Cc::B));
        // Splice in the top 48 bits of the next 8 bytes (whole bytes only,
        // keeping `pos + buffered` byte-aligned for the scalar refill).
        a.shr_ri(RAX, 3);
        a.load(RDX, Mem::index(R14, RAX, 0, 0));
        a.bswap(RDX);
        a.mov_ri(RAX, 0xFFFF_FFFF_FFFF_0000);
        a.alu_rr(Alu::And, RDX, RAX);
        a.mov_rr(RCX, R8);
        a.shr_cl(RDX);
        a.alu_rr(Alu::Or, RSI, RDX);
        a.alu_ri(Alu::Add, R8, 48);
    }
    let decode = a.here();
    a.patch_rel32(have_bits, decode);
    // window = top 15 bits; entry = entries[window].
    a.mov_rr(RDX, RSI);
    a.shr_ri(RDX, 49);
    a.load8_zx(RAX, Mem::index(R12, RDX, 1, off_len));
    a.test_rr(RAX, RAX);
    bail_jumps.push(a.jcc_rel32(Cc::E));
    a.load8_zx(RCX, Mem::index(R12, RDX, 1, off_sym));
    a.store8(Mem::index(R13, R15, 0, 0), RCX);
    a.alu_ri(Alu::Add, R15, 1);
    // Consume the code: len <= 15 <= buffered, always inline.
    a.mov32_rr(RCX, RAX);
    a.shl_cl(RSI);
    a.alu_rr(Alu::Sub, R8, RAX);
    a.alu_rr(Alu::Add, RDI, RAX);
    let back = a.jmp_rel32();
    a.patch_rel32(back, top);

    let tail = a.here();
    for j in tail_jumps {
        a.patch_rel32(j, tail);
    }
    #[allow(clippy::cast_possible_truncation)]
    a.store_imm(Mem::base(RBX, field(offset_of!(HuffState, status))), STATUS_TAIL as i32);
    let to_epilogue = a.jmp_rel32();

    let bail = a.here();
    for j in bail_jumps {
        a.patch_rel32(j, bail);
    }
    #[allow(clippy::cast_possible_truncation)]
    a.store_imm(Mem::base(RBX, field(offset_of!(HuffState, status))), STATUS_BAIL as i32);

    let epilogue = a.here();
    a.patch_rel32(to_epilogue, epilogue);
    a.store(Mem::base(RBX, field(offset_of!(HuffState, pos))), RDI);
    a.store(Mem::base(RBX, field(offset_of!(HuffState, out_len))), R15);
    for r in [R15, R14, R13, R12, RBX] {
        a.pop(r);
    }
    a.ret();
}

impl HuffJit {
    /// Lowers and publishes both decode-loop variants.
    ///
    /// # Errors
    /// [`JitError`] when the pages cannot be published (the caller falls
    /// back to the scalar decoder).
    pub fn compile() -> Result<HuffJit, JitError> {
        let mut a = Asm::new();
        let off_all = a.here();
        emit_variant(&mut a, false);
        let off_exact = a.here();
        emit_variant(&mut a, true);
        let buf = ExecBuf::publish(a.bytes())?;
        Ok(HuffJit { buf, off_all, off_exact })
    }

    /// Machine-code bytes published.
    pub fn code_bytes(&self) -> usize {
        self.buf.code_len()
    }

    /// Runs the `decode_all` loop variant.
    ///
    /// # Safety
    /// `st` must describe live buffers: `in_ptr` valid for
    /// `bit_len.div_ceil(8)` readable bytes **and** readable through the
    /// containing 8-byte load window whenever ≥ 64 bits remain; `entries`
    /// valid for `2 << 15` bytes; `out_ptr` valid for writes up to the
    /// wrapper-guaranteed symbol capacity.
    pub unsafe fn run_all(&self, st: &mut HuffState) {
        let f: Entry = std::mem::transmute::<usize, Entry>(self.buf.addr_of(self.off_all));
        f(st);
    }

    /// Runs the `decode_exact` loop variant (stops at `st.expected`).
    ///
    /// # Safety
    /// As [`Self::run_all`], with `out_ptr` valid for at least
    /// `st.expected` bytes.
    pub unsafe fn run_exact(&self, st: &mut HuffState) {
        let f: Entry = std::mem::transmute::<usize, Entry>(self.buf.addr_of(self.off_exact));
        f(st);
    }
}
