//! JIT infrastructure shared by the codec and UDP tiers.
//!
//! Three pieces live here because `recode-udp` depends on `recode-codec`
//! and both tiers lower to the same substrate:
//!
//! - [`exec`]: W^X-managed executable pages (`ExecBuf`) with raw
//!   `mmap`/`mprotect` syscalls, page accounting, and a typed protection
//!   enum that cannot express writable+executable.
//! - [`asm`]: a minimal x86-64 encoder emitting position-independent
//!   machine code into a plain `Vec<u8>`.
//! - [`huff`]: the compiled two-level Huffman dispatch for
//!   `FlatDecoder` (x86-64 only).
//!
//! The whole tier is *optional*: every compiled entry point has a scalar
//! Rust twin that remains the semantic source of truth, and
//! [`enabled()`] gates dispatch at runtime via `RECODE_NO_JIT=1`.

pub mod asm;
pub mod exec;
#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
pub mod huff;

pub use exec::{ExecBuf, JitError};

/// True when this build can emit native code at all: x86-64 Linux, not
/// under Miri (which interprets MIR and cannot run machine code).
#[must_use]
pub const fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux", not(miri)))
}

/// True when the JIT tier should be used: the platform supports it and
/// the `RECODE_NO_JIT=1` escape hatch is not set.
///
/// The environment is consulted exactly once per process — `Lane::run`
/// and `FlatDecoder::decode_*` sit on allocation-free hot paths, and
/// `std::env::var` allocates.
#[must_use]
pub fn enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        supported() && !std::env::var("RECODE_NO_JIT").is_ok_and(|v| v.trim() == "1")
    })
}

/// A completed (or failed) JIT compilation, reported through the
/// process-wide hook so the flight recorder can turn it into an
/// `EventKind::JitCompile` span without this crate depending on the
/// recorder.
#[derive(Debug, Clone, Copy)]
pub struct CompileEvent {
    /// What was lowered: `"huffman"` or `"lane"`.
    pub what: &'static str,
    /// Machine-code bytes published (0 on failure).
    pub code_bytes: usize,
    /// Blocks (lane) or dispatch entries (huffman) lowered.
    pub blocks: usize,
    /// Wall time of the lowering + publish, in nanoseconds.
    pub wall_ns: u64,
    /// False when the compile failed and the tier fell back to the
    /// interpreter.
    pub ok: bool,
}

static COMPILE_HOOK: std::sync::OnceLock<fn(&CompileEvent)> = std::sync::OnceLock::new();

/// Installs the process-wide compile-event hook (first caller wins;
/// returns whether this call installed it).
pub fn set_compile_hook(hook: fn(&CompileEvent)) -> bool {
    COMPILE_HOOK.set(hook).is_ok()
}

/// Reports a compile to the hook, if one is installed.
pub fn report_compile(ev: &CompileEvent) {
    if let Some(h) = COMPILE_HOOK.get() {
        h(ev);
    }
}

/// 64-bit FNV-1a over a byte stream — the digest used to pin compiled
/// artifacts to the exact bytes they were lowered from. Not
/// cryptographic; it detects tampering and staleness, not adversaries
/// (the W^X page protection is the integrity boundary).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a `u128` word table (little-endian bytes), for pinning a
/// lane-program JIT artifact to the image words it was compiled from.
#[must_use]
pub fn fnv1a_words(words: &[u128]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for &b in &w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a_words(&[1]), fnv1a_words(&[2]));
        let w = [0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128];
        assert_eq!(fnv1a_words(&w), fnv1a(&w[0].to_le_bytes()));
    }
}
