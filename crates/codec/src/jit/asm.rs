//! A minimal x86-64 instruction emitter for the JIT tier.
//!
//! Deliberately tiny: only the encodings the two lowerings (lane programs,
//! Huffman dispatch) need, every memory operand in the uniform
//! `[base + index*scale + disp32]` mod=10 form (a byte or two larger than
//! optimal, but one code path and no special cases besides the
//! architectural RSP/R12 SIB and index≠RSP rules).
//!
//! Emitted code is position-independent: intra-buffer control flow uses
//! rel32 jumps patched via [`Asm::patch_rel32`], and host addresses
//! (helper functions) are materialized with `movabs` before an indirect
//! call, so a buffer can be staged in a `Vec` and copied into executable
//! pages unchanged.

/// One of the 16 general-purpose registers, by hardware number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u8);

/// Register constants (hardware numbering).
pub mod reg {
    use super::Reg;
    pub const RAX: Reg = Reg(0);
    pub const RCX: Reg = Reg(1);
    pub const RDX: Reg = Reg(2);
    pub const RBX: Reg = Reg(3);
    pub const RSP: Reg = Reg(4);
    pub const RBP: Reg = Reg(5);
    pub const RSI: Reg = Reg(6);
    pub const RDI: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);
}

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy)]
pub struct Mem {
    base: Reg,
    /// `(index, scale_shift)` — scale is `1 << scale_shift`.
    index: Option<(Reg, u8)>,
    disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base(base: Reg, disp: i32) -> Mem {
        Mem { base, index: None, disp }
    }

    /// `[base + index*(1<<scale_shift) + disp]`. `index` must not be RSP
    /// (architecturally unencodable).
    pub fn index(base: Reg, index: Reg, scale_shift: u8, disp: i32) -> Mem {
        assert!(index != reg::RSP, "rsp cannot be an index register");
        assert!(scale_shift <= 3, "scale is 1/2/4/8");
        Mem { base, index: Some((index, scale_shift)), disp }
    }
}

/// Two-operand ALU operations sharing the `op r/m, r` / `81 /n` encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    Add,
    Or,
    And,
    Sub,
    Xor,
    Cmp,
}

impl Alu {
    /// Opcode for `op r/m64, r64`.
    fn mr_opcode(self) -> u8 {
        match self {
            Alu::Add => 0x01,
            Alu::Or => 0x09,
            Alu::And => 0x21,
            Alu::Sub => 0x29,
            Alu::Xor => 0x31,
            Alu::Cmp => 0x39,
        }
    }

    /// `/n` extension for the `81` imm32 form.
    fn imm_ext(self) -> u8 {
        match self {
            Alu::Add => 0,
            Alu::Or => 1,
            Alu::And => 4,
            Alu::Sub => 5,
            Alu::Xor => 6,
            Alu::Cmp => 7,
        }
    }
}

/// Condition codes for `jcc` (hardware `cc` field values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cc {
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Unsigned below.
    B = 0x2,
    /// Unsigned above or equal.
    Ae = 0x3,
    /// Unsigned above.
    A = 0x7,
    /// Unsigned below or equal.
    Be = 0x6,
    /// Signed less.
    L = 0xC,
    /// Signed greater or equal.
    Ge = 0xD,
    /// Sign set (negative).
    S = 0x8,
}

/// The instruction buffer.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<u8>,
}

impl Asm {
    /// Fresh empty buffer.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current offset — a label for later jumps/patches.
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// The emitted bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.code
    }

    /// Consumes the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.code
    }

    fn u8(&mut self, b: u8) {
        self.code.push(b);
    }

    fn i32le(&mut self, v: i32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix for operand size `w` and extension bits taken from the
    /// high bit of each register number. Emitted only when non-trivial
    /// (or forced by the caller passing `w = true`).
    fn rex(&mut self, w: bool, r: u8, x: u8, b: u8) {
        let byte = 0x40 | u8::from(w) << 3 | (r >> 3) << 2 | (x >> 3) << 1 | (b >> 3);
        if byte != 0x40 {
            self.u8(byte);
        }
    }

    /// ModRM + SIB + disp32 for `reg_field` against memory operand `m`
    /// (always the mod=10 disp32 form).
    fn modrm_mem(&mut self, reg_field: u8, m: Mem) {
        let reg = reg_field & 7;
        match m.index {
            None if m.base.0 & 7 != 4 => {
                self.u8(0x80 | reg << 3 | (m.base.0 & 7));
            }
            None => {
                // RSP/R12 base needs a SIB with "no index".
                self.u8(0x80 | reg << 3 | 4);
                self.u8(4 << 3 | (m.base.0 & 7));
            }
            Some((idx, scale)) => {
                self.u8(0x80 | reg << 3 | 4);
                self.u8(scale << 6 | (idx.0 & 7) << 3 | (m.base.0 & 7));
            }
        }
        self.i32le(m.disp);
    }

    fn mem_rex(&mut self, w: bool, reg_field: u8, m: Mem) {
        let x = m.index.map_or(0, |(i, _)| i.0);
        self.rex(w, reg_field, x, m.base.0);
    }

    // ---- moves ----------------------------------------------------------

    /// `mov dst, imm` — sign-extended imm32 when it fits, else movabs.
    pub fn mov_ri(&mut self, dst: Reg, imm: u64) {
        if let Ok(v) = i32::try_from(imm as i64) {
            self.rex(true, 0, 0, dst.0);
            self.u8(0xC7);
            self.u8(0xC0 | (dst.0 & 7));
            self.i32le(v);
        } else {
            self.rex(true, 0, 0, dst.0);
            self.u8(0xB8 | (dst.0 & 7));
            self.code.extend_from_slice(&imm.to_le_bytes());
        }
    }

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(true, src.0, 0, dst.0);
        self.u8(0x89);
        self.u8(0xC0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `mov dst32, src32` — zero-extends into the full register.
    pub fn mov32_rr(&mut self, dst: Reg, src: Reg) {
        self.rex(false, src.0, 0, dst.0);
        self.u8(0x89);
        self.u8(0xC0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `mov dst, qword [m]`.
    pub fn load(&mut self, dst: Reg, m: Mem) {
        self.mem_rex(true, dst.0, m);
        self.u8(0x8B);
        self.modrm_mem(dst.0, m);
    }

    /// `mov dst32, dword [m]` — zero-extends.
    pub fn load32(&mut self, dst: Reg, m: Mem) {
        self.mem_rex(false, dst.0, m);
        self.u8(0x8B);
        self.modrm_mem(dst.0, m);
    }

    /// `movzx dst, word [m]`.
    pub fn load16_zx(&mut self, dst: Reg, m: Mem) {
        self.mem_rex(true, dst.0, m);
        self.u8(0x0F);
        self.u8(0xB7);
        self.modrm_mem(dst.0, m);
    }

    /// `movzx dst, byte [m]`.
    pub fn load8_zx(&mut self, dst: Reg, m: Mem) {
        self.mem_rex(true, dst.0, m);
        self.u8(0x0F);
        self.u8(0xB6);
        self.modrm_mem(dst.0, m);
    }

    /// `mov qword [m], src`.
    pub fn store(&mut self, m: Mem, src: Reg) {
        self.mem_rex(true, src.0, m);
        self.u8(0x89);
        self.modrm_mem(src.0, m);
    }

    /// `mov dword [m], src32`.
    pub fn store32(&mut self, m: Mem, src: Reg) {
        self.mem_rex(false, src.0, m);
        self.u8(0x89);
        self.modrm_mem(src.0, m);
    }

    /// `mov word [m], src16`.
    pub fn store16(&mut self, m: Mem, src: Reg) {
        self.u8(0x66);
        self.mem_rex(false, src.0, m);
        self.u8(0x89);
        self.modrm_mem(src.0, m);
    }

    /// `mov byte [m], src8`. Without a REX prefix only AL/CL/DL/BL encode;
    /// the assert keeps the emitter honest.
    pub fn store8(&mut self, m: Mem, src: Reg) {
        assert!(src.0 < 4 || src.0 >= 8, "8-bit store needs al/cl/dl/bl or r8b+");
        self.mem_rex(false, src.0, m);
        self.u8(0x88);
        self.modrm_mem(src.0, m);
    }

    /// `mov qword [m], imm32` (sign-extended).
    pub fn store_imm(&mut self, m: Mem, imm: i32) {
        self.mem_rex(true, 0, m);
        self.u8(0xC7);
        self.modrm_mem(0, m);
        self.i32le(imm);
    }

    // ---- ALU -------------------------------------------------------------

    /// `op dst, src` (64-bit, `dst` is the destination/left operand).
    pub fn alu_rr(&mut self, op: Alu, dst: Reg, src: Reg) {
        self.rex(true, src.0, 0, dst.0);
        self.u8(op.mr_opcode());
        self.u8(0xC0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `op dst32, src32` (32-bit, wraps — used for dispatch-base adds).
    pub fn alu32_rr(&mut self, op: Alu, dst: Reg, src: Reg) {
        self.rex(false, src.0, 0, dst.0);
        self.u8(op.mr_opcode());
        self.u8(0xC0 | (src.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `op dst, imm32` (sign-extended to 64 bits).
    pub fn alu_ri(&mut self, op: Alu, dst: Reg, imm: i32) {
        self.rex(true, 0, 0, dst.0);
        self.u8(0x81);
        self.u8(0xC0 | op.imm_ext() << 3 | (dst.0 & 7));
        self.i32le(imm);
    }

    /// `op dst32, imm32` (32-bit, wraps).
    pub fn alu32_ri(&mut self, op: Alu, dst: Reg, imm: i32) {
        self.rex(false, 0, 0, dst.0);
        self.u8(0x81);
        self.u8(0xC0 | op.imm_ext() << 3 | (dst.0 & 7));
        self.i32le(imm);
    }

    /// `op dst, qword [m]`.
    pub fn alu_rm(&mut self, op: Alu, dst: Reg, m: Mem) {
        self.mem_rex(true, dst.0, m);
        self.u8(op.mr_opcode() | 0x02);
        self.modrm_mem(dst.0, m);
    }

    /// `op qword [m], src`.
    pub fn alu_mr(&mut self, op: Alu, m: Mem, src: Reg) {
        self.mem_rex(true, src.0, m);
        self.u8(op.mr_opcode());
        self.modrm_mem(src.0, m);
    }

    /// `op qword [m], imm32` (sign-extended).
    pub fn alu_mi(&mut self, op: Alu, m: Mem, imm: i32) {
        self.mem_rex(true, 0, m);
        self.u8(0x81);
        self.modrm_mem(op.imm_ext(), m);
        self.i32le(imm);
    }

    /// `inc qword [m]`.
    pub fn inc_m(&mut self, m: Mem) {
        self.mem_rex(true, 0, m);
        self.u8(0xFF);
        self.modrm_mem(0, m);
    }

    /// `test a, b` (64-bit AND, flags only).
    pub fn test_rr(&mut self, a: Reg, b: Reg) {
        self.rex(true, b.0, 0, a.0);
        self.u8(0x85);
        self.u8(0xC0 | (b.0 & 7) << 3 | (a.0 & 7));
    }

    /// `xor dst32, dst32` — the canonical zeroing idiom.
    pub fn zero(&mut self, dst: Reg) {
        self.rex(false, dst.0, 0, dst.0);
        self.u8(0x31);
        self.u8(0xC0 | (dst.0 & 7) << 3 | (dst.0 & 7));
    }

    /// `lea dst, [m]`.
    pub fn lea(&mut self, dst: Reg, m: Mem) {
        self.mem_rex(true, dst.0, m);
        self.u8(0x8D);
        self.modrm_mem(dst.0, m);
    }

    // ---- shifts ----------------------------------------------------------

    /// `shl dst, imm8`.
    pub fn shl_ri(&mut self, dst: Reg, amount: u8) {
        self.rex(true, 0, 0, dst.0);
        self.u8(0xC1);
        self.u8(0xC0 | 4 << 3 | (dst.0 & 7));
        self.u8(amount);
    }

    /// `shr dst, imm8`.
    pub fn shr_ri(&mut self, dst: Reg, amount: u8) {
        self.rex(true, 0, 0, dst.0);
        self.u8(0xC1);
        self.u8(0xC0 | 5 << 3 | (dst.0 & 7));
        self.u8(amount);
    }

    /// `shl dst, cl`.
    pub fn shl_cl(&mut self, dst: Reg) {
        self.rex(true, 0, 0, dst.0);
        self.u8(0xD3);
        self.u8(0xC0 | 4 << 3 | (dst.0 & 7));
    }

    /// `shr dst, cl`.
    pub fn shr_cl(&mut self, dst: Reg) {
        self.rex(true, 0, 0, dst.0);
        self.u8(0xD3);
        self.u8(0xC0 | 5 << 3 | (dst.0 & 7));
    }

    /// `shl qword [m], cl`.
    pub fn shl_m_cl(&mut self, m: Mem) {
        self.mem_rex(true, 0, m);
        self.u8(0xD3);
        self.modrm_mem(4, m);
    }

    /// `bswap dst` (64-bit byte reversal — big-endian bit-stream loads).
    pub fn bswap(&mut self, dst: Reg) {
        self.rex(true, 0, 0, dst.0);
        self.u8(0x0F);
        self.u8(0xC8 | (dst.0 & 7));
    }

    // ---- control flow ----------------------------------------------------

    /// `push r`.
    pub fn push(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.0);
        self.u8(0x50 | (r.0 & 7));
    }

    /// `pop r`.
    pub fn pop(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.0);
        self.u8(0x58 | (r.0 & 7));
    }

    /// `sub rsp, imm8` (stack alignment).
    pub fn sub_rsp(&mut self, imm: u8) {
        self.u8(0x48);
        self.u8(0x83);
        self.u8(0xEC);
        self.u8(imm);
    }

    /// `add rsp, imm8`.
    pub fn add_rsp(&mut self, imm: u8) {
        self.u8(0x48);
        self.u8(0x83);
        self.u8(0xC4);
        self.u8(imm);
    }

    /// `call r` (indirect).
    pub fn call_r(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.0);
        self.u8(0xFF);
        self.u8(0xC0 | 2 << 3 | (r.0 & 7));
    }

    /// `jmp r` (indirect).
    pub fn jmp_r(&mut self, r: Reg) {
        self.rex(false, 0, 0, r.0);
        self.u8(0xFF);
        self.u8(0xC0 | 4 << 3 | (r.0 & 7));
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.u8(0xC3);
    }

    /// `jmp rel32` with a zero placeholder; returns the offset of the
    /// rel32 field for [`Asm::patch_rel32`].
    pub fn jmp_rel32(&mut self) -> usize {
        self.u8(0xE9);
        let at = self.here();
        self.i32le(0);
        at
    }

    /// `jcc rel32` with a zero placeholder; returns the rel32 field offset.
    pub fn jcc_rel32(&mut self, cc: Cc) -> usize {
        self.u8(0x0F);
        self.u8(0x80 | cc as u8);
        let at = self.here();
        self.i32le(0);
        at
    }

    /// Points the rel32 field at `field_off` to the instruction at
    /// `target` (both buffer offsets).
    pub fn patch_rel32(&mut self, field_off: usize, target: usize) {
        let rel = i32::try_from(target as i64 - (field_off as i64 + 4))
            .expect("jump displacement fits rel32");
        self.code[field_off..field_off + 4].copy_from_slice(&rel.to_le_bytes());
    }

    /// `movabs rax, addr; call rax` — the helper-call idiom. Clobbers RAX
    /// (and, per the SysV ABI, all caller-saved registers).
    pub fn call_abs(&mut self, addr: usize) {
        self.rex(true, 0, 0, 0);
        self.u8(0xB8);
        self.code.extend_from_slice(&(addr as u64).to_le_bytes());
        self.call_r(reg::RAX);
    }
}

#[cfg(test)]
mod tests {
    use super::reg::*;
    use super::*;

    #[test]
    fn canonical_encodings_match_hand_assembly() {
        let mut a = Asm::new();
        a.load(RAX, Mem::base(R13, 0x10));
        assert_eq!(a.bytes(), &[0x49, 0x8B, 0x85, 0x10, 0, 0, 0]);

        let mut a = Asm::new();
        a.store(Mem::base(R12, 8), RCX);
        assert_eq!(a.bytes(), &[0x49, 0x89, 0x8C, 0x24, 0x08, 0, 0, 0]);

        let mut a = Asm::new();
        a.load8_zx(RDX, Mem::index(R13, RAX, 0, 0));
        assert_eq!(a.bytes(), &[0x49, 0x0F, 0xB6, 0x94, 0x05, 0, 0, 0, 0]);

        let mut a = Asm::new();
        a.load16_zx(RCX, Mem::index(R12, RDX, 1, 0));
        assert_eq!(a.bytes(), &[0x49, 0x0F, 0xB7, 0x8C, 0x54, 0, 0, 0, 0]);

        let mut a = Asm::new();
        a.mov_ri(RAX, 0x2A);
        assert_eq!(a.bytes(), &[0x48, 0xC7, 0xC0, 0x2A, 0, 0, 0]);

        let mut a = Asm::new();
        a.mov_ri(R11, 0x1122_3344_5566_7788);
        assert_eq!(a.bytes(), &[0x49, 0xBB, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    #[test]
    fn emitted_arithmetic_executes_correctly() {
        use crate::jit::exec::ExecBuf;
        // fn(a: u64 /*rdi*/, b: u64 /*rsi*/) -> (a + b*8 - 5) ^ (a >> 3)
        let mut a = Asm::new();
        a.mov_rr(RAX, RDI);
        a.lea(RCX, Mem::index(RAX, RSI, 3, -5));
        a.shr_ri(RAX, 3);
        a.alu_rr(Alu::Xor, RCX, RAX);
        a.mov_rr(RAX, RCX);
        a.ret();
        let buf = ExecBuf::publish(a.bytes()).unwrap();
        // SAFETY: complete SysV function taking two integer args.
        let f: extern "C" fn(u64, u64) -> u64 =
            unsafe { std::mem::transmute::<usize, extern "C" fn(u64, u64) -> u64>(buf.addr_of(0)) };
        for (x, y) in [(0u64, 0u64), (123, 7), (u64::MAX, 1), (1 << 40, 9999)] {
            let want = x.wrapping_add(y.wrapping_mul(8)).wrapping_sub(5) ^ (x >> 3);
            assert_eq!(f(x, y), want, "x={x} y={y}");
        }
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    #[test]
    fn rel32_branches_loop_and_land() {
        use crate::jit::exec::ExecBuf;
        // fn(n: u64) -> sum 1..=n, via a backwards branch.
        let mut a = Asm::new();
        a.zero(RAX);
        a.zero(RCX);
        let top = a.here();
        a.alu_rr(Alu::Cmp, RCX, RDI);
        let done = a.jcc_rel32(Cc::Ae);
        a.alu_ri(Alu::Add, RCX, 1);
        a.alu_rr(Alu::Add, RAX, RCX);
        let back = a.jmp_rel32();
        a.patch_rel32(back, top);
        let end = a.here();
        a.patch_rel32(done, end);
        a.ret();
        let buf = ExecBuf::publish(a.bytes()).unwrap();
        // SAFETY: complete SysV function, one integer arg.
        let f: extern "C" fn(u64) -> u64 =
            unsafe { std::mem::transmute::<usize, extern "C" fn(u64) -> u64>(buf.addr_of(0)) };
        assert_eq!(f(0), 0);
        assert_eq!(f(10), 55);
        assert_eq!(f(1000), 500_500);
    }
}
