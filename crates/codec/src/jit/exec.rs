//! W^X executable code buffers for the JIT tier.
//!
//! Pages are obtained straight from the kernel (raw `mmap`/`mprotect`/
//! `munmap` syscalls — no new crate dependency) and move through a strict
//! write-xor-execute lifecycle:
//!
//! 1. `mmap(PROT_READ | PROT_WRITE)` — anonymous, private, never executable;
//! 2. the emitted machine code is copied in;
//! 3. `mprotect(PROT_READ | PROT_EXEC)` — the write permission is dropped in
//!    the same call that grants execute.
//!
//! There is no state in which a mapping is writable *and* executable:
//! [`Prot`] has no member carrying both bits, and every protection change
//! funnels through the one private `protect` choke point. Global counters
//! track mapped/unmapped bytes so tests can prove pages are reclaimed when
//! the owning image (or decoder) is dropped.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Why a code buffer could not be published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// The kernel refused the anonymous mapping.
    Map(isize),
    /// The kernel refused the RW→RX protection flip; the mapping was
    /// released before returning (a partial buffer must never leak as
    /// executable-intent memory).
    Protect(isize),
    /// The emitter produced no code, or the lowering refused the input.
    Lowering(String),
    /// A test hook poisoned this publish to exercise the fallback path.
    Poisoned,
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::Map(e) => write!(f, "mmap failed (errno {})", -e),
            JitError::Protect(e) => write!(f, "mprotect failed (errno {})", -e),
            JitError::Lowering(why) => write!(f, "lowering failed: {why}"),
            JitError::Poisoned => write!(f, "publish poisoned by test hook"),
        }
    }
}

impl std::error::Error for JitError {}

/// Page protections a code buffer may hold. Deliberately *not* a bitmask:
/// the type has no representation for `WRITE | EXEC`, so the W^X policy is
/// enforced at the type level rather than by auditing call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prot {
    /// `PROT_READ | PROT_WRITE` — the staging state while code is copied.
    ReadWrite,
    /// `PROT_READ | PROT_EXEC` — the published, immutable state.
    ReadExec,
}

impl Prot {
    fn bits(self) -> usize {
        const PROT_READ: usize = 1;
        const PROT_WRITE: usize = 2;
        const PROT_EXEC: usize = 4;
        match self {
            Prot::ReadWrite => PROT_READ | PROT_WRITE,
            Prot::ReadExec => PROT_READ | PROT_EXEC,
        }
    }
}

/// Executable bytes currently mapped (page-rounded, live buffers only).
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
/// Lifetime count of published buffers.
static PUBLISHED: AtomicU64 = AtomicU64::new(0);
/// Lifetime count of reclaimed (unmapped) buffers.
static RECLAIMED: AtomicU64 = AtomicU64::new(0);
/// Incremented if a protection request ever carried write+exec together.
/// Structurally impossible with [`Prot`]; the counter exists so tests can
/// assert the invariant held for a whole workload.
static WX_VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Executable bytes currently mapped by live [`ExecBuf`]s.
pub fn live_exec_bytes() -> usize {
    LIVE_BYTES.load(Ordering::SeqCst)
}

/// Lifetime number of buffers published.
pub fn published_total() -> u64 {
    PUBLISHED.load(Ordering::SeqCst)
}

/// Lifetime number of buffers reclaimed (unmapped on drop).
pub fn reclaimed_total() -> u64 {
    RECLAIMED.load(Ordering::SeqCst)
}

/// Number of protection requests that carried write and execute at once.
/// Always zero: [`Prot`] cannot express that state.
pub fn wx_violations() -> u64 {
    WX_VIOLATIONS.load(Ordering::SeqCst)
}

/// Remaining `publish` calls to poison (test hook).
static POISON_NEXT: AtomicU64 = AtomicU64::new(0);

/// Test-only fault hook: the next `count` calls to [`ExecBuf::publish`]
/// fail with [`JitError::Poisoned`], exercising the compile-failure →
/// interpreter fallback ladder without needing the kernel to misbehave.
#[doc(hidden)]
pub fn poison_next_publish_for_test(count: u64) {
    POISON_NEXT.store(count, Ordering::SeqCst);
}

fn take_poison() -> bool {
    POISON_NEXT.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)).is_ok()
}

const PAGE: usize = 4096;

#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
mod sys {
    use std::arch::asm;

    /// One raw Linux syscall. Returns the kernel's raw result (negative
    /// errno on failure).
    ///
    /// # Safety
    /// The caller must pass argument values valid for syscall `n`; this
    /// wrapper adds no checking of its own.
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    const SYS_MMAP: usize = 9;
    const SYS_MPROTECT: usize = 10;
    const SYS_MUNMAP: usize = 11;
    const MAP_PRIVATE: usize = 0x02;
    const MAP_ANONYMOUS: usize = 0x20;

    /// Anonymous private mapping of `len` bytes with protection `prot`.
    pub(super) fn mmap_anon(len: usize, prot: usize) -> isize {
        // SAFETY: anonymous MAP_PRIVATE mapping at a kernel-chosen address;
        // no existing memory is affected, fd is unused (-1).
        unsafe { syscall6(SYS_MMAP, 0, len, prot, MAP_PRIVATE | MAP_ANONYMOUS, usize::MAX, 0) }
    }

    /// Changes the protection of `[addr, addr + len)`.
    ///
    /// # Safety
    /// `addr..addr + len` must be a mapping this process owns (created by
    /// [`mmap_anon`]) and no reference into it may be live across a
    /// permission downgrade.
    pub(super) unsafe fn mprotect(addr: usize, len: usize, prot: usize) -> isize {
        syscall6(SYS_MPROTECT, addr, len, prot, 0, 0, 0)
    }

    /// Unmaps `[addr, addr + len)`.
    ///
    /// # Safety
    /// Same ownership requirement as [`mprotect`]; additionally nothing may
    /// execute or read the region afterwards.
    pub(super) unsafe fn munmap(addr: usize, len: usize) -> isize {
        syscall6(SYS_MUNMAP, addr, len, 0, 0, 0, 0)
    }
}

/// A published, immutable, executable code buffer.
///
/// Created through [`ExecBuf::publish`], which performs the full W^X
/// staging sequence; from the moment a value of this type exists its pages
/// are read+execute only, and they stay that way until `Drop` unmaps them.
#[derive(Debug)]
pub struct ExecBuf {
    base: usize,
    /// Page-rounded mapping length.
    map_len: usize,
    /// Bytes of actual code (`<= map_len`).
    code_len: usize,
}

// SAFETY: the buffer is immutable after publish (RX pages, no interior
// mutability) and the raw base pointer is only dereferenced for reads and
// instruction fetch.
unsafe impl Send for ExecBuf {}
// SAFETY: same argument — shared access to immutable pages.
unsafe impl Sync for ExecBuf {}

/// The single protection choke point: converts the typed protection to
/// syscall bits and audits the (structurally impossible) W+X combination.
fn prot_bits(prot: Prot) -> usize {
    let bits = prot.bits();
    if bits & 0x2 != 0 && bits & 0x4 != 0 {
        WX_VIOLATIONS.fetch_add(1, Ordering::SeqCst);
    }
    bits
}

impl ExecBuf {
    /// Maps fresh pages, copies `code` in while they are read+write, then
    /// flips them to read+execute in a single protection change.
    ///
    /// # Errors
    /// [`JitError::Map`]/[`JitError::Protect`] when the kernel refuses;
    /// [`JitError::Lowering`] for an empty buffer. On any error nothing
    /// stays mapped.
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    pub fn publish(code: &[u8]) -> Result<ExecBuf, JitError> {
        if take_poison() {
            return Err(JitError::Poisoned);
        }
        if code.is_empty() {
            return Err(JitError::Lowering("empty code buffer".into()));
        }
        let map_len = code.len().div_ceil(PAGE) * PAGE;
        let base = sys::mmap_anon(map_len, prot_bits(Prot::ReadWrite));
        if base < 0 {
            return Err(JitError::Map(base));
        }
        let base = base as usize;
        // SAFETY: `base..base + map_len` is a fresh private RW mapping owned
        // by us; `code` cannot overlap it.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), base as *mut u8, code.len());
        }
        // SAFETY: our own mapping; no references into it are live.
        let rc = unsafe { sys::mprotect(base, map_len, prot_bits(Prot::ReadExec)) };
        if rc < 0 {
            // SAFETY: releasing the mapping we just created.
            unsafe { sys::munmap(base, map_len) };
            return Err(JitError::Protect(rc));
        }
        LIVE_BYTES.fetch_add(map_len, Ordering::SeqCst);
        PUBLISHED.fetch_add(1, Ordering::SeqCst);
        Ok(ExecBuf { base, map_len, code_len: code.len() })
    }

    /// Unsupported-platform stand-in so callers can compile unconditionally.
    ///
    /// # Errors
    /// Always [`JitError::Lowering`].
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux", not(miri))))]
    pub fn publish(code: &[u8]) -> Result<ExecBuf, JitError> {
        let _ = (code, take_poison());
        Err(JitError::Lowering("JIT tier requires x86-64 Linux".into()))
    }

    /// Absolute address of the code byte at `off`.
    ///
    /// # Panics
    /// If `off` is outside the published code.
    pub fn addr_of(&self, off: usize) -> usize {
        assert!(off < self.code_len, "offset {off} outside {} code bytes", self.code_len);
        self.base + off
    }

    /// Bytes of published code.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// The published code bytes (readable: pages are RX).
    pub fn code(&self) -> &[u8] {
        // SAFETY: `base..base + code_len` is our live R+X mapping; the
        // pages are readable and immutable for the life of `self`.
        unsafe { std::slice::from_raw_parts(self.base as *const u8, self.code_len) }
    }

    /// Test-only tamper hook: flips one code byte by staging the pages back
    /// through RW and republishing them RX — the buffer is never writable
    /// and executable at once even while being corrupted. Exists so
    /// integrity tests can prove a tampered buffer is caught; hidden from
    /// normal use.
    #[doc(hidden)]
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    pub fn corrupt_byte_for_test(&self, off: usize, xor: u8) {
        assert!(off < self.code_len);
        // SAFETY: our own mapping; the RW window is transient and no
        // execution happens until the RX flip below.
        unsafe {
            let rc = sys::mprotect(self.base, self.map_len, prot_bits(Prot::ReadWrite));
            assert_eq!(rc, 0, "mprotect RW failed");
            let p = (self.base + off) as *mut u8;
            *p ^= xor;
            let rc = sys::mprotect(self.base, self.map_len, prot_bits(Prot::ReadExec));
            assert_eq!(rc, 0, "mprotect RX failed");
        }
    }
}

impl Drop for ExecBuf {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
        // SAFETY: unmapping our own mapping; `Drop` guarantees no further
        // use of the code through `self`.
        unsafe {
            sys::munmap(self.base, self.map_len);
        }
        LIVE_BYTES.fetch_sub(self.map_len, Ordering::SeqCst);
        RECLAIMED.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux", not(miri)))]
mod tests {
    use super::*;

    #[test]
    fn publish_executes_and_reclaims() {
        let before = live_exec_bytes();
        // mov eax, 0x2a; ret
        let buf = ExecBuf::publish(&[0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3]).unwrap();
        assert!(live_exec_bytes() >= before + PAGE);
        let f: extern "C" fn() -> u32 =
            // SAFETY: the buffer holds a complete SysV-ABI function with
            // this exact signature.
            unsafe { std::mem::transmute::<usize, extern "C" fn() -> u32>(buf.addr_of(0)) };
        assert_eq!(f(), 0x2A);
        drop(buf);
        assert_eq!(live_exec_bytes(), before, "pages reclaimed on drop");
        assert_eq!(wx_violations(), 0);
    }

    #[test]
    fn empty_code_is_refused() {
        assert!(matches!(ExecBuf::publish(&[]), Err(JitError::Lowering(_))));
    }

    #[test]
    fn published_pages_are_read_exec_in_proc_maps() {
        let buf = ExecBuf::publish(&[0xC3]).unwrap();
        let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
        let line = maps
            .lines()
            .find(|l| {
                let Some((range, _)) = l.split_once(' ') else { return false };
                let Some((lo, hi)) = range.split_once('-') else { return false };
                let lo = usize::from_str_radix(lo, 16).unwrap_or(usize::MAX);
                let hi = usize::from_str_radix(hi, 16).unwrap_or(0);
                lo <= buf.addr_of(0) && buf.addr_of(0) < hi
            })
            .expect("mapping listed in /proc/self/maps");
        let perms = line.split_whitespace().nth(1).unwrap();
        assert_eq!(&perms[..3], "r-x", "published pages must be read+exec, not writable: {line}");
    }
}
