//! Greedy Snappy compressor: hash 4-byte windows, extend matches, emit
//! literal/copy elements.

use super::{TAG_COPY1, TAG_COPY2, TAG_COPY4, TAG_LITERAL};
use crate::varint::write_uvarint;

const HASH_BITS: u32 = 14;
const HASH_TABLE_SIZE: usize = 1 << HASH_BITS;
const MIN_MATCH: usize = 4;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let w = u32::from_le_bytes(data[i..i + 4].try_into().expect("4-byte window"));
    (w.wrapping_mul(0x1e35_a7bd) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` into a fresh buffer (varint preamble + elements).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_uvarint(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }

    // `usize::MAX` marks an empty slot.
    let mut table = vec![usize::MAX; HASH_TABLE_SIZE];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    while i + MIN_MATCH <= data.len() {
        let h = hash4(data, i);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH] {
            // Extend the match as far as it goes.
            let mut len = MIN_MATCH;
            while i + len < data.len() && data[cand + len] == data[i + len] {
                len += 1;
            }
            emit_literal(&mut out, &data[literal_start..i]);
            emit_copy(&mut out, i - cand, len);
            // Seed the table near the match end so back-to-back matches chain.
            let end = i + len;
            if end + MIN_MATCH <= data.len() && end >= 1 {
                table[hash4(data, end - 1)] = end - 1;
            }
            i = end;
            literal_start = end;
        } else {
            i += 1;
        }
    }
    emit_literal(&mut out, &data[literal_start..]);
    out
}

/// Emits one literal element (possibly with extended length bytes).
fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    // The format caps a literal's length field at 2^32; chunking at 2^24
    // keeps the length bytes at most 3 and sidesteps u32 edge cases.
    const CHUNK: usize = 1 << 24;
    let mut rest = lit;
    while !rest.is_empty() {
        let take = rest.len().min(CHUNK);
        let (head, tail) = rest.split_at(take);
        let n = head.len();
        if n <= 60 {
            out.push(TAG_LITERAL | (((n - 1) as u8) << 2));
        } else if n <= 0x100 {
            out.push(TAG_LITERAL | (60 << 2));
            out.push((n - 1) as u8);
        } else if n <= 0x1_0000 {
            out.push(TAG_LITERAL | (61 << 2));
            out.extend_from_slice(&((n - 1) as u16).to_le_bytes());
        } else {
            out.push(TAG_LITERAL | (62 << 2));
            out.extend_from_slice(&((n - 1) as u32).to_le_bytes()[..3]);
        }
        out.extend_from_slice(head);
        rest = tail;
    }
}

/// Emits one or more copy elements covering a match of `len` bytes at
/// distance `offset`.
fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    debug_assert!(offset >= 1);
    debug_assert!(len >= MIN_MATCH);
    // Long matches: peel 64-byte copies while at least 68 remain so the tail
    // never drops below the 4-byte minimum.
    while len >= 68 {
        emit_copy_upto64(out, offset, 64);
        len -= 64;
    }
    if len > 64 {
        emit_copy_upto64(out, offset, 60);
        len -= 60;
    }
    emit_copy_upto64(out, offset, len);
}

fn emit_copy_upto64(out: &mut Vec<u8>, offset: usize, len: usize) {
    debug_assert!((1..=64).contains(&len));
    if (4..=11).contains(&len) && offset < 2048 {
        out.push(TAG_COPY1 | (((len - 4) as u8) << 2) | (((offset >> 8) as u8) << 5));
        out.push((offset & 0xff) as u8);
    } else if offset <= 0xFFFF {
        out.push(TAG_COPY2 | (((len - 1) as u8) << 2));
        out.extend_from_slice(&(offset as u16).to_le_bytes());
    } else {
        out.push(TAG_COPY4 | (((len - 1) as u8) << 2));
        out.extend_from_slice(&(offset as u32).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snappy::decompress;

    #[test]
    fn literal_length_encodings() {
        for n in [1usize, 59, 60, 61, 255, 256, 257, 65_536, 70_000] {
            let data = vec![0x5Au8; 0]
                .into_iter()
                .chain((0..n).map(|i| (i % 251) as u8))
                .collect::<Vec<_>>();
            // Mostly-unique bytes => compressor leans on literals.
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn copy1_is_used_for_short_near_matches() {
        // "abcd" + noise + "abcd" within 2 KB at length 4..11.
        let mut data = b"abcdWXYZ".to_vec();
        data.extend_from_slice(b"abcd");
        let c = compress(&data);
        assert!(c.iter().any(|&b| b & 0b11 == TAG_COPY1), "expected a copy1 element in {c:?}");
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn copy4_is_used_for_far_matches() {
        // A 4+ byte match at distance > 65535.
        let marker = b"MAGICWORD!";
        let mut data = marker.to_vec();
        data.extend((0..70_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8));
        data.extend_from_slice(marker);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn match_lengths_near_chunking_boundaries() {
        for repeat in [64usize, 65, 66, 67, 68, 69, 127, 128, 200] {
            let mut data = b"0123456789abcdef".to_vec();
            data.extend(std::iter::repeat_n(b'q', repeat));
            data.extend_from_slice(b"END");
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data, "repeat={repeat}");
        }
    }
}
