//! Snappy decompressor, hardened against corrupt input. The UDP program in
//! `recode-udp` mirrors this logic instruction-for-instruction; keep the two
//! in sync (tests cross-check them on random corpora).

use super::{TAG_COPY1, TAG_COPY2, TAG_COPY4};
use crate::error::{CodecError, CodecResult};
use crate::varint::read_uvarint;

/// Reads only the uncompressed-length preamble.
///
/// # Errors
/// Varint errors from [`read_uvarint`].
pub fn uncompressed_length(input: &[u8]) -> CodecResult<(usize, usize)> {
    let (len, n) = read_uvarint(input)?;
    let len = usize::try_from(len)
        .map_err(|_| CodecError::Corrupt("declared length exceeds address space".into()))?;
    Ok((len, n))
}

/// Decompresses a complete Snappy stream with the default size cap.
///
/// # Errors
/// [`CodecError`] on any malformed input; never panics.
pub fn decompress(input: &[u8]) -> CodecResult<Vec<u8>> {
    decompress_with_limit(input, super::DEFAULT_MAX_UNCOMPRESSED)
}

/// Decompresses with an explicit cap on the declared uncompressed size.
///
/// # Errors
/// [`CodecError::Corrupt`] if the declared size exceeds `max_len`, plus all
/// the structural errors of the format.
pub fn decompress_with_limit(input: &[u8], max_len: usize) -> CodecResult<Vec<u8>> {
    let (expected, mut pos) = uncompressed_length(input)?;
    if expected > max_len {
        return Err(CodecError::Corrupt(format!(
            "declared uncompressed size {expected} exceeds limit {max_len}"
        )));
    }
    let mut out: Vec<u8> = Vec::with_capacity(expected);

    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        match tag & 0b11 {
            t if t == super::TAG_LITERAL => {
                let len_code = (tag >> 2) as usize;
                let len = if len_code < 60 {
                    len_code + 1
                } else {
                    let nbytes = len_code - 59; // 1..=4 extra length bytes
                    let raw = read_le(input, &mut pos, nbytes, "literal length")?;
                    usize::try_from(raw)
                        .ok()
                        .and_then(|v| v.checked_add(1))
                        .ok_or_else(|| CodecError::Corrupt("literal length overflow".into()))?
                };
                let end = pos
                    .checked_add(len)
                    .ok_or_else(|| CodecError::Corrupt("literal length overflow".into()))?;
                if end > input.len() {
                    return Err(CodecError::Truncated { context: "literal payload" });
                }
                if out.len() + len > expected {
                    return Err(CodecError::Corrupt("output overruns declared size".into()));
                }
                out.extend_from_slice(&input[pos..end]);
                pos = end;
            }
            t if t == TAG_COPY1 => {
                let len = ((tag >> 2) & 0x7) as usize + 4;
                let hi = ((tag >> 5) as usize) << 8;
                let lo = read_le(input, &mut pos, 1, "copy1 offset")? as usize;
                copy_back(&mut out, hi | lo, len, expected)?;
            }
            t if t == TAG_COPY2 => {
                let len = (tag >> 2) as usize + 1;
                let off = read_le(input, &mut pos, 2, "copy2 offset")? as usize;
                copy_back(&mut out, off, len, expected)?;
            }
            t if t == TAG_COPY4 => {
                let len = (tag >> 2) as usize + 1;
                let off = read_le(input, &mut pos, 4, "copy4 offset")? as usize;
                copy_back(&mut out, off, len, expected)?;
            }
            _ => unreachable!("two-bit tag covers all cases"),
        }
    }

    if out.len() != expected {
        return Err(CodecError::LengthMismatch { expected, actual: out.len() });
    }
    Ok(out)
}

/// Reads `nbytes` little-endian from `input` at `*pos`, advancing it.
fn read_le(
    input: &[u8],
    pos: &mut usize,
    nbytes: usize,
    context: &'static str,
) -> CodecResult<u64> {
    if *pos + nbytes > input.len() {
        return Err(CodecError::Truncated { context });
    }
    let mut v = 0u64;
    for k in 0..nbytes {
        v |= (input[*pos + k] as u64) << (8 * k);
    }
    *pos += nbytes;
    Ok(v)
}

/// Appends `len` bytes copied from `offset` back in `out`, with the
/// format's run-extension semantics for overlapping copies (offset < len):
/// bytes appended earlier in the copy are themselves sources for later
/// ones. Instead of pushing byte-by-byte, each pass appends the longest
/// already-materialized prefix in one `extend_from_within` memcpy — the
/// source doubles every pass, so even a maximally overlapping copy costs
/// O(log len) memcpys.
fn copy_back(out: &mut Vec<u8>, offset: usize, len: usize, expected: usize) -> CodecResult<()> {
    if offset == 0 {
        return Err(CodecError::Corrupt("copy offset zero".into()));
    }
    if offset > out.len() {
        return Err(CodecError::Corrupt(format!(
            "copy offset {offset} reaches before the start of output ({} written)",
            out.len()
        )));
    }
    if out.len() + len > expected {
        return Err(CodecError::Corrupt("copy overruns declared size".into()));
    }
    let start = out.len() - offset;
    let mut done = 0usize;
    while done < len {
        let n = (out.len() - (start + done)).min(len - done);
        out.extend_from_within(start + done..start + done + n);
        done += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snappy::compress;

    #[test]
    fn rejects_zero_offset_copy() {
        // varint len=4, then copy1 with offset 0.
        let bad = [4u8, TAG_COPY1, 0x00];
        assert!(matches!(decompress(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn rejects_offset_before_start() {
        // varint len=8, literal "ab", then copy1 len4 offset 5 (> 2 written).
        let bad = [8u8, 0b0000_0100, b'a', b'b', TAG_COPY1, 5];
        assert!(matches!(decompress(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncated_literal() {
        let bad = [10u8, 0b0010_0100, b'x']; // literal of 10, only 1 byte present
        assert!(matches!(decompress(&bad), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn rejects_output_overrun() {
        // Declared 2 bytes but literal provides 3.
        let bad = [2u8, 0b0000_1000, b'a', b'b', b'c'];
        assert!(matches!(decompress(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn rejects_output_underrun() {
        // Declared 5 bytes but only a 2-byte literal arrives.
        let bad = [5u8, 0b0000_0100, b'a', b'b'];
        assert!(matches!(decompress(&bad), Err(CodecError::LengthMismatch { .. })));
    }

    #[test]
    fn rejects_oversize_declaration() {
        let mut bad = Vec::new();
        crate::varint::write_uvarint(&mut bad, u64::MAX / 2);
        assert!(matches!(decompress(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn limit_is_enforced() {
        let data = vec![1u8; 1000];
        let c = compress(&data);
        assert!(decompress_with_limit(&c, 999).is_err());
        assert_eq!(decompress_with_limit(&c, 1000).unwrap(), data);
    }

    #[test]
    fn overlapping_copy_extends_runs() {
        // Hand-built stream: literal 'a', copy offset 1 len 7 => "aaaaaaaa".
        let stream = [8u8, 0b0000_0000, b'a', TAG_COPY1 | (3 << 2), 1];
        assert_eq!(decompress(&stream).unwrap(), b"aaaaaaaa");
    }

    #[test]
    fn garbage_never_panics() {
        // Exhaustive 2-byte inputs plus a pile of longer pseudo-random ones.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let _ = decompress(&[a, b]);
            }
        }
        let mut x = 0x12345678u64;
        for len in 0..64 {
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                buf.push((x >> 33) as u8);
            }
            let _ = decompress(&buf);
        }
    }
}
