//! From-scratch implementation of the Snappy block format.
//!
//! Wire format (after the little-endian varint giving the uncompressed
//! length): a sequence of elements, each starting with a tag byte whose low
//! two bits select the element type:
//!
//! | low bits | element | layout |
//! |---|---|---|
//! | `00` | literal | lengths ≤ 60 inline in the tag; 61–64 tag values add 1–4 little-endian length bytes |
//! | `01` | copy, 1-byte offset | length 4–11 in tag bits 2–4, offset 0–2047 from tag bits 5–7 + one byte |
//! | `10` | copy, 2-byte offset | length 1–64 in tag bits 2–7, 16-bit LE offset |
//! | `11` | copy, 4-byte offset | length 1–64 in tag bits 2–7, 32-bit LE offset |
//!
//! The compressor is a greedy hash-chain matcher in the style of the
//! reference implementation. The decompressor is shared — bit-exactly — with
//! the UDP Snappy program in `recode-udp`, which implements the same
//! element dispatch via the accelerator's 256-way multi-way dispatch.

mod compress;
mod decompress;

pub use compress::compress;
pub use decompress::{decompress, decompress_with_limit, uncompressed_length};

/// Tag low bits.
pub(crate) const TAG_LITERAL: u8 = 0b00;
/// Copy with 1-byte offset.
pub(crate) const TAG_COPY1: u8 = 0b01;
/// Copy with 2-byte offset.
pub(crate) const TAG_COPY2: u8 = 0b10;
/// Copy with 4-byte offset.
pub(crate) const TAG_COPY4: u8 = 0b11;

/// Default cap on the declared uncompressed size accepted by
/// [`decompress`] — prevents a corrupt varint from triggering a huge
/// allocation. Generous compared to the 8–32 KB blocks this workspace uses.
pub const DEFAULT_MAX_UNCOMPRESSED: usize = 1 << 28;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "round trip failed for {} bytes", data.len());
        c
    }

    #[test]
    fn empty_input() {
        let c = round_trip(&[]);
        assert_eq!(c, vec![0x00], "empty stream is just the varint 0");
    }

    #[test]
    fn short_literal_only() {
        let c = round_trip(b"abc");
        // varint 3, literal tag (len 3 -> (3-1)<<2 = 8), payload.
        assert_eq!(c, vec![3, 8, b'a', b'b', b'c']);
    }

    #[test]
    fn repeated_data_compresses() {
        let data = vec![0xABu8; 10_000];
        let c = round_trip(&data);
        // Copy elements cover at most 64 bytes each (~3 wire bytes), so a
        // run costs about 3/64 of its length — same as reference Snappy.
        assert!(c.len() < 600, "run of one byte should crush ~20x, got {}", c.len());
    }

    #[test]
    fn repeating_period_exercises_overlapping_copies() {
        // Period 3 < min match 4 forces overlapping copy semantics.
        let data: Vec<u8> = (0..5000).map(|i| (i % 3) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_round_trips_with_bounded_expansion() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let data: Vec<u8> = (0..100_000).map(|_| rng.gen()).collect();
        let c = round_trip(&data);
        // Snappy guarantees ~ len + len/6 + 32 worst case.
        assert!(c.len() <= data.len() + data.len() / 6 + 32);
    }

    #[test]
    fn structured_data_compresses_well() {
        // Delta-encoded banded index stream look-alike: tiny LE words.
        let mut data = Vec::new();
        for _ in 0..4096 {
            data.extend_from_slice(&2u32.to_le_bytes());
        }
        let c = round_trip(&data);
        assert!(
            (c.len() as f64) < data.len() as f64 * 0.05,
            "repeating words should compress >20x, got {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn long_matches_split_across_copy_elements() {
        // One long literal followed by a 1000-byte match.
        let mut data = vec![0u8; 0];
        let chunk: Vec<u8> = (0..=255u8).cycle().take(1111).collect();
        data.extend_from_slice(&chunk);
        data.extend_from_slice(&chunk);
        round_trip(&data);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        round_trip(&data);
    }

    #[test]
    fn mixed_compressible_and_random_sections() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut data = Vec::new();
        for section in 0..20 {
            if section % 2 == 0 {
                data.extend(std::iter::repeat_n(section as u8, 700));
            } else {
                data.extend((0..700).map(|_| rng.gen::<u8>()));
            }
        }
        round_trip(&data);
    }
}
