//! 8 KB block framing.
//!
//! The paper streams compressed matrices as independent blocks that each
//! decompress back to (at most) 8 KB — one block per UDP lane invocation.
//! Blocks are self-contained (the delta stage restarts per block) so all 64
//! lanes can decode in parallel.

use serde::{Deserialize, Serialize};

/// Fixed per-block framing overhead charged by the size accounting:
/// a 2-byte uncompressed length, a 3-byte payload bit-length and 3 bytes of
/// alignment/sequence bookkeeping, mirroring a realistic DMA descriptor.
pub const BLOCK_HEADER_BYTES: usize = 8;

/// One compressed block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedBlock {
    /// Stage-pipeline output. When a Huffman stage is present this is a
    /// bit-packed stream and `bit_len` counts its valid bits; otherwise
    /// `bit_len == payload.len() * 8`.
    pub payload: Vec<u8>,
    /// Valid bits in `payload`.
    pub bit_len: usize,
    /// Exact byte size this block decodes back to.
    pub uncompressed_len: usize,
}

impl CompressedBlock {
    /// On-wire size of the block including framing.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + BLOCK_HEADER_BYTES
    }
}

/// A sequence of compressed blocks representing one byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStream {
    /// Uncompressed bytes per block (last block may be short).
    pub block_bytes: usize,
    /// The blocks, in stream order.
    pub blocks: Vec<CompressedBlock>,
    /// Total uncompressed size of the stream.
    pub total_uncompressed: usize,
}

impl BlockStream {
    /// Total on-wire size (payloads + per-block framing).
    pub fn wire_bytes(&self) -> usize {
        self.blocks.iter().map(CompressedBlock::wire_bytes).sum()
    }

    /// Compression ratio `uncompressed / wire`.
    pub fn ratio(&self) -> f64 {
        let wire = self.wire_bytes();
        if wire == 0 {
            return 1.0;
        }
        self.total_uncompressed as f64 / wire as f64
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the stream holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Splits `data` into chunks of `block_bytes` (the final chunk may be
/// shorter). A zero-length stream yields no blocks.
pub fn split_blocks(data: &[u8], block_bytes: usize) -> Vec<&[u8]> {
    assert!(block_bytes > 0, "block size must be positive");
    data.chunks(block_bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_input_exactly() {
        let data: Vec<u8> = (0..100u8).collect();
        let blocks = split_blocks(&data, 32);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[3].len(), 4);
        let rejoined: Vec<u8> = blocks.concat();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn empty_stream_has_no_blocks() {
        assert!(split_blocks(&[], 8192).is_empty());
    }

    #[test]
    fn wire_bytes_include_header() {
        let b = CompressedBlock { payload: vec![0; 10], bit_len: 80, uncompressed_len: 100 };
        assert_eq!(b.wire_bytes(), 10 + BLOCK_HEADER_BYTES);
        let s = BlockStream { block_bytes: 8192, blocks: vec![b.clone(), b], total_uncompressed: 200 };
        assert_eq!(s.wire_bytes(), 2 * (10 + BLOCK_HEADER_BYTES));
        assert!((s.ratio() - 200.0 / 36.0).abs() < 1e-12);
    }
}
