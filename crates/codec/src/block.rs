//! 8 KB block framing.
//!
//! The paper streams compressed matrices as independent blocks that each
//! decompress back to (at most) 8 KB — one block per UDP lane invocation.
//! Blocks are self-contained (the delta stage restarts per block) so all 64
//! lanes can decode in parallel.
//!
//! Every block is sealed with a CRC32c over its payload *and* header fields,
//! plus a sequence number identifying its position in the stream. Together
//! they let the decode path detect bit flips, truncation, header corruption,
//! and block drop/duplication/reorder before a corrupted block can poison an
//! SpMV result.

use serde::{Deserialize, Serialize};

use crate::crc32c::Crc32c;
use crate::error::{CodecError, CodecResult};

/// Fixed per-block framing overhead charged by the size accounting:
/// a 2-byte uncompressed length, a 3-byte payload bit-length, 3 bytes of
/// alignment/sequence bookkeeping, and a 4-byte CRC32c — mirroring a
/// realistic DMA descriptor with end-to-end integrity protection.
pub const BLOCK_HEADER_BYTES: usize = 12;

/// One compressed block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedBlock {
    /// Stage-pipeline output. When a Huffman stage is present this is a
    /// bit-packed stream and `bit_len` counts its valid bits; otherwise
    /// `bit_len == payload.len() * 8`.
    pub payload: Vec<u8>,
    /// Valid bits in `payload`.
    pub bit_len: usize,
    /// Exact byte size this block decodes back to.
    pub uncompressed_len: usize,
    /// Position of this block in its stream (0-based).
    pub seq: u32,
    /// CRC32c over payload + header fields (see [`CompressedBlock::compute_checksum`]).
    pub checksum: u32,
}

impl CompressedBlock {
    /// Builds a block and seals it with its checksum.
    pub fn sealed(payload: Vec<u8>, bit_len: usize, uncompressed_len: usize, seq: u32) -> Self {
        let mut b = CompressedBlock { payload, bit_len, uncompressed_len, seq, checksum: 0 };
        b.checksum = b.compute_checksum();
        b
    }

    /// CRC32c over the payload followed by the little-endian header fields
    /// (`bit_len`, `uncompressed_len` as u64, `seq` as u32). Covering the
    /// header means a corrupted length or sequence number is caught even when
    /// the payload bits survive intact.
    pub fn compute_checksum(&self) -> u32 {
        let mut h = Crc32c::new();
        h.update(&self.payload);
        h.update(&(self.bit_len as u64).to_le_bytes());
        h.update(&(self.uncompressed_len as u64).to_le_bytes());
        h.update(&self.seq.to_le_bytes());
        h.finalize()
    }

    /// Recomputes the checksum after a deliberate mutation (encoder use only).
    pub fn reseal(&mut self) {
        self.checksum = self.compute_checksum();
    }

    /// Verifies the stored checksum against the block contents.
    pub fn verify_checksum(&self) -> CodecResult<()> {
        let computed = self.compute_checksum();
        if computed != self.checksum {
            return Err(CodecError::ChecksumMismatch { stored: self.checksum, computed });
        }
        Ok(())
    }

    /// On-wire size of the block including framing.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + BLOCK_HEADER_BYTES
    }
}

/// A sequence of compressed blocks representing one byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStream {
    /// Uncompressed bytes per block (last block may be short).
    pub block_bytes: usize,
    /// The blocks, in stream order.
    pub blocks: Vec<CompressedBlock>,
    /// Total uncompressed size of the stream.
    pub total_uncompressed: usize,
}

impl BlockStream {
    /// Total on-wire size (payloads + per-block framing).
    pub fn wire_bytes(&self) -> usize {
        self.blocks.iter().map(CompressedBlock::wire_bytes).sum()
    }

    /// Compression ratio `uncompressed / wire`.
    pub fn ratio(&self) -> f64 {
        let wire = self.wire_bytes();
        if wire == 0 {
            return 1.0;
        }
        self.total_uncompressed as f64 / wire as f64
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the stream holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of blocks this stream *should* contain given its declared
    /// uncompressed size and block granularity. Deviation means blocks were
    /// dropped or duplicated in transit.
    pub fn expected_blocks(&self) -> CodecResult<usize> {
        if self.block_bytes == 0 {
            return Err(CodecError::Precondition("block size must be positive".into()));
        }
        Ok(self.total_uncompressed.div_ceil(self.block_bytes))
    }

    /// Structural integrity check: block count matches the declared stream
    /// size, every block sits at its claimed sequence position, and every
    /// checksum verifies. Does not decode payloads.
    pub fn verify(&self) -> CodecResult<()> {
        let expected = self.expected_blocks()?;
        if self.blocks.len() != expected {
            return Err(CodecError::BlockCount { expected, actual: self.blocks.len() });
        }
        for (k, b) in self.blocks.iter().enumerate() {
            if b.seq as usize != k {
                return Err(CodecError::BlockSequence { expected: k, found: b.seq as usize });
            }
            b.verify_checksum()?;
        }
        Ok(())
    }
}

/// Splits `data` into chunks of `block_bytes` (the final chunk may be
/// shorter). A zero-length stream yields no blocks. Rejects a zero block
/// size instead of panicking — configs may come from untrusted input.
pub fn split_blocks(data: &[u8], block_bytes: usize) -> CodecResult<Vec<&[u8]>> {
    if block_bytes == 0 {
        return Err(CodecError::Precondition("block size must be positive".into()));
    }
    Ok(data.chunks(block_bytes).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_input_exactly() {
        let data: Vec<u8> = (0..100u8).collect();
        let blocks = split_blocks(&data, 32).unwrap();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[3].len(), 4);
        let rejoined: Vec<u8> = blocks.concat();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn empty_stream_has_no_blocks() {
        assert!(split_blocks(&[], 8192).unwrap().is_empty());
    }

    #[test]
    fn zero_block_size_is_an_error_not_a_panic() {
        let err = split_blocks(&[1, 2, 3], 0).unwrap_err();
        assert!(matches!(err, CodecError::Precondition(_)));
    }

    #[test]
    fn wire_bytes_include_header() {
        let b = CompressedBlock::sealed(vec![0; 10], 80, 100, 0);
        assert_eq!(b.wire_bytes(), 10 + BLOCK_HEADER_BYTES);
        let s = BlockStream {
            block_bytes: 100,
            blocks: vec![b.clone(), CompressedBlock::sealed(vec![0; 10], 80, 100, 1)],
            total_uncompressed: 200,
        };
        assert_eq!(s.wire_bytes(), 2 * (10 + BLOCK_HEADER_BYTES));
        assert!((s.ratio() - 200.0 / 44.0).abs() < 1e-12);
    }

    #[test]
    fn sealed_block_verifies() {
        let b = CompressedBlock::sealed(vec![1, 2, 3], 24, 12, 7);
        b.verify_checksum().unwrap();
    }

    #[test]
    fn payload_flip_fails_verification() {
        let mut b = CompressedBlock::sealed(vec![1, 2, 3], 24, 12, 0);
        b.payload[1] ^= 0x40;
        let err = b.verify_checksum().unwrap_err();
        assert!(matches!(err, CodecError::ChecksumMismatch { .. }));
    }

    #[test]
    fn header_field_corruption_fails_verification() {
        let base = CompressedBlock::sealed(vec![9; 16], 128, 16, 3);
        let mut b = base.clone();
        b.bit_len += 1;
        assert!(b.verify_checksum().is_err());
        let mut b = base.clone();
        b.uncompressed_len ^= 0x100;
        assert!(b.verify_checksum().is_err());
        let mut b = base;
        b.seq = 4;
        assert!(b.verify_checksum().is_err());
    }

    #[test]
    fn stream_verify_catches_drop_duplicate_reorder() {
        let mk = |seq: u32| CompressedBlock::sealed(vec![seq as u8; 4], 32, 10, seq);
        let good = BlockStream {
            block_bytes: 10,
            blocks: (0..4).map(mk).collect(),
            total_uncompressed: 40,
        };
        good.verify().unwrap();

        let mut dropped = good.clone();
        dropped.blocks.remove(2);
        assert!(matches!(dropped.verify().unwrap_err(), CodecError::BlockCount { .. }));

        let mut dup = good.clone();
        let extra = dup.blocks[1].clone();
        dup.blocks.insert(1, extra);
        assert!(matches!(dup.verify().unwrap_err(), CodecError::BlockCount { .. }));

        let mut swapped = good.clone();
        swapped.blocks.swap(0, 3);
        assert!(matches!(swapped.verify().unwrap_err(), CodecError::BlockSequence { .. }));
    }
}
