//! # recode-codec — the recoding transformations
//!
//! Implements every data representation the paper layers on top of CSR:
//!
//! * [`delta`] — fixed-width zigzag first-differencing of column indices.
//!   On its own it saves nothing (the paper notes this explicitly); its job
//!   is to turn arithmetic index sequences into small repeating integers
//!   that the byte-oriented stages then crush.
//! * [`snappy`] — a from-scratch implementation of the Snappy block format
//!   (varint preamble, literal/copy elements). Used both as the "CPU
//!   Snappy" baseline (32 KB blocks) and as the middle stage of the UDP
//!   pipeline (8 KB blocks).
//! * [`huffman`] — canonical, length-limited (≤ 15 bits) Huffman coding with
//!   the paper's per-matrix table built by sampling 8 KB blocks.
//! * [`pipeline`] — the composed **Delta → Snappy → Huffman** (DSH) recoder
//!   with 8 KB block framing ([`block`]), applied independently to the
//!   column-index stream and the value stream exactly as the two
//!   `recode()` calls in the paper's Fig. 7.
//! * [`metrics`] — the bytes-per-non-zero accounting used throughout the
//!   evaluation (raw CSR = 12 B/nnz), and [`telemetry`] — optional
//!   per-stage encode/decode timing + byte counters for the trace path.
//! * [`crc32c`] — hand-rolled table-driven CRC32c sealing every block's
//!   framing, and [`faults`] — a deterministic seed-driven injector that
//!   exercises the integrity layer with every corruption class.
//!
//! Every decoder is hardened against corrupt or truncated input: they
//! return [`CodecError`], never panic, and never read out of bounds.

pub mod bitstream;
pub mod block;
pub mod crc32c;
pub mod delta;
pub mod error;
pub mod faults;
pub mod huffman;
pub mod jit;
pub mod metrics;
pub mod pipeline;
pub mod snappy;
pub mod telemetry;
pub mod varint;

pub use block::{BlockStream, CompressedBlock};
pub use crc32c::crc32c;
pub use error::{CodecError, CodecResult};
pub use faults::{FaultInjector, FaultKind, FaultReport, SplitMix64};
pub use pipeline::{CompressedMatrix, MatrixCodecConfig, Pipeline, PipelineConfig};
pub use telemetry::{CodecStageReport, StageStats, StageTelemetry};

/// The paper's UDP-side uncompressed block size: 8 KB.
pub const UDP_BLOCK_BYTES: usize = 8 * 1024;

/// The paper's CPU-Snappy baseline block size: 32 KB.
pub const CPU_BLOCK_BYTES: usize = 32 * 1024;
