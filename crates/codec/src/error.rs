//! Codec error type. Decoders must fail loudly and safely on malformed
//! input — the failure-injection tests feed them garbage on purpose.

use std::fmt;

/// Result alias for codec operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Errors raised by encoders/decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the declared content did.
    Truncated {
        /// What the decoder was reading when input ran out.
        context: &'static str,
    },
    /// Structurally invalid content (bad tag, impossible offset, ...).
    Corrupt(String),
    /// Decoded output size disagrees with the declared size.
    LengthMismatch {
        /// Size the header declared.
        expected: usize,
        /// Size actually produced.
        actual: usize,
    },
    /// The operation needs a Huffman table that was not provided.
    MissingTable,
    /// Input violates a precondition (e.g. delta stream length not a
    /// multiple of 4).
    Precondition(String),
    /// Block CRC32c did not match its contents.
    ChecksumMismatch {
        /// Checksum carried in the block header.
        stored: u32,
        /// Checksum recomputed from the received contents.
        computed: u32,
    },
    /// A block sits at the wrong position in its stream (reorder/duplication).
    BlockSequence {
        /// Sequence number the position requires.
        expected: usize,
        /// Sequence number the block carries.
        found: usize,
    },
    /// Stream block count disagrees with its declared uncompressed size
    /// (block drop or duplication).
    BlockCount {
        /// Blocks the declared stream size implies.
        expected: usize,
        /// Blocks actually present.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "declared {expected} bytes but produced {actual}")
            }
            CodecError::MissingTable => write!(f, "huffman stage requires a code table"),
            CodecError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(f, "block checksum mismatch: header says {stored:#010x}, contents hash to {computed:#010x}")
            }
            CodecError::BlockSequence { expected, found } => {
                write!(f, "block sequence mismatch: position {expected} holds block {found}")
            }
            CodecError::BlockCount { expected, actual } => {
                write!(f, "stream declares {expected} blocks but carries {actual}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(CodecError::Truncated { context: "tag byte" }.to_string().contains("tag byte"));
        assert!(CodecError::LengthMismatch { expected: 8, actual: 4 }.to_string().contains('8'));
        assert!(CodecError::MissingTable.to_string().contains("table"));
        assert!(CodecError::ChecksumMismatch { stored: 0xDEAD, computed: 0xBEEF }
            .to_string()
            .contains("0x0000dead"));
        assert!(CodecError::BlockSequence { expected: 2, found: 5 }.to_string().contains('5'));
        assert!(CodecError::BlockCount { expected: 4, actual: 3 }.to_string().contains('3'));
    }
}
