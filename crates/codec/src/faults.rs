//! Deterministic, seed-driven fault injection for block streams.
//!
//! The fault-tolerance layer is only trustworthy if it is exercised against
//! every corruption class the transport can produce. This module mutates a
//! [`BlockStream`] the way a flaky DMA engine, a bad DRAM row, or a buggy
//! re-order buffer would: single-bit payload flips, payload truncation,
//! whole-block drop/duplication/reorder, and header-field corruption.
//!
//! All randomness comes from an internal splitmix64 generator so a trial is
//! fully determined by its seed — no `rand` dependency, and failures shrink
//! to a reproducible `(seed, fault class)` pair.

use crate::block::BlockStream;

/// The corruption classes the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one random bit of one block's payload.
    BitFlip,
    /// Remove bytes from the end of one block's payload (header untouched).
    Truncate,
    /// Remove one block from the stream.
    DropBlock,
    /// Insert a copy of one block at a random position.
    DuplicateBlock,
    /// Swap two distinct blocks.
    ReorderBlocks,
    /// Corrupt one header field (`bit_len`, `uncompressed_len`, `seq`, or
    /// the stored checksum) of one block.
    HeaderCorrupt,
}

impl FaultKind {
    /// Every fault class, for exhaustive sweeps.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::DropBlock,
        FaultKind::DuplicateBlock,
        FaultKind::ReorderBlocks,
        FaultKind::HeaderCorrupt,
    ];
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Truncate => "truncate",
            FaultKind::DropBlock => "drop-block",
            FaultKind::DuplicateBlock => "duplicate-block",
            FaultKind::ReorderBlocks => "reorder-blocks",
            FaultKind::HeaderCorrupt => "header-corrupt",
        };
        f.write_str(name)
    }
}

/// What a single injection actually did, for test assertions and logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Fault class applied.
    pub kind: FaultKind,
    /// Stream position of the affected block (position of the *first*
    /// affected block for reorder).
    pub block: usize,
    /// Human-readable description of the exact mutation.
    pub detail: String,
}

/// Seeded splitmix64 generator — tiny, fast, and fully determined by its
/// seed. This is the *only* randomness source in the workspace's fault and
/// property tests: no `rand` dependency, and every failure shrinks to a
/// reproducible seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator whose whole sequence is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit draw (the splitmix64 step function).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seeded deterministic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// Injector whose whole mutation sequence is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { rng: SplitMix64::new(seed) }
    }

    /// Next 64-bit draw from the injector's [`SplitMix64`] stream.
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw in `0..n`. `n` must be nonzero.
    fn below(&mut self, n: usize) -> usize {
        self.rng.below(n)
    }

    /// Picks a fault class uniformly.
    pub fn choose_kind(&mut self) -> FaultKind {
        FaultKind::ALL[self.below(FaultKind::ALL.len())]
    }

    /// Applies `kind` to `stream`. Returns `None` when the stream offers no
    /// target for that class (empty stream; reorder with < 2 blocks;
    /// bit-flip/truncate on an empty payload) — the stream is then unchanged.
    pub fn inject(&mut self, stream: &mut BlockStream, kind: FaultKind) -> Option<FaultReport> {
        if stream.blocks.is_empty() {
            return None;
        }
        let n = stream.blocks.len();
        match kind {
            FaultKind::BitFlip => {
                let k = self.below(n);
                let payload = &mut stream.blocks[k].payload;
                if payload.is_empty() {
                    return None;
                }
                let byte = self.below(payload.len());
                let bit = self.below(8);
                payload[byte] ^= 1 << bit;
                Some(FaultReport {
                    kind,
                    block: k,
                    detail: format!("flipped bit {bit} of payload byte {byte}"),
                })
            }
            FaultKind::Truncate => {
                let k = self.below(n);
                let payload = &mut stream.blocks[k].payload;
                if payload.is_empty() {
                    return None;
                }
                let cut = 1 + self.below(payload.len());
                let new_len = payload.len() - cut;
                payload.truncate(new_len);
                Some(FaultReport {
                    kind,
                    block: k,
                    detail: format!("truncated payload by {cut} bytes to {new_len}"),
                })
            }
            FaultKind::DropBlock => {
                let k = self.below(n);
                stream.blocks.remove(k);
                Some(FaultReport { kind, block: k, detail: "dropped block".into() })
            }
            FaultKind::DuplicateBlock => {
                let k = self.below(n);
                let at = self.below(n + 1);
                let copy = stream.blocks[k].clone();
                stream.blocks.insert(at, copy);
                Some(FaultReport {
                    kind,
                    block: k,
                    detail: format!("duplicated block {k} at position {at}"),
                })
            }
            FaultKind::ReorderBlocks => {
                if n < 2 {
                    return None;
                }
                let i = self.below(n);
                let mut j = self.below(n - 1);
                if j >= i {
                    j += 1;
                }
                stream.blocks.swap(i, j);
                Some(FaultReport {
                    kind,
                    block: i.min(j),
                    detail: format!("swapped blocks {i} and {j}"),
                })
            }
            FaultKind::HeaderCorrupt => {
                let k = self.below(n);
                let delta = (self.next_u64() as u32) | 1; // never zero
                let b = &mut stream.blocks[k];
                let detail = match self.below(4) {
                    0 => {
                        b.bit_len ^= delta as usize;
                        format!("bit_len xor {delta:#x}")
                    }
                    1 => {
                        b.uncompressed_len ^= delta as usize;
                        format!("uncompressed_len xor {delta:#x}")
                    }
                    2 => {
                        b.seq ^= delta;
                        format!("seq xor {delta:#x}")
                    }
                    _ => {
                        b.checksum ^= delta;
                        format!("checksum xor {delta:#x}")
                    }
                };
                Some(FaultReport { kind, block: k, detail })
            }
        }
    }

    /// Convenience: pick a class with the generator, then apply it.
    pub fn inject_random(&mut self, stream: &mut BlockStream) -> Option<FaultReport> {
        let kind = self.choose_kind();
        self.inject(stream, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::CompressedBlock;

    fn stream(nblocks: usize) -> BlockStream {
        let blocks = (0..nblocks)
            .map(|k| CompressedBlock::sealed(vec![k as u8; 16], 128, 32, k as u32))
            .collect();
        BlockStream { block_bytes: 32, blocks, total_uncompressed: 32 * nblocks }
    }

    #[test]
    fn same_seed_same_mutation() {
        for kind in FaultKind::ALL {
            let mut a = stream(5);
            let mut b = stream(5);
            let ra = FaultInjector::new(42).inject(&mut a, kind);
            let rb = FaultInjector::new(42).inject(&mut b, kind);
            assert_eq!(ra, rb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn every_kind_is_caught_by_stream_verify() {
        for kind in FaultKind::ALL {
            for seed in 0..32u64 {
                let mut s = stream(6);
                let report = FaultInjector::new(seed).inject(&mut s, kind);
                match report {
                    Some(_) => {
                        // A reorder may swap identical-content blocks only if
                        // payloads differ; ours all differ by construction.
                        assert!(
                            s.verify().is_err(),
                            "seed {seed}: {kind} went undetected by verify()"
                        );
                    }
                    None => s.verify().unwrap(),
                }
            }
        }
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut s = BlockStream { block_bytes: 32, blocks: vec![], total_uncompressed: 0 };
        for kind in FaultKind::ALL {
            assert!(FaultInjector::new(7).inject(&mut s, kind).is_none());
        }
        assert!(s.blocks.is_empty());
    }

    #[test]
    fn reorder_needs_two_blocks() {
        let mut s = stream(1);
        assert!(FaultInjector::new(9).inject(&mut s, FaultKind::ReorderBlocks).is_none());
        s.verify().unwrap();
    }
}
