//! Iso-performance memory-power savings (Figs. 16, 17).
//!
//! §V-B: instead of spending the compression win on speed, hold SpMV
//! performance at the uncompressed system's level and *slow the memory
//! system down*. The required bandwidth shrinks by `bytes_per_nnz / 12`,
//! memory power shrinks linearly with it (per-bit energy model), and the
//! only new cost is the UDP accelerators doing the decompression.

use crate::arch::SystemConfig;
use recode_codec::metrics::RAW_CSR_BYTES_PER_NNZ;
use serde::{Deserialize, Serialize};

/// Power accounting for one matrix on one memory system.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerSavings {
    /// Full-bandwidth memory power (the paper's 80 W DDR / 64 W HBM).
    pub max_power_w: f64,
    /// Memory power after compression at iso-performance.
    pub compressed_power_w: f64,
    /// `max - compressed` (the paper's "raw" savings bars).
    pub raw_saving_w: f64,
    /// Power of the UDPs added to sustain the decompression rate.
    pub udp_power_w: f64,
    /// `raw - udp` (the paper's "net" bars).
    pub net_saving_w: f64,
    /// UDP accelerators required.
    pub udps: usize,
}

impl PowerSavings {
    /// Computes savings for a matrix compressed to `bytes_per_nnz`, with
    /// measured per-accelerator decompressed-output throughput
    /// `udp_out_bps_per_accel`.
    pub fn compute(sys: &SystemConfig, bytes_per_nnz: f64, udp_out_bps_per_accel: f64) -> Self {
        assert!(bytes_per_nnz > 0.0, "bytes per nnz must be positive");
        let max_power = sys.mem.max_power_w();
        // Iso-performance: the uncompressed system processes
        // BW / 12 nnz per second; keep that rate.
        let nnz_rate = sys.mem.peak_bw_bps / RAW_CSR_BYTES_PER_NNZ;
        // Compressed traffic for the same nnz rate.
        let compressed_bw = (nnz_rate * bytes_per_nnz).min(sys.mem.peak_bw_bps);
        let compressed_power = sys.mem.power_at_bw(compressed_bw);
        // The UDPs must reproduce the decompressed stream at full original
        // bandwidth (output side = 12 B/nnz × nnz rate = original BW).
        let decomp_out_needed = nnz_rate * RAW_CSR_BYTES_PER_NNZ;
        let udps = (decomp_out_needed / udp_out_bps_per_accel).ceil().max(1.0) as usize;
        let udp_power = udps as f64 * recode_udp::energy::POWER_W;
        let raw = max_power - compressed_power;
        PowerSavings {
            max_power_w: max_power,
            compressed_power_w: compressed_power,
            raw_saving_w: raw,
            udp_power_w: udp_power,
            net_saving_w: raw - udp_power,
            udps,
        }
    }

    /// Fractional net power reduction (`net / max`) — the paper quotes 63%
    /// (DDR) and 51% (HBM) averages.
    pub fn net_fraction(&self) -> f64 {
        if self.max_power_w == 0.0 {
            return 0.0;
        }
        self.net_saving_w / self.max_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr_savings_at_5_bytes_per_nnz() {
        // 5/12 of 80 W = 33.3 W burned, 46.7 W raw saving; UDP overhead is
        // a watt-scale correction.
        let s = PowerSavings::compute(&SystemConfig::ddr4(), 5.0, 24e9);
        assert!((s.max_power_w - 80.0).abs() < 1e-9);
        assert!((s.compressed_power_w - 80.0 * 5.0 / 12.0).abs() < 1e-6);
        assert!(s.raw_saving_w > 46.0 && s.raw_saving_w < 47.0);
        assert!(s.udp_power_w < 2.0, "udp power {:.2} W", s.udp_power_w);
        assert!(s.net_saving_w > 44.0);
        assert!(s.net_fraction() > 0.55);
    }

    #[test]
    fn hbm_needs_more_udps_but_still_saves() {
        let s = PowerSavings::compute(&SystemConfig::hbm2(), 5.0, 24e9);
        assert!((s.max_power_w - 64.0).abs() < 1e-9);
        assert!(s.udps >= 40, "1 TB/s decompressed needs ~42 UDPs, got {}", s.udps);
        assert!(s.net_saving_w > 15.0, "net {:.1} W", s.net_saving_w);
        assert!(s.net_fraction() > 0.25);
    }

    #[test]
    fn aggressive_compression_saves_up_to_6x_power() {
        // The paper's abstract: "up to 6x lower memory power at the same
        // performance" — bytes/nnz around 2 gives 12/2 = 6x.
        let s = PowerSavings::compute(&SystemConfig::ddr4(), 2.0, 24e9);
        let ratio = s.max_power_w / (s.compressed_power_w + s.udp_power_w);
        assert!(ratio > 5.0, "power ratio {ratio:.1}");
    }

    #[test]
    fn incompressible_matrix_saves_nothing_and_costs_udp_power() {
        let s = PowerSavings::compute(&SystemConfig::ddr4(), 12.0, 24e9);
        assert!(s.raw_saving_w.abs() < 1e-9);
        assert!(s.net_saving_w < 0.0, "pure overhead when compression fails");
    }

    #[test]
    fn bytes_per_nnz_above_raw_is_clamped_to_peak_bw() {
        let s = PowerSavings::compute(&SystemConfig::ddr4(), 20.0, 24e9);
        assert!(s.compressed_power_w <= s.max_power_w + 1e-9);
    }
}
