//! Measured recoding throughput.
//!
//! The UDP numbers come from *executing the real decoder programs* on the
//! lane simulator over (a sample of) a matrix's compressed blocks, then
//! extrapolating cycle counts to the 64-lane accelerator at 1.6 GHz —
//! exactly how the paper's cycle-accurate simulator feeds its Figs. 12/13.
//! CPU software numbers come from the calibrated `recode_mem::CpuModel`.

use crate::error::{ExecError, ExecResult};
use recode_codec::block::CompressedBlock;
use recode_codec::pipeline::CompressedMatrix;
use recode_udp::accel::Accelerator;
use recode_udp::progs::DshDecoder;
use serde::{Deserialize, Serialize};

/// Measured decompression characteristics of one compressed matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecompMeasurement {
    /// Blocks actually simulated (sampled).
    pub blocks_simulated: usize,
    /// Total blocks in the matrix (both streams).
    pub blocks_total: usize,
    /// Mean single-lane microseconds to decode one block (the paper quotes
    /// a 21.7 µs geomean for 8 KB blocks).
    pub us_per_block: f64,
    /// Single-lane decompressed-output throughput, bytes/s.
    pub lane_out_bps: f64,
    /// Full accelerator (64-lane) decompressed-output throughput, bytes/s.
    pub accel_out_bps: f64,
    /// Decompressed bytes per cycle per lane (model-level intensity).
    pub bytes_per_cycle: f64,
}

/// Simulates decompression of up to `max_blocks_per_stream` blocks from
/// each of the matrix's two streams on the accelerator and extrapolates.
///
/// # Errors
/// Decoder-construction failures or lane traps (which indicate a bug, since
/// the blocks come from our own encoder).
pub fn measure_udp_decomp(
    cm: &CompressedMatrix,
    accel: &Accelerator,
    max_blocks_per_stream: usize,
) -> ExecResult<DecompMeasurement> {
    let index_decoder = DshDecoder::new(cm.config.index, cm.index_table_lengths.as_deref())?;
    let value_decoder = DshDecoder::new(cm.config.value, cm.value_table_lengths.as_deref())?;

    // Sample blocks evenly across each stream.
    let mut jobs: Vec<(&DshDecoder, &CompressedBlock)> = Vec::new();
    for (decoder, stream) in
        [(&index_decoder, &cm.index_stream), (&value_decoder, &cm.value_stream)]
    {
        let n = stream.blocks.len();
        // `max(1)` twice: a zero sample budget degrades to one block per
        // stream instead of a divide-by-zero panic.
        let stride = n.div_ceil(max_blocks_per_stream.max(1)).max(1);
        for block in stream.blocks.iter().step_by(stride) {
            jobs.push((decoder, block));
        }
    }
    let blocks_total = cm.index_stream.blocks.len() + cm.value_stream.blocks.len();
    if jobs.is_empty() {
        return Ok(DecompMeasurement {
            blocks_simulated: 0,
            blocks_total,
            us_per_block: 0.0,
            lane_out_bps: 0.0,
            accel_out_bps: 0.0,
            bytes_per_cycle: 0.0,
        });
    }

    let outcome = accel.run_jobs(&jobs, |lane, (decoder, block)| decoder.decode_block(lane, block));
    // Measurement wants a clean run; self-encoded blocks failing is a bug.
    if let Some(err) = outcome.results.iter().find_map(|r| r.as_ref().err()) {
        return Err(ExecError::Udp(err.clone()));
    }
    let report = outcome.report;

    let bytes_per_cycle = report.output_bytes as f64 / report.busy_cycles.max(1) as f64;
    // Same degenerate-input policy as the `.max(1)` clamp above: a clock
    // that is zero, negative, or non-finite yields finite zero rates rather
    // than NaN/inf leaking into downstream tables.
    let (lane_out_bps, us_per_block) = if accel.freq_hz.is_finite() && accel.freq_hz > 0.0 {
        (
            bytes_per_cycle * accel.freq_hz,
            report.busy_cycles as f64 / jobs.len() as f64 / accel.freq_hz * 1e6,
        )
    } else {
        (0.0, 0.0)
    };
    Ok(DecompMeasurement {
        blocks_simulated: jobs.len(),
        blocks_total,
        us_per_block,
        lane_out_bps,
        accel_out_bps: lane_out_bps * accel.lanes as f64,
        bytes_per_cycle,
    })
}

/// Host-measured software codec throughput — times *this repository's own*
/// Snappy and DSH decoders on the current machine. Not the reproduction
/// input (that role belongs to the calibrated `recode_mem::CpuModel`
/// constants; this machine is not the paper's Xeon), but a qualitative
/// check that software DSH decoding really is far slower than plain Snappy,
/// which is the mechanism behind the paper's ">30x" claim.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HostCodecRates {
    /// Single-thread Snappy decompression, output bytes/s.
    pub snappy_bps: f64,
    /// Single-thread full DSH block decode, output bytes/s.
    pub dsh_bps: f64,
}

/// Times the software decoders over the matrix's blocks (single-threaded,
/// best of `reps` passes).
///
/// # Errors
/// Decode failures (impossible for self-encoded blocks).
pub fn measure_host_codec(cm: &CompressedMatrix, reps: usize) -> ExecResult<HostCodecRates> {
    use recode_codec::pipeline::{MatrixCodecConfig, Pipeline};
    let reps = reps.max(1);
    // DSH: decode this matrix's own streams.
    let (index_pipe, value_pipe) = cm.pipelines()?;
    let mut best_dsh = f64::INFINITY;
    let total_out =
        (cm.index_stream.total_uncompressed + cm.value_stream.total_uncompressed) as f64;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        for (pipe, stream) in [(&index_pipe, &cm.index_stream), (&value_pipe, &cm.value_stream)] {
            for b in &stream.blocks {
                std::hint::black_box(pipe.decode_block(b)?);
            }
        }
        best_dsh = best_dsh.min(t0.elapsed().as_secs_f64());
    }
    // Snappy-only: re-encode under the CPU baseline and decode.
    let a = cm.decompress()?;
    let snappy_cm = CompressedMatrix::compress(&a, MatrixCodecConfig::cpu_snappy())?;
    let (sp, vp) = snappy_cm.pipelines()?;
    let mut best_snappy = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        for (pipe, stream) in [(&sp, &snappy_cm.index_stream), (&vp, &snappy_cm.value_stream)] {
            for b in &stream.blocks {
                std::hint::black_box(Pipeline::decode_block(pipe, b)?);
            }
        }
        best_snappy = best_snappy.min(t0.elapsed().as_secs_f64());
    }
    Ok(HostCodecRates {
        snappy_bps: total_out / best_snappy.max(1e-12),
        dsh_bps: total_out / best_dsh.max(1e-12),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_codec::pipeline::MatrixCodecConfig;
    use recode_sparse::prelude::*;

    fn compressed_banded() -> CompressedMatrix {
        let a = generate(
            &GenSpec::FemBand {
                n: 2000,
                band: 16,
                fill: 0.5,
                values: ValueModel::MixedRepeated { distinct: 12 },
            },
            5,
        );
        CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap()
    }

    #[test]
    fn measurement_is_in_the_papers_regime() {
        let cm = compressed_banded();
        let m = measure_udp_decomp(&cm, &Accelerator::default(), 16).unwrap();
        assert!(m.blocks_simulated > 0);
        // The paper: geomean 21.7 us per 8 KB block on one lane, 64-lane
        // aggregate >20 GB/s on friendly matrices. Same order here.
        assert!(m.us_per_block > 2.0 && m.us_per_block < 80.0, "us/block {:.1}", m.us_per_block);
        assert!(m.accel_out_bps > 5e9, "accelerator throughput {:.2} GB/s", m.accel_out_bps / 1e9);
    }

    #[test]
    fn sampling_caps_simulated_blocks() {
        let cm = compressed_banded();
        let m = measure_udp_decomp(&cm, &Accelerator::default(), 4).unwrap();
        assert!(m.blocks_simulated <= 8 + 2, "{}", m.blocks_simulated);
        assert!(m.blocks_total >= m.blocks_simulated);
    }

    #[test]
    fn host_rates_show_dsh_much_slower_than_snappy() {
        let cm = compressed_banded();
        // Best-of-8: the minimum must survive scheduling noise from sibling
        // test threads (the chaos campaign saturates the machine for ~25 s).
        let r = measure_host_codec(&cm, 8).unwrap();
        assert!(r.snappy_bps > r.dsh_bps, "snappy {:.2e} vs dsh {:.2e}", r.snappy_bps, r.dsh_bps);
        // The margin documents the cost of *bit-serial* Huffman decode
        // (~2x observed); the compiled dispatch loop narrows it to ~1.6x,
        // so the stronger claim is only pinned on the interpreter tier —
        // at 1.7x, below the observed ratio but above the JIT's.
        if !recode_codec::jit::enabled() {
            assert!(
                r.snappy_bps > 1.7 * r.dsh_bps,
                "bit-serial huffman should dominate DSH cost: snappy {:.2e} vs dsh {:.2e}",
                r.snappy_bps,
                r.dsh_bps
            );
        }
    }

    #[test]
    fn zero_sample_budget_degrades_to_one_block_per_stream() {
        let cm = compressed_banded();
        let m = measure_udp_decomp(&cm, &Accelerator::default(), 0).unwrap();
        assert!(m.blocks_simulated >= 1 && m.blocks_simulated <= 2, "{}", m.blocks_simulated);
        assert!(m.us_per_block.is_finite() && m.us_per_block > 0.0);
    }

    #[test]
    fn degenerate_clock_yields_finite_zero_rates() {
        let cm = compressed_banded();
        for freq_hz in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let accel = Accelerator { lanes: 64, freq_hz };
            let m = measure_udp_decomp(&cm, &accel, 4).unwrap();
            assert!(m.blocks_simulated > 0);
            assert!(m.bytes_per_cycle > 0.0, "cycle-level intensity is clock-independent");
            assert_eq!(m.us_per_block, 0.0, "freq {freq_hz}");
            assert_eq!(m.lane_out_bps, 0.0, "freq {freq_hz}");
            assert_eq!(m.accel_out_bps, 0.0, "freq {freq_hz}");
        }
    }

    #[test]
    fn empty_matrix_measures_zero() {
        let a = recode_sparse::Csr::try_from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let m = measure_udp_decomp(&cm, &Accelerator::default(), 8).unwrap();
        assert_eq!(m.blocks_simulated, 0);
        assert_eq!(m.accel_out_bps, 0.0);
    }
}
