//! Plain-text rendering of experiment results, one function per figure,
//! printing the same series the paper plots.

use crate::experiment::{CompressionRow, DecompRow, Fig3Row, PowerRow, SpmvRow};
use crate::perfmodel::ScenarioResult;
use recode_sparse::util::geometric_mean;
use std::fmt::Write as _;

/// Renders Fig. 3 (CPU-only SpMV rates).
pub fn fig3(rows: &[Fig3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 3 — Single-die CPU SpMV, memory-bandwidth limited");
    let _ = writeln!(
        s,
        "{:<24} {:>12} {:>16} {:>16}",
        "matrix", "nnz", "modeled Gflop/s", "host Gflop/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<24} {:>12} {:>16.2} {:>16.2}",
            r.name, r.nnz, r.modeled_gflops, r.host_gflops
        );
    }
    s
}

/// Renders Fig. 10 (compressed-size geomean bars) given per-matrix rows.
pub fn fig10(rows: &[CompressionRow]) -> String {
    let g = crate::experiment::compression_geomeans(rows);
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 10 — Compressed size, geometric mean bytes per non-zero");
    let _ =
        writeln!(s, "(paper: CPU Snappy 5.20, UDP Delta-Snappy 5.92, UDP DSH 5.00; raw CSR 12)");
    if let Some(g) = g {
        let _ = writeln!(s, "{:<28} {:>10}", "configuration", "B/nnz");
        let _ = writeln!(s, "{:<28} {:>10.2}", "Raw CSR", 12.0);
        let _ = writeln!(s, "{:<28} {:>10.2}", "CPU Snappy (32KB)", g.cpu_snappy);
        let _ = writeln!(s, "{:<28} {:>10.2}", "UDP Delta+Snappy (8KB)", g.ds);
        let _ = writeln!(s, "{:<28} {:>10.2}", "UDP Delta+Snappy+Huffman", g.dsh);
        let _ = writeln!(s, "matrices: {}", rows.len());
    }
    s
}

/// Renders Fig. 11 (bytes/nnz vs nnz scatter) as CSV-ish rows.
pub fn fig11(rows: &[CompressionRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 11 — Bytes per non-zero vs #non-zeros (scatter)");
    let _ = writeln!(
        s,
        "{:<24} {:<12} {:>12} {:>10} {:>10} {:>10}",
        "matrix", "family", "nnz", "snappy", "ds", "dsh"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<24} {:<12} {:>12} {:>10.2} {:>10.2} {:>10.2}",
            r.name, r.family, r.nnz, r.cpu_snappy_bpnnz, r.ds_bpnnz, r.dsh_bpnnz
        );
    }
    s
}

/// Renders Fig. 12 (decompression throughput bars).
pub fn fig12(rows: &[DecompRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 12 — Decompression throughput: 32-thread CPU vs 64-lane UDP");
    let _ =
        writeln!(s, "(paper: UDP 2-5x on the seven, geomean ~7x, >20 GB/s; 21.7 us/block geomean)");
    let _ = writeln!(
        s,
        "{:<24} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "matrix", "nnz", "CPU GB/s", "UDP GB/s", "speedup", "us/8KB-blk"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<24} {:>12} {:>12.2} {:>12.2} {:>10.2} {:>12.2}",
            r.name,
            r.nnz,
            r.cpu_bps / 1e9,
            r.udp_bps / 1e9,
            r.speedup,
            r.us_per_block
        );
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    if let Some(g) = geometric_mean(&speedups) {
        let _ = writeln!(s, "geomean speedup: {g:.2}x");
    }
    let blocks: Vec<f64> = rows.iter().map(|r| r.us_per_block).collect();
    if let Some(g) = geometric_mean(&blocks) {
        let _ = writeln!(s, "geomean single-lane block latency: {g:.1} us (paper: 21.7 us)");
    }
    s
}

/// Renders Fig. 13 (UDP throughput vs nnz scatter).
pub fn fig13(rows: &[DecompRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 13 — 64-lane UDP decompression throughput vs #non-zeros");
    let _ = writeln!(s, "{:<24} {:<12} {:>12} {:>12}", "matrix", "family", "nnz", "UDP GB/s");
    for r in rows {
        let _ =
            writeln!(s, "{:<24} {:<12} {:>12} {:>12.2}", r.name, r.family, r.nnz, r.udp_bps / 1e9);
    }
    s
}

/// Renders Figs. 14/15 (three-scenario SpMV bars).
pub fn fig14_15(title: &str, rows: &[SpmvRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "(paper: geomean hetero speedup 2.4x; Decomp(CPU) >30x below hetero)");
    let _ = writeln!(
        s,
        "{:<24} {:>10} {:>8} {:>14} {:>14} {:>16} {:>9} {:>6}",
        "matrix",
        "nnz",
        "B/nnz",
        "Uncompressed",
        "Decomp(CPU)",
        "Decomp(UDP+CPU)",
        "speedup",
        "UDPs"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<24} {:>10} {:>8.2} {:>14.2} {:>14.2} {:>16.2} {:>9.2} {:>6}",
            r.name,
            r.nnz,
            r.bytes_per_nnz,
            r.uncompressed_gflops,
            r.cpu_decomp_gflops,
            r.hetero_gflops,
            r.speedup,
            r.udps
        );
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    if let Some(g) = geometric_mean(&speedups) {
        let _ = writeln!(s, "geomean speedup: {g:.2}x (paper: 2.4x)");
    }
    s
}

/// Renders Figs. 16/17 (power savings bars).
pub fn fig16_17(title: &str, rows: &[PowerRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10} {:>12} {:>6}",
        "matrix", "B/nnz", "max W", "mem W", "raw save W", "UDP W", "net save W", "UDPs"
    );
    let mut net_sum = 0.0;
    for r in rows {
        let p = &r.savings;
        net_sum += p.net_saving_w;
        let _ = writeln!(
            s,
            "{:<16} {:>8.2} {:>10.1} {:>12.1} {:>12.1} {:>10.2} {:>12.1} {:>6}",
            r.name,
            r.bytes_per_nnz,
            p.max_power_w,
            p.compressed_power_w,
            p.raw_saving_w,
            p.udp_power_w,
            p.net_saving_w,
            p.udps
        );
    }
    if !rows.is_empty() {
        let max_p = rows[0].savings.max_power_w;
        let _ = writeln!(
            s,
            "average net saving: {:.1} W of {:.0} W ({:.0}%)",
            net_sum / rows.len() as f64,
            max_p,
            net_sum / rows.len() as f64 / max_p * 100.0
        );
    }
    s
}

/// Renders a single scenario triple (used by examples).
pub fn scenarios(rows: &[ScenarioResult]) -> String {
    let mut s = String::new();
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:>10.2} Gflop/s  (mem {:>6.1} GB/s, {} UDPs)",
            r.scenario.label(),
            r.gflops,
            r.mem_bw_used / 1e9,
            r.udps
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerSavings;

    #[test]
    fn reports_render_without_panicking_and_contain_key_labels() {
        let rows = vec![CompressionRow {
            name: "m000_test".into(),
            family: "femband".into(),
            nnz: 1000,
            cpu_snappy_bpnnz: 5.2,
            ds_bpnnz: 5.9,
            dsh_bpnnz: 5.0,
        }];
        let s = fig10(&rows);
        assert!(s.contains("5.20") || s.contains("5.2"));
        assert!(fig11(&rows).contains("m000_test"));

        let drows = vec![DecompRow {
            name: "copter2".into(),
            family: "femband".into(),
            nnz: 759952,
            cpu_bps: 6.4e9,
            udp_bps: 24e9,
            us_per_block: 21.7,
            speedup: 3.75,
        }];
        let s = fig12(&drows);
        assert!(s.contains("copter2"));
        assert!(s.contains("geomean"));
        assert!(fig13(&drows).contains("copter2"));

        let prows = vec![PowerRow {
            name: "shipsec1".into(),
            bytes_per_nnz: 4.0,
            savings: PowerSavings {
                max_power_w: 80.0,
                compressed_power_w: 26.7,
                raw_saving_w: 53.3,
                udp_power_w: 1.6,
                net_saving_w: 51.7,
                udps: 10,
            },
        }];
        let s = fig16_17("Fig. 16 — DDR4", &prows);
        assert!(s.contains("shipsec1"));
        assert!(s.contains("average net saving"));
    }
}
