//! Dependency-free JSON tree: a writer and a minimal parser.
//!
//! This is the shared emitter behind every machine-readable artifact that
//! must work in offline builds where `serde_json` is unavailable at
//! runtime: the Chrome trace exporter, `chaos::CampaignSummary::to_json`,
//! the `BENCH_*.json` snapshot binaries, and the `recode bench-compare`
//! comparator's input side. It is deliberately small: objects preserve
//! insertion order (stable output bytes), numbers are written with Rust's
//! shortest-round-trip `Display`, and the parser accepts exactly the JSON
//! these writers produce plus anything `serde_json` emits.

use std::fmt::Write as _;

/// One JSON value. Objects keep insertion order so emitted bytes are
/// stable run-to-run.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `u64` (written without a decimal point).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other finite number. Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object, builder-style (panics on
    /// non-objects — writer misuse, not data-dependent).
    #[must_use]
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; strings/bools don't coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, in insertion order.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Pretty serialization (2-space indent, `serde_json` style).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    seq_sep(out, indent, depth + 1, i == 0);
                    item.write(out, indent, depth + 1);
                }
            }),
            Json::Obj(fields) => {
                write_seq(out, indent, depth, fields.is_empty(), '{', '}', |out| {
                    for (i, (k, v)) in fields.iter().enumerate() {
                        seq_sep(out, indent, depth + 1, i == 0);
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    }
                });
            }
        }
    }
}

/// Compact serialization (via `.to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn seq_sep(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

/// Floats print via Rust's shortest-round-trip `Display`, with a trailing
/// `.0` forced onto integral values so a float field never degrades into
/// an integer token between runs. Non-finite values become `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
/// A message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by our
                            // writers; map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_stable_ordered_objects() {
        let doc = Json::obj()
            .set("b", Json::U64(2))
            .set("a", Json::F64(1.5))
            .set("s", Json::Str("x\"y\n".to_string()))
            .set("arr", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(doc.to_string(), r#"{"b":2,"a":1.5,"s":"x\"y\n","arr":[true,null]}"#);
    }

    #[test]
    fn integral_floats_keep_their_decimal_point() {
        assert_eq!(Json::F64(3.0).to_string(), "3.0");
        assert_eq!(Json::F64(0.25).to_string(), "0.25");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::U64(3).to_string(), "3");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj()
            .set("trials", Json::U64(500))
            .set("neg", Json::I64(-7))
            .set("ratio", Json::F64(12.75))
            .set("name", Json::Str("stencil 2d / 5pt".to_string()))
            .set("tags", Json::Arr(vec![Json::Str("a".into()), Json::U64(1)]))
            .set(
                "inner",
                Json::obj().set("empty_arr", Json::Arr(vec![])).set("empty_obj", Json::obj()),
            );
        for text in [doc.to_string(), doc.to_string_pretty()] {
            let back = parse(&text).expect("own output parses");
            assert_eq!(back, doc, "round trip through {text}");
        }
    }

    #[test]
    fn parse_accepts_serde_style_documents() {
        let text = r#"{
  "schema": "recode-bench/v1",
  "count": 3,
  "rate": 1.25e3,
  "flag": false,
  "items": [ {"name": "x", "v": 1}, {"name": "y", "v": -2} ]
}"#;
        let doc = parse(text).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("recode-bench/v1"));
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("rate").and_then(Json::as_f64), Some(1250.0));
        assert_eq!(doc.get("flag").and_then(Json::as_bool), Some(false));
        let items = doc.get("items").and_then(Json::as_array).expect("array");
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("v").and_then(Json::as_f64), Some(-2.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} extra", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
