//! Point-in-time metrics snapshot rendered as Prometheus text exposition.
//!
//! [`MetricsSnapshot`] is built from the same [`TraceDocument`] counters
//! `validate()` already cross-checks, so the scrape surface can never
//! disagree with the trace. `recode metrics` prints the exposition to
//! stdout today; a future `recode-serve` serves the identical bytes over
//! HTTP (ROADMAP item 1).
//!
//! Naming follows the Prometheus conventions: dotted trace counters map to
//! underscored metric names under the `recode_` prefix (`exec.jobs` →
//! `recode_exec_jobs`), monotonic values are typed `counter`, point-in-time
//! values `gauge`, and per-span wall times share one family with a `span`
//! label.

use crate::telemetry::TraceDocument;
use std::fmt::Write as _;

/// One metric family: name, type, help, and its samples (label-less or
/// labeled with a single key).
#[derive(Debug, Clone, PartialEq)]
struct Family {
    name: String,
    kind: &'static str,
    help: String,
    /// `(optional ("key", "value") label, sample value)`.
    samples: Vec<(Option<(String, String)>, f64)>,
}

/// A renderable set of metric families derived from one trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    families: Vec<Family>,
}

/// `exec.blocks_fell_back` → `recode_exec_blocks_fell_back`.
fn metric_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 7);
    out.push_str("recode_");
    for c in dotted.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

impl MetricsSnapshot {
    /// Derives the snapshot from a sealed trace document.
    pub fn from_document(doc: &TraceDocument) -> Self {
        let mut families = Vec::new();

        for (name, value) in &doc.counters {
            families.push(Family {
                name: metric_name(name),
                kind: "counter",
                help: format!("Trace counter `{name}`."),
                samples: vec![(None, *value as f64)],
            });
        }

        let mut push_gauge = |name: &str, help: &str, value: f64| {
            families.push(Family {
                name: metric_name(name),
                kind: "gauge",
                help: help.to_string(),
                samples: vec![(None, value)],
            });
        };
        push_gauge(
            "trace.wall_ns_total",
            "Host wall-clock nanoseconds for the traced run.",
            doc.wall_ns_total as f64,
        );
        push_gauge("matrix.nnz", "Stored non-zeros of the traced matrix.", doc.matrix.nnz as f64);
        push_gauge(
            "matrix.bytes_per_nnz",
            "Compressed bytes per non-zero.",
            doc.matrix.bytes_per_nnz,
        );
        push_gauge(
            "accel.lane_utilization",
            "Busy fraction of the accelerator's lane-cycle envelope.",
            doc.exec.accel.lane_utilization,
        );
        push_gauge(
            "accel.makespan_cycles",
            "Accelerator makespan in lane cycles.",
            doc.exec.accel.makespan_cycles as f64,
        );
        if let Some(rec) = &doc.recorder {
            push_gauge(
                "recorder.recorded",
                "Flight-recorder events accepted.",
                rec.recorded as f64,
            );
            push_gauge(
                "recorder.dropped",
                "Flight-recorder events lost to ring overwrite.",
                rec.dropped as f64,
            );
            if !rec.by_kind.is_empty() {
                families.push(Family {
                    name: "recode_recorder_events_total".to_string(),
                    kind: "counter",
                    help: "Flight-recorder events drained, by kind (jit_compile = \
                           JIT compilations observed during the run)."
                        .to_string(),
                    samples: rec
                        .by_kind
                        .iter()
                        .map(|(k, n)| (Some(("kind".to_string(), k.clone())), *n as f64))
                        .collect(),
                });
            }
        }

        if !doc.spans.is_empty() {
            families.push(Family {
                name: "recode_span_wall_ns".to_string(),
                kind: "gauge",
                help: "Host wall-clock nanoseconds per pipeline phase.".to_string(),
                samples: doc
                    .spans
                    .iter()
                    .map(|s| (Some(("span".to_string(), s.name.clone())), s.wall_ns as f64))
                    .collect(),
            });
        }

        MetricsSnapshot { families }
    }

    /// Renders the Prometheus text exposition (format version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind);
            for (label, value) in &f.samples {
                let v = format_value(*value);
                match label {
                    Some((k, val)) => {
                        let _ = writeln!(out, "{}{{{}=\"{}\"}} {v}", f.name, k, escape_label(val));
                    }
                    None => {
                        let _ = writeln!(out, "{} {v}", f.name);
                    }
                }
            }
        }
        out
    }

    /// Number of metric families in the snapshot.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True when the snapshot carries no families.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }
}

/// Integral values print without an exponent or decimal; the rest use
/// Rust's shortest round-trip form (valid Prometheus floats either way).
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{MatrixMeta, RecorderSummary, SystemMeta, Telemetry};
    use recode_mem::MemorySystem;

    fn doc() -> TraceDocument {
        let mut tel = Telemetry::new();
        tel.add("exec.jobs", 8);
        tel.add("pool.checkouts", 3);
        tel.span("exec.decode_batch", 1_000, 0.0, 64);
        let mut doc = tel.into_document(
            MatrixMeta { name: "m".into(), nnz: 100, bytes_per_nnz: 4.5, ..MatrixMeta::default() },
            SystemMeta::default(),
            crate::exec::ExecStats::default(),
            recode_codec::telemetry::CodecStageReport::default(),
            &MemorySystem::ddr4(),
            5_000,
        );
        doc.attach_recorder(RecorderSummary {
            recorded: 10,
            dropped: 2,
            capacity: 256,
            by_kind: std::collections::BTreeMap::from([
                ("jit_compile".to_string(), 7u64),
                ("block_done".to_string(), 3u64),
            ]),
        });
        doc
    }

    #[test]
    fn exposition_names_types_and_values_line_up() {
        let text = MetricsSnapshot::from_document(&doc()).render_prometheus();
        assert!(text.contains("# TYPE recode_exec_jobs counter"), "{text}");
        assert!(text.contains("\nrecode_exec_jobs 8\n"), "{text}");
        assert!(text.contains("# TYPE recode_pool_checkouts counter"), "{text}");
        assert!(text.contains("# TYPE recode_matrix_bytes_per_nnz gauge"), "{text}");
        assert!(text.contains("\nrecode_matrix_bytes_per_nnz 4.5\n"), "{text}");
        assert!(text.contains("recode_span_wall_ns{span=\"exec.decode_batch\"} 1000"), "{text}");
        assert!(text.contains("\nrecode_recorder_dropped 2\n"), "{text}");
        assert!(text.contains("recode_recorder_events_total{kind=\"jit_compile\"} 7"), "{text}");
        assert!(text.contains("recode_recorder_events_total{kind=\"block_done\"} 3"), "{text}");
        // Every sample line's family has HELP and TYPE preceding it.
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let family = line.split(['{', ' ']).next().expect("metric name");
            assert!(text.contains(&format!("# TYPE {family} ")), "untyped family {family}");
        }
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("exec.blocks_fell_back"), "recode_exec_blocks_fell_back");
        assert_eq!(metric_name("mem.read.compressed-stream"), "recode_mem_read_compressed_stream");
    }
}
