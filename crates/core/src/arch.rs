//! System configurations for the three architectures the paper compares.

use recode_mem::{CpuModel, DmaModel, MemorySystem};
use recode_udp::accel::Accelerator;
use serde::{Deserialize, Serialize};

/// Which system executes SpMV (the three bar groups of Figs. 14/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// CPU streaming raw 12 B/nnz CSR — "Max Uncompressed".
    CpuUncompressed,
    /// CPU decompresses in software, then multiplies — "Decomp(CPU)".
    CpuSoftwareDecomp,
    /// UDP decompresses, CPU multiplies — "Decomp(UDP+CPU)".
    HeteroUdp,
}

impl Scenario {
    /// All scenarios, in the paper's plotting order.
    pub const ALL: [Scenario; 3] =
        [Scenario::CpuUncompressed, Scenario::CpuSoftwareDecomp, Scenario::HeteroUdp];

    /// The paper's bar label.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::CpuUncompressed => "Max Uncompressed",
            Scenario::CpuSoftwareDecomp => "Decomp(CPU)",
            Scenario::HeteroUdp => "Decomp(UDP+CPU)",
        }
    }
}

/// One complete modeled platform.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Host CPU.
    pub cpu: CpuModel,
    /// Memory system.
    pub mem: MemorySystem,
    /// UDP accelerator template (per-accelerator lanes/frequency).
    pub udp: Accelerator,
    /// On-die DMA between memory controller and UDP local memory.
    pub dma: DmaModel,
}

impl SystemConfig {
    /// The paper's DDR4 platform (single-die Epyc-class, 100 GB/s).
    pub fn ddr4() -> Self {
        SystemConfig {
            cpu: CpuModel::default(),
            mem: MemorySystem::ddr4(),
            udp: Accelerator::default(),
            dma: DmaModel::default(),
        }
    }

    /// The paper's HBM2 platform (4 stacks, 1 TB/s).
    pub fn hbm2() -> Self {
        SystemConfig { mem: MemorySystem::hbm2(), ..Self::ddr4() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_memory() {
        let d = SystemConfig::ddr4();
        let h = SystemConfig::hbm2();
        assert_eq!(d.cpu, h.cpu);
        assert!(h.mem.peak_bw_bps > d.mem.peak_bw_bps);
        assert_eq!(d.udp.lanes, 64);
    }

    #[test]
    fn scenario_labels_match_paper() {
        assert_eq!(Scenario::HeteroUdp.label(), "Decomp(UDP+CPU)");
        assert_eq!(Scenario::ALL.len(), 3);
    }
}
