//! The 369-matrix corpus — our substitute for the paper's TAMU sample.
//!
//! The paper draws 369 matrices from the largest 20% of the collection
//! (nnz 1e6–8e8, median 4.9e6; sparsity 9.4e-7%–19%; banded, diagonal,
//! symmetric and unstructured structure). This module produces a
//! deterministic corpus with the same *structural spectrum* from the eleven
//! generator families, with target non-zero counts drawn log-uniformly from
//! a scale-dependent range (the paper's sizes are scaled down by default so
//! the full evaluation runs on one machine; see DESIGN.md §3).

use rayon::prelude::*;
use recode_sparse::gen::{GenSpec, KroneckerBase, ValueModel};
use recode_sparse::util::splitmix64;
use recode_sparse::Csr;
use serde::{Deserialize, Serialize};

/// Number of matrices, matching the paper.
pub const CORPUS_SIZE: usize = 369;

/// Corpus size regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorpusScale {
    /// nnz ~ 2e4..2e5 — unit tests and quick runs.
    Small,
    /// nnz ~ 1e5..2e6 — the default for figure regeneration.
    Medium,
    /// nnz ~ 1e6..3e7 — closest to the paper's lower range that is still
    /// practical to simulate; use `--scale paper` harness flags to select.
    Paper,
}

impl CorpusScale {
    /// Log-uniform nnz target range.
    pub fn nnz_range(self) -> (f64, f64) {
        match self {
            CorpusScale::Small => (2e4, 2e5),
            CorpusScale::Medium => (1e5, 2e6),
            CorpusScale::Paper => (1e6, 3e7),
        }
    }
}

/// One corpus member: a named, seeded generator spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Stable name, e.g. `m042_femband`.
    pub name: String,
    /// Generator family tag.
    pub family: &'static str,
    /// The spec.
    pub spec: GenSpec,
    /// Generation seed.
    pub seed: u64,
    /// The nnz this entry was sized for.
    pub target_nnz: usize,
}

impl CorpusEntry {
    /// Materializes the matrix.
    pub fn generate(&self) -> Csr {
        recode_sparse::gen::generate(&self.spec, self.seed)
    }
}

/// Builds the deterministic 369-entry corpus.
pub fn corpus(scale: CorpusScale, seed: u64) -> Vec<CorpusEntry> {
    let (lo, hi) = scale.nnz_range();
    let mut state = seed ^ 0xC0_8215;
    (0..CORPUS_SIZE)
        .map(|i| {
            // Log-uniform nnz target.
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let target = (lo.ln() + u * (hi.ln() - lo.ln())).exp() as usize;
            let entry_seed = splitmix64(&mut state);
            let variant = splitmix64(&mut state);
            let spec = spec_for(i % 11, target, variant);
            CorpusEntry {
                name: format!("m{i:03}_{}", spec.family()),
                family: spec.family(),
                spec,
                seed: entry_seed,
                target_nnz: target,
            }
        })
        .collect()
}

/// Materializes the whole corpus in parallel. Memory note: at `Medium`
/// scale the corpus holds ~3e8 total non-zeros (~4 GB); prefer streaming
/// with [`corpus`] + [`CorpusEntry::generate`] per entry for large scales.
pub fn generate_all(scale: CorpusScale, seed: u64) -> Vec<(CorpusEntry, Csr)> {
    corpus(scale, seed)
        .into_par_iter()
        .map(|e| {
            let m = e.generate();
            (e, m)
        })
        .collect()
}

/// Public lookup: builds a spec for `family` sized for `target` non-zeros
/// (used by the `recode gen` CLI). Returns `None` for unknown families.
pub fn spec_for_family(family: &str, target: usize, variant: u64) -> Option<GenSpec> {
    let idx = match family {
        "stencil2d" => 0,
        "stencil2d9" => 1,
        "stencil3d" => 2,
        "multidiag" => 3,
        "femband" => 4,
        "blockjac" => 5,
        "circuit" => 6,
        "rmat" => 7,
        "erdos" => 8,
        "smallworld" => 9,
        "laplacian" => 10,
        _ => return None,
    };
    Some(spec_for(idx, target, variant))
}

/// Chooses family parameters to hit `target` non-zeros.
fn spec_for(family: usize, target: usize, variant: u64) -> GenSpec {
    let t = target as f64;
    let pick = |choices: &[ValueModel]| choices[(variant % choices.len() as u64) as usize];
    match family {
        0 => {
            // 5-point 2D stencil: nnz ~ 5n.
            let n = (t / 5.0).max(16.0);
            let side = n.sqrt().ceil() as usize;
            GenSpec::Stencil2D {
                nx: side,
                ny: side,
                points: 5,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 2048 },
                    ValueModel::StencilCoeffs,
                ]),
            }
        }
        1 => {
            // 9-point 2D stencil: nnz ~ 9n.
            let n = (t / 9.0).max(16.0);
            let side = n.sqrt().ceil() as usize;
            GenSpec::Stencil2D {
                nx: side,
                ny: side,
                points: 9,
                values: pick(&[
                    ValueModel::QuantizedGaussian { levels: 1024 },
                    ValueModel::UniformRandom,
                    ValueModel::MixedRepeated { distinct: 500 },
                ]),
            }
        }
        2 => {
            // 27-point 3D stencil: nnz ~ 27n.
            let n = (t / 27.0).max(27.0);
            let side = n.cbrt().ceil() as usize;
            GenSpec::Stencil3D {
                nx: side,
                ny: side,
                nz: side,
                points: 27,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 4096 },
                ]),
            }
        }
        3 => {
            // Multi-diagonal, 5-9 diagonals.
            let k = 5 + 2 * (variant % 3) as usize;
            let n = (t / k as f64).max(64.0) as usize;
            let mut offsets: Vec<i64> = vec![0];
            for i in 1..=(k - 1) / 2 {
                let off = (i as i64) * (1 + (variant % 7) as i64);
                offsets.push(off.min(n as i64 - 1));
                offsets.push(-(off.min(n as i64 - 1)));
            }
            GenSpec::MultiDiagonal {
                n,
                offsets,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 1024 },
                    ValueModel::MixedRepeated { distinct: 200 },
                ]),
            }
        }
        4 => {
            // FEM band.
            let band = 8 + (variant % 5) as usize * 8;
            let fill = 0.35 + (variant % 4) as f64 * 0.15;
            let n = (t / (1.0 + 2.0 * band as f64 * fill)).max(64.0) as usize;
            GenSpec::FemBand {
                n,
                band,
                fill,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 2048 },
                    ValueModel::MixedRepeated { distinct: 1000 },
                ]),
            }
        }
        5 => {
            // Block Jacobian.
            let block = 8 + (variant % 3) as usize * 8;
            let coupling = 1.0 + (variant % 3) as f64;
            let n = (t / (block as f64 + coupling)).max(1.0) as usize;
            let nblocks = (n / block).max(1);
            GenSpec::BlockJacobian {
                nblocks,
                block,
                coupling,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 4096 },
                ]),
            }
        }
        6 => {
            // Circuit.
            let deg = 3.0 + (variant % 4) as f64;
            let hubs = 2 + (variant % 3) as usize;
            // nnz ~ n(1 + deg) + 2*hubs*n.
            let n = (t / (1.0 + deg + 2.0 * hubs as f64)).max(64.0) as usize;
            GenSpec::Circuit {
                n,
                avg_deg: deg,
                hubs,
                values: pick(&[
                    ValueModel::QuantizedGaussian { levels: 4096 },
                    ValueModel::UniformRandom,
                ]),
            }
        }
        7 => {
            // RMAT: nnz ~ 0.85 * ef * 2^s after dedup.
            let ef = 8 + (variant % 3) as usize * 4;
            let scale_bits = ((t / (0.85 * ef as f64)).log2().round() as u8).clamp(8, 24);
            GenSpec::Rmat {
                scale: scale_bits,
                edge_factor: ef,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::Ones,
                    ValueModel::QuantizedGaussian { levels: 2048 },
                ]),
            }
        }
        8 => {
            // Erdős–Rényi.
            let deg = 6.0 + (variant % 5) as f64 * 2.0;
            let n = (t / deg).max(64.0) as usize;
            GenSpec::ErdosRenyi {
                n,
                avg_deg: deg,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 4096 },
                ]),
            }
        }
        9 => {
            // Small world.
            let k = 2 + (variant % 4) as usize;
            let n = (t / (2.0 * k as f64)).max(64.0) as usize;
            GenSpec::SmallWorld {
                n,
                k,
                rewire: 0.02 + (variant % 5) as f64 * 0.04,
                values: pick(&[
                    ValueModel::UniformRandom,
                    ValueModel::QuantizedGaussian { levels: 1024 },
                    ValueModel::Ones,
                ]),
            }
        }
        _ => {
            // Laplacian of RMAT: nnz ~ 2 * 0.85 * ef * 2^s.
            let ef = 4 + (variant % 3) as usize * 2;
            let scale_bits = ((t / (1.7 * ef as f64)).log2().round() as u8).clamp(8, 24);
            GenSpec::Laplacian { scale: scale_bits, edge_factor: ef }
        }
    }
}

/// Kronecker appears in the corpus through dedicated entries rather than the
/// 11-way rotation (its sizes are quantized to powers of 3 and would skew
/// the nnz distribution); expose a helper for ablations.
pub fn kronecker_entry(power: u8, seed: u64) -> CorpusEntry {
    let spec = GenSpec::Kronecker { base: KroneckerBase::Star, power, values: ValueModel::Ones };
    CorpusEntry {
        name: format!("kron_p{power}"),
        family: spec.family(),
        spec,
        seed,
        target_nnz: 7usize.pow(power as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_369_deterministic_entries() {
        let a = corpus(CorpusScale::Small, 42);
        let b = corpus(CorpusScale::Small, 42);
        assert_eq!(a.len(), CORPUS_SIZE);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.seed, y.seed);
        }
        // A different master seed gives a different corpus.
        let c = corpus(CorpusScale::Small, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.spec != y.spec));
    }

    #[test]
    fn all_families_are_represented() {
        let entries = corpus(CorpusScale::Small, 1);
        let mut fams: Vec<&str> = entries.iter().map(|e| e.family).collect();
        fams.sort_unstable();
        fams.dedup();
        assert!(fams.len() >= 10, "families: {fams:?}");
    }

    #[test]
    fn sampled_entries_hit_their_nnz_targets_roughly() {
        let entries = corpus(CorpusScale::Small, 7);
        for e in entries.iter().step_by(37) {
            let m = e.generate();
            let ratio = m.nnz() as f64 / e.target_nnz as f64;
            assert!(
                (0.2..5.0).contains(&ratio),
                "{}: target {} got {} (ratio {ratio:.2})",
                e.name,
                e.target_nnz,
                m.nnz()
            );
        }
    }

    #[test]
    fn nnz_targets_are_log_uniform_within_range() {
        let (lo, hi) = CorpusScale::Small.nnz_range();
        let entries = corpus(CorpusScale::Small, 9);
        assert!(entries
            .iter()
            .all(|e| { (e.target_nnz as f64) >= lo * 0.99 && (e.target_nnz as f64) <= hi * 1.01 }));
        // Spread check: both halves of the log range are populated.
        let mid = (lo.ln() + (hi.ln() - lo.ln()) / 2.0).exp();
        let below = entries.iter().filter(|e| (e.target_nnz as f64) < mid).count();
        assert!(below > CORPUS_SIZE / 4 && below < 3 * CORPUS_SIZE / 4);
    }

    #[test]
    fn spec_for_family_covers_all_names() {
        for f in [
            "stencil2d",
            "stencil2d9",
            "stencil3d",
            "multidiag",
            "femband",
            "blockjac",
            "circuit",
            "rmat",
            "erdos",
            "smallworld",
            "laplacian",
        ] {
            let spec = spec_for_family(f, 50_000, 3).unwrap();
            let m = recode_sparse::gen::generate(&spec, 1);
            assert!(m.nnz() > 5_000, "{f}: {}", m.nnz());
        }
        assert!(spec_for_family("nope", 1000, 0).is_none());
    }

    #[test]
    fn kronecker_helper_generates() {
        let e = kronecker_entry(6, 3);
        let m = e.generate();
        assert_eq!(m.nnz(), 7usize.pow(6));
    }
}
