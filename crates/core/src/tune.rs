//! Per-matrix auto-tuning: search kernel × codec-stage subset × block
//! size, select by deterministic modeled cycles, persist the winner.
//!
//! The paper's thesis is that in a data-movement-limited world the right
//! recoding/kernel choice is *per matrix* — a stencil wants its diagonals
//! pulled dense, a power-law graph wants load-balanced CSR, a short-row
//! circuit matrix wants SELL-C-σ's sorted slices. This module makes that
//! choice searched and persisted instead of hard-coded:
//!
//! * **Search space** — every [`SpmvKernel`] × every [`StageSubset`]
//!   (DSH / DS / Snappy-only) × every block size in [`BLOCK_SIZES`].
//!   Decode cost depends only on the codec candidate and multiply cost
//!   only on the kernel, so the search evaluates `stages × blocks` decode
//!   simulations plus `kernels` multiply models, then scores the full
//!   cross product.
//! * **Selection** — purely by modeled cycles from the cycle-exact lane
//!   simulator and the bandwidth-bound multiply model, so the same matrix
//!   and seed produce an identical [`TunedConfig`] on every host and
//!   under any `RECODE_TUNE_TRIALS` resizing. Wall-clock timings (best of
//!   [`TuneOptions::trials`] reps) ride along in the [`CandidateScore`]
//!   report for the human, but never influence the winner.
//! * **Tiebreak** — lexicographic on (modeled total cycles, wire bytes
//!   per nnz, stage-subset order, block size, kernel order), so ties
//!   resolve identically everywhere.
//! * **Persistence** — the winner is sealed as a `recode-tuned/v1` JSON
//!   document (via the dependency-free [`crate::json`] writer, so write →
//!   read → write round-trips byte-for-byte) keyed by an FNV-1a digest of
//!   the matrix. Loading validates schema and digest with typed
//!   [`TuneError`]s — a stale tuning is an error, never a silent fallback.

use crate::arch::SystemConfig;
use crate::error::ExecError;
use crate::exec::RecodedSpmv;
use crate::json::{self, Json};
use recode_codec::block::CompressedBlock;
use recode_codec::pipeline::MatrixCodecConfig;
use recode_sparse::formats::{PartialDiag, SellCs};
use recode_sparse::spmv::pdiag::DEFAULT_MIN_OCCUPANCY;
use recode_sparse::spmv::sellcs::{DEFAULT_C, DEFAULT_SIGMA};
use recode_sparse::spmv::{spmv_with, spmv_with_into, SpmvKernel};
use recode_sparse::Csr;
use recode_udp::isa::SCRATCHPAD_BYTES;
use recode_udp::progs::DshDecoder;
use std::fmt;

/// Schema tag of the persisted tuned-config document.
pub const TUNED_SCHEMA: &str = "recode-tuned/v1";

/// Block sizes the search sweeps (uncompressed bytes per codec block).
/// All at or below the 8 KB UDP default so every candidate fits lane
/// local memory.
pub const BLOCK_SIZES: [usize; 3] = [2048, 4096, 8192];

/// Environment variable resizing the wall-clock measurement reps.
/// Informational only: the selected config must not depend on it.
pub const TRIALS_ENV: &str = "RECODE_TUNE_TRIALS";

/// Codec stage subsets the search sweeps, mirroring the ablation presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageSubset {
    /// Delta+Snappy+Huffman indices, Snappy+Huffman values (paper default).
    Dsh,
    /// Delta+Snappy indices, Snappy values (no Huffman).
    Ds,
    /// Snappy only on both streams (the CPU-baseline pipeline).
    Snappy,
}

impl StageSubset {
    /// All subsets, in tiebreak order.
    pub const ALL: [StageSubset; 3] = [StageSubset::Dsh, StageSubset::Ds, StageSubset::Snappy];

    /// Stable machine name used by the persistence schema and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            StageSubset::Dsh => "dsh",
            StageSubset::Ds => "ds",
            StageSubset::Snappy => "snappy",
        }
    }

    /// Inverse of [`StageSubset::name`].
    pub fn parse_name(s: &str) -> Option<StageSubset> {
        StageSubset::ALL.into_iter().find(|st| st.name() == s)
    }

    /// The matrix codec config for this subset at the given block size.
    pub fn codec_config(self, block_bytes: usize) -> MatrixCodecConfig {
        let mut c = match self {
            StageSubset::Dsh => MatrixCodecConfig::udp_dsh(),
            StageSubset::Ds => MatrixCodecConfig::udp_ds(),
            StageSubset::Snappy => MatrixCodecConfig::cpu_snappy(),
        };
        c.index.block_bytes = block_bytes;
        c.value.block_bytes = block_bytes;
        c
    }
}

/// Typed failures for tuning and tuned-config persistence.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The document's schema tag is not [`TUNED_SCHEMA`].
    SchemaMismatch {
        /// What the document carried.
        found: String,
    },
    /// The config was tuned for a different matrix (digest or shape drift).
    DigestMismatch {
        /// Digest of the matrix being run.
        expected: String,
        /// Digest recorded in the config.
        found: String,
    },
    /// An already-recoded operand carries a different codec stream than
    /// the tuned config prescribes.
    CodecMismatch,
    /// The document is not a valid tuned-config JSON object.
    Malformed(String),
    /// Compression or simulated decode failed while scoring a candidate.
    Exec(ExecError),
    /// A kernel disagreed with the serial reference during tuning — the
    /// tuner refuses to crown a kernel the differential oracle rejects.
    KernelDiverged {
        /// The offending kernel.
        kernel: &'static str,
        /// Worst relative error observed.
        rel_err: f64,
    },
    /// A codec candidate's measured lane cycles fell outside the certified
    /// static envelope of its decoder programs — the analytic decode model
    /// and the cycle-bound certifier disagree, so the tuner refuses to
    /// score the candidate (a wrong model would crown a wrong winner).
    BoundViolated {
        /// Stage subset of the offending candidate.
        stages: &'static str,
        /// Block size of the offending candidate.
        block_bytes: usize,
        /// Measured busy cycles across both streams.
        busy_cycles: u64,
        /// Certified minimum total.
        min: u64,
        /// Certified maximum total.
        max: u64,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::SchemaMismatch { found } => {
                write!(f, "tuned config schema mismatch: want {TUNED_SCHEMA}, found {found}")
            }
            TuneError::DigestMismatch { expected, found } => write!(
                f,
                "tuned config was built for a different matrix: digest {found} vs this \
                 matrix's {expected} — re-run `recode tune`"
            ),
            TuneError::CodecMismatch => write!(
                f,
                "recoded operand was compressed under a different codec config than the \
                 tuned config prescribes"
            ),
            TuneError::Malformed(why) => write!(f, "malformed tuned config: {why}"),
            TuneError::Exec(e) => write!(f, "candidate evaluation failed: {e}"),
            TuneError::KernelDiverged { kernel, rel_err } => write!(
                f,
                "kernel {kernel} diverged from the serial reference during tuning \
                 (worst rel err {rel_err:.3e})"
            ),
            TuneError::BoundViolated { stages, block_bytes, busy_cycles, min, max } => write!(
                f,
                "candidate {stages}/{block_bytes}B measured {busy_cycles} busy cycles, \
                 outside its certified envelope [{min}, {max}]"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<ExecError> for TuneError {
    fn from(e: ExecError) -> Self {
        TuneError::Exec(e)
    }
}

/// FNV-1a 64 digest over shape, structure, and value bits — the key a
/// [`TunedConfig`] is bound to.
pub fn matrix_digest(a: &Csr) -> String {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(a.nrows() as u64).to_le_bytes());
    eat(&(a.ncols() as u64).to_le_bytes());
    for &p in a.row_ptr() {
        eat(&(p as u64).to_le_bytes());
    }
    for &c in a.col_idx() {
        eat(&c.to_le_bytes());
    }
    for &v in a.values() {
        eat(&v.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

/// The persisted winner: everything `recode spmv` needs to reproduce the
/// tuned run, sealed under [`TUNED_SCHEMA`] and keyed by matrix digest.
///
/// Deliberately excludes wall-clock measurements: the config is a pure
/// function of (matrix, seed, search space), so the same tune command
/// reproduces it byte-for-byte on any host.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedConfig {
    /// [`matrix_digest`] of the matrix this config was tuned for.
    pub digest: String,
    /// Matrix shape, double-checked alongside the digest.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Seed the tuning probe vector was drawn from.
    pub seed: u64,
    /// Winning SpMV kernel.
    pub kernel: SpmvKernel,
    /// SELL-C-σ chunk height in effect (recorded even when unused).
    pub sell_c: usize,
    /// SELL-C-σ sorting window.
    pub sell_sigma: usize,
    /// Partially-diagonal extraction threshold, in percent.
    pub pdiag_occupancy_pct: u32,
    /// Winning codec stage subset.
    pub stages: StageSubset,
    /// Winning uncompressed block size.
    pub block_bytes: usize,
    /// Modeled decode cost of the winning codec candidate.
    pub modeled_decode_cycles: u64,
    /// Modeled multiply cost of the winning kernel.
    pub modeled_multiply_cycles: u64,
    /// Wire bytes per non-zero of the winning codec candidate.
    pub wire_bytes_per_nnz: f64,
    /// Size of the scored cross product.
    pub candidates: usize,
}

impl TunedConfig {
    /// Modeled end-to-end cost: decode plus multiply.
    pub fn modeled_total_cycles(&self) -> u64 {
        self.modeled_decode_cycles + self.modeled_multiply_cycles
    }

    /// The codec configuration the winner was scored with.
    pub fn codec_config(&self) -> MatrixCodecConfig {
        self.stages.codec_config(self.block_bytes)
    }

    /// Checks this config belongs to `a`.
    ///
    /// # Errors
    /// [`TuneError::DigestMismatch`] when the digest or shape differs.
    pub fn validate_for(&self, a: &Csr) -> Result<(), TuneError> {
        let expected = matrix_digest(a);
        if expected != self.digest
            || (a.nrows(), a.ncols(), a.nnz()) != (self.nrows, self.ncols, self.nnz)
        {
            return Err(TuneError::DigestMismatch { expected, found: self.digest.clone() });
        }
        Ok(())
    }

    /// Serializes as the ordered `recode-tuned/v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema", Json::Str(TUNED_SCHEMA.into()))
            .set("digest", Json::Str(self.digest.clone()))
            .set(
                "matrix",
                Json::obj()
                    .set("nrows", Json::U64(self.nrows as u64))
                    .set("ncols", Json::U64(self.ncols as u64))
                    .set("nnz", Json::U64(self.nnz as u64)),
            )
            .set("seed", Json::U64(self.seed))
            .set("kernel", Json::Str(self.kernel.name().into()))
            .set(
                "kernel_params",
                Json::obj()
                    .set("sell_c", Json::U64(self.sell_c as u64))
                    .set("sell_sigma", Json::U64(self.sell_sigma as u64))
                    .set("pdiag_occupancy_pct", Json::U64(u64::from(self.pdiag_occupancy_pct))),
            )
            .set(
                "codec",
                Json::obj()
                    .set("stages", Json::Str(self.stages.name().into()))
                    .set("block_bytes", Json::U64(self.block_bytes as u64)),
            )
            .set(
                "modeled",
                Json::obj()
                    .set("decode_cycles", Json::U64(self.modeled_decode_cycles))
                    .set("multiply_cycles", Json::U64(self.modeled_multiply_cycles))
                    .set("total_cycles", Json::U64(self.modeled_total_cycles()))
                    .set("wire_bytes_per_nnz", Json::F64(self.wire_bytes_per_nnz)),
            )
            .set("candidates", Json::U64(self.candidates as u64))
    }

    /// Stable pretty-printed bytes of [`TunedConfig::to_json`] (with a
    /// trailing newline, matching the repo's other JSON artifacts).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// Parses and schema-checks a persisted document.
    ///
    /// # Errors
    /// [`TuneError::SchemaMismatch`] or [`TuneError::Malformed`].
    pub fn from_json_str(text: &str) -> Result<TunedConfig, TuneError> {
        let doc = json::parse(text).map_err(TuneError::Malformed)?;
        let str_field = |key: &str| -> Result<String, TuneError> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| TuneError::Malformed(format!("missing string field `{key}`")))
        };
        let schema = str_field("schema")?;
        if schema != TUNED_SCHEMA {
            return Err(TuneError::SchemaMismatch { found: schema });
        }
        let u64_at = |path: &[&str]| -> Result<u64, TuneError> {
            let mut node = &doc;
            for key in path {
                node = node
                    .get(key)
                    .ok_or_else(|| TuneError::Malformed(format!("missing field `{key}`")))?;
            }
            node.as_u64().ok_or_else(|| {
                TuneError::Malformed(format!("field `{}` is not an integer", path.join(".")))
            })
        };
        let kernel_name = str_field("kernel")?;
        let kernel = SpmvKernel::parse_name(&kernel_name)
            .ok_or_else(|| TuneError::Malformed(format!("unknown kernel `{kernel_name}`")))?;
        let stages_name = doc
            .get("codec")
            .and_then(|c| c.get("stages"))
            .and_then(Json::as_str)
            .ok_or_else(|| TuneError::Malformed("missing field `codec.stages`".into()))?;
        let stages = StageSubset::parse_name(stages_name)
            .ok_or_else(|| TuneError::Malformed(format!("unknown stage subset `{stages_name}`")))?;
        let wire_bytes_per_nnz = doc
            .get("modeled")
            .and_then(|m| m.get("wire_bytes_per_nnz"))
            .and_then(Json::as_f64)
            .ok_or_else(|| {
                TuneError::Malformed("missing field `modeled.wire_bytes_per_nnz`".into())
            })?;
        Ok(TunedConfig {
            digest: str_field("digest")?,
            nrows: u64_at(&["matrix", "nrows"])? as usize,
            ncols: u64_at(&["matrix", "ncols"])? as usize,
            nnz: u64_at(&["matrix", "nnz"])? as usize,
            seed: u64_at(&["seed"])?,
            kernel,
            sell_c: u64_at(&["kernel_params", "sell_c"])? as usize,
            sell_sigma: u64_at(&["kernel_params", "sell_sigma"])? as usize,
            pdiag_occupancy_pct: u64_at(&["kernel_params", "pdiag_occupancy_pct"])? as u32,
            stages,
            block_bytes: u64_at(&["codec", "block_bytes"])? as usize,
            modeled_decode_cycles: u64_at(&["modeled", "decode_cycles"])?,
            modeled_multiply_cycles: u64_at(&["modeled", "multiply_cycles"])?,
            wire_bytes_per_nnz,
            candidates: u64_at(&["candidates"])? as usize,
        })
    }
}

/// Tuning knobs. Selection is invariant to `trials`; only the reported
/// wall-clock numbers change with it.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Seed for the probe vector (wall measurement + differential check).
    pub seed: u64,
    /// Wall-clock reps per kernel (best-of). `0` skips wall measurement.
    pub trials: usize,
    /// System model the candidates are scored against.
    pub sys: SystemConfig,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions { seed: 2019, trials: 3, sys: SystemConfig::ddr4() }
    }
}

/// Parses a [`TRIALS_ENV`] value into a wall-trial count. Pure so both the
/// accept and the reject path are testable without mutating the process
/// environment (env-var mutation races under the parallel test harness).
/// `0` is valid — it skips wall measurement entirely.
///
/// # Errors
/// A human-readable message naming the variable and the offending value.
pub fn parse_tune_trials(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    trimmed.parse::<usize>().map_err(|_| {
        format!("{TRIALS_ENV} is not a trial count: \"{raw}\" (expected a non-negative integer)")
    })
}

impl TuneOptions {
    /// Default options with `trials` resized from [`TRIALS_ENV`]. A garbage
    /// value is *not* silently ignored: a warning naming the value goes to
    /// stderr and the default trial count is used.
    pub fn from_env() -> Self {
        let mut o = TuneOptions::default();
        if let Ok(v) = std::env::var(TRIALS_ENV) {
            match parse_tune_trials(&v) {
                Ok(t) => o.trials = t,
                Err(msg) => {
                    eprintln!(
                        "warning: ignoring {msg}; using the default of {} trial(s)",
                        o.trials
                    );
                }
            }
        }
        o
    }
}

/// One scored (kernel, stages, block size) combination.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Kernel of this combination.
    pub kernel: SpmvKernel,
    /// Codec stage subset.
    pub stages: StageSubset,
    /// Uncompressed block size.
    pub block_bytes: usize,
    /// Modeled decode cost (lane makespan vs memory/DMA streaming).
    pub decode_cycles: u64,
    /// Modeled multiply cost (bandwidth-bound, kernel-specific traffic).
    pub multiply_cycles: u64,
    /// Wire bytes per non-zero of the codec candidate.
    pub wire_bytes_per_nnz: f64,
    /// Best-of-trials wall time for one multiply with this kernel
    /// (informational; 0 when `trials == 0`).
    pub wall_ns: u64,
}

impl CandidateScore {
    /// Modeled end-to-end cost.
    pub fn total_cycles(&self) -> u64 {
        self.decode_cycles + self.multiply_cycles
    }
}

/// Tuning result: the sealed winner plus the full scored field.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winner, ready to persist.
    pub config: TunedConfig,
    /// Every scored combination, in (stages, block, kernel) search order.
    pub candidates: Vec<CandidateScore>,
}

/// Deterministic probe vector in [-1, 1) (SplitMix64 — same generator the
/// differential suite uses).
fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Modeled SpMV traffic per non-zero for a kernel on this matrix. CSR
/// kernels move 12 B/nnz plus an 8 B per-row loop/row-ptr overhead;
/// merge-path adds its partition descriptors; the grown kernels report
/// their format's own accounting (padding included for SELL-C-σ, dense
/// diagonal savings for partially-diagonal).
fn kernel_traffic_bpnnz(kernel: SpmvKernel, a: &Csr) -> f64 {
    let nnz = a.nnz().max(1) as f64;
    let row_overhead = 8.0 * a.nrows() as f64 / nnz;
    match kernel {
        SpmvKernel::Serial | SpmvKernel::RowParallel => 12.0 + row_overhead,
        SpmvKernel::MergePath => 12.0 + row_overhead + 8.0 / 256.0,
        SpmvKernel::SellCSigma => SellCs::from_csr(a, DEFAULT_C, DEFAULT_SIGMA)
            .map_or(12.0 + row_overhead, |s| s.bytes_per_nnz()),
        SpmvKernel::PartialDiagonal => PartialDiag::from_csr(a, DEFAULT_MIN_OCCUPANCY)
            .map_or(12.0 + row_overhead, |p| p.bytes_per_nnz() + row_overhead),
    }
}

/// Modeled multiply cost in accelerator cycles: bandwidth-bound at the
/// kernel's traffic, with a single-thread cap for the serial kernel and a
/// critical-row bound for row-parallel (the heaviest row runs on one
/// thread at a latency-bound scalar rate — the imbalance merge-path
/// exists to fix).
fn modeled_multiply_cycles(sys: &SystemConfig, a: &Csr, kernel: SpmvKernel) -> u64 {
    let nnz = a.nnz();
    if nnz == 0 {
        return 0;
    }
    let flops = 2.0 * nnz as f64;
    let bw_rate = sys.cpu.spmv_flops(&sys.mem, kernel_traffic_bpnnz(kernel, a));
    let rate = match kernel {
        // One core cannot saturate socket bandwidth; calibrate at a quarter.
        SpmvKernel::Serial => bw_rate * 0.25,
        _ => bw_rate,
    };
    let mut cycles = (flops / rate * sys.udp.freq_hz).ceil() as u64;
    if kernel == SpmvKernel::RowParallel {
        let max_row = (0..a.nrows()).map(|r| a.row(r).0.len()).max().unwrap_or(0);
        // Latency-bound scalar rate: ~1 flop per CPU cycle on a gather.
        let critical = (2.0 * max_row as f64 / sys.cpu.clock_hz * sys.udp.freq_hz).ceil() as u64;
        cycles = cycles.max(critical);
    }
    cycles
}

/// Modeled decode cost of one codec candidate: the cycle-exact lane
/// makespan versus the modeled memory-stream + DMA time, whichever binds.
fn modeled_decode_cycles(sys: &SystemConfig, stats: &crate::exec::ExecStats) -> u64 {
    let stream = ((stats.mem_stream_seconds + stats.dma_seconds) * sys.udp.freq_hz).ceil() as u64;
    stats.accel.makespan_cycles.max(stream)
}

/// Certified cycle envelope for decoding one stream's blocks through
/// `decoder`: the sum of every stage image's statically certified
/// [`recode_udp::CycleBound`] across all blocks. The first active stage
/// sees the block's actual compressed bit length; later stages see at most
/// the lane output window (half the scratchpad), which caps any
/// intermediate expansion. `None` when a stage carries no certified max
/// (the check is then vacuous, never wrong).
fn certified_stream_envelope(
    decoder: &DshDecoder,
    blocks: &[CompressedBlock],
) -> Option<(u64, u64)> {
    let later_stage_bits = 8 * (SCRATCHPAD_BYTES as u64 / 2);
    let stages: Vec<_> = [&decoder.huffman, &decoder.snappy, &decoder.delta]
        .into_iter()
        .flatten()
        .map(|img| img.verify_report.cycle_bound)
        .collect();
    let (mut min, mut max) = (0u64, 0u64);
    for block in blocks {
        for (k, bound) in stages.iter().enumerate() {
            let bound = (*bound)?;
            let bits = if k == 0 { block.bit_len as u64 } else { later_stage_bits };
            min = min.saturating_add(bound.min);
            max = max.saturating_add(bound.max?.max_for(bits));
        }
    }
    Some((min, max))
}

/// Cross-checks a candidate's measured busy cycles against the certified
/// envelopes of its index and value decoders. Degraded runs (retries or
/// fallbacks) are exempt: their accounting mixes re-run and zero-cycle
/// jobs, so the per-attempt envelope does not aggregate cleanly.
///
/// # Errors
/// [`TuneError::BoundViolated`] when the measurement escapes the envelope.
fn check_certified_bounds(
    recoded: &RecodedSpmv,
    stats: &crate::exec::ExecStats,
    stages: StageSubset,
    block_bytes: usize,
) -> Result<(), TuneError> {
    if stats.degraded {
        return Ok(());
    }
    let c = recoded.compressed();
    let index = certified_stream_envelope(recoded.index_decoder(), &c.index_stream.blocks);
    let value = certified_stream_envelope(recoded.value_decoder(), &c.value_stream.blocks);
    let (Some((imin, imax)), Some((vmin, vmax))) = (index, value) else {
        return Ok(());
    };
    let (min, max) = (imin.saturating_add(vmin), imax.saturating_add(vmax));
    let busy_cycles = stats.accel.busy_cycles;
    if busy_cycles < min || busy_cycles > max {
        return Err(TuneError::BoundViolated {
            stages: stages.name(),
            block_bytes,
            busy_cycles,
            min,
            max,
        });
    }
    Ok(())
}

/// Tunes `a`: scores the full search space and seals the winner.
///
/// # Errors
/// [`TuneError::Exec`] when a candidate fails to compress or decode;
/// [`TuneError::KernelDiverged`] when a kernel flunks the differential
/// check against the serial reference.
pub fn tune_matrix(a: &Csr, opts: &TuneOptions) -> Result<TuneOutcome, TuneError> {
    let sys = &opts.sys;
    let x = probe_vector(a.ncols(), opts.seed);
    let y_ref = spmv_with(SpmvKernel::Serial, a, &x);

    // Per-kernel multiply model + differential check + wall measurement.
    let mut multiply = Vec::with_capacity(SpmvKernel::ALL.len());
    for kernel in SpmvKernel::ALL {
        let mut y = vec![0.0; a.nrows()];
        spmv_with_into(kernel, a, &x, &mut y);
        let worst =
            y.iter().zip(&y_ref).fold(0.0f64, |w, (g, r)| w.max((g - r).abs() / r.abs().max(1.0)));
        if worst > 1e-9 {
            return Err(TuneError::KernelDiverged { kernel: kernel.name(), rel_err: worst });
        }
        let mut wall_ns = 0u64;
        for _ in 0..opts.trials {
            let t0 = std::time::Instant::now();
            spmv_with_into(kernel, a, &x, &mut y);
            let ns = t0.elapsed().as_nanos() as u64;
            wall_ns = if wall_ns == 0 { ns } else { wall_ns.min(ns) };
        }
        multiply.push((kernel, modeled_multiply_cycles(sys, a, kernel), wall_ns));
    }

    // Per-codec-candidate decode model (kernel-independent).
    let mut candidates = Vec::new();
    for stages in StageSubset::ALL {
        for block_bytes in BLOCK_SIZES {
            let recoded = RecodedSpmv::new(a, stages.codec_config(block_bytes))?;
            let (_, stats) = recoded.decompress_via_udp(sys)?;
            check_certified_bounds(&recoded, &stats, stages, block_bytes)?;
            let decode_cycles = modeled_decode_cycles(sys, &stats);
            let wire_bytes_per_nnz = recoded.compressed().bytes_per_nnz();
            for &(kernel, multiply_cycles, wall_ns) in &multiply {
                candidates.push(CandidateScore {
                    kernel,
                    stages,
                    block_bytes,
                    decode_cycles,
                    multiply_cycles,
                    wire_bytes_per_nnz,
                    wall_ns,
                });
            }
        }
    }

    let order_of = |c: &CandidateScore| {
        let stage_ix = StageSubset::ALL.iter().position(|&s| s == c.stages).unwrap_or(0);
        let kernel_ix = SpmvKernel::ALL.iter().position(|&k| k == c.kernel).unwrap_or(0);
        (c.total_cycles(), c.wire_bytes_per_nnz, stage_ix, c.block_bytes, kernel_ix)
    };
    let winner = candidates
        .iter()
        .min_by(|l, r| {
            let (lt, lb, ls, lbl, lk) = order_of(l);
            let (rt, rb, rs, rbl, rk) = order_of(r);
            lt.cmp(&rt)
                .then(lb.total_cmp(&rb))
                .then(ls.cmp(&rs))
                .then(lbl.cmp(&rbl))
                .then(lk.cmp(&rk))
        })
        .expect("search space is non-empty");

    let config = TunedConfig {
        digest: matrix_digest(a),
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: a.nnz(),
        seed: opts.seed,
        kernel: winner.kernel,
        sell_c: DEFAULT_C,
        sell_sigma: DEFAULT_SIGMA,
        pdiag_occupancy_pct: (DEFAULT_MIN_OCCUPANCY * 100.0).round() as u32,
        stages: winner.stages,
        block_bytes: winner.block_bytes,
        modeled_decode_cycles: winner.decode_cycles,
        modeled_multiply_cycles: winner.multiply_cycles,
        wire_bytes_per_nnz: winner.wire_bytes_per_nnz,
        candidates: candidates.len(),
    };
    Ok(TuneOutcome { config, candidates })
}

/// The un-tuned reference point `recode spmv` uses by default: row-parallel
/// CSR over the paper's DSH pipeline at the 8 KB UDP block size. The
/// tuned-vs-default comparisons in EXPERIMENTS.md measure against this.
pub fn default_candidate(a: &Csr, sys: &SystemConfig) -> Result<CandidateScore, TuneError> {
    let stages = StageSubset::Dsh;
    let block_bytes = 8192;
    let recoded = RecodedSpmv::new(a, stages.codec_config(block_bytes))?;
    let (_, stats) = recoded.decompress_via_udp(sys)?;
    check_certified_bounds(&recoded, &stats, stages, block_bytes)?;
    Ok(CandidateScore {
        kernel: SpmvKernel::RowParallel,
        stages,
        block_bytes,
        decode_cycles: modeled_decode_cycles(sys, &stats),
        multiply_cycles: modeled_multiply_cycles(sys, a, SpmvKernel::RowParallel),
        wire_bytes_per_nnz: recoded.compressed().bytes_per_nnz(),
        wall_ns: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_sparse::gen::{generate, GenSpec, ValueModel};

    fn stencil() -> Csr {
        generate(
            &GenSpec::Stencil2D { nx: 12, ny: 12, points: 5, values: ValueModel::StencilCoeffs },
            7,
        )
    }

    fn opts(trials: usize) -> TuneOptions {
        TuneOptions { seed: 7, trials, sys: SystemConfig::ddr4() }
    }

    /// A matrix with the same structure as [`stencil`] but different values.
    fn stencil_ones() -> Csr {
        generate(&GenSpec::Stencil2D { nx: 12, ny: 12, points: 5, values: ValueModel::Ones }, 7)
    }

    #[test]
    fn digest_is_stable_and_structure_sensitive() {
        let a = stencil();
        assert_eq!(matrix_digest(&a), matrix_digest(&a.clone()));
        // Same structure, different value bits — the digest must move.
        assert_ne!(matrix_digest(&a), matrix_digest(&stencil_ones()));
        // Different structure entirely.
        let b = generate(
            &GenSpec::Stencil2D { nx: 13, ny: 12, points: 5, values: ValueModel::StencilCoeffs },
            7,
        );
        assert_ne!(matrix_digest(&a), matrix_digest(&b));
    }

    #[test]
    fn selection_is_invariant_to_trials_resizing() {
        let a = stencil();
        let lean = tune_matrix(&a, &opts(0)).unwrap();
        let rich = tune_matrix(&a, &opts(2)).unwrap();
        assert_eq!(lean.config, rich.config);
        assert_eq!(lean.candidates.len(), rich.candidates.len());
        assert_eq!(
            lean.candidates.len(),
            SpmvKernel::ALL.len() * StageSubset::ALL.len() * BLOCK_SIZES.len()
        );
    }

    #[test]
    fn stencil_prefers_the_partially_diagonal_kernel() {
        // A 5-point stencil is pure diagonal runs: the modeled traffic of
        // the partially-diagonal kernel (~8 B/nnz + row walk) beats every
        // CSR kernel's 12+, so the tuner must pick it.
        let a = stencil();
        let outcome = tune_matrix(&a, &opts(0)).unwrap();
        assert_eq!(outcome.config.kernel, SpmvKernel::PartialDiagonal);
    }

    #[test]
    fn skewed_matrix_avoids_the_critical_row_bound() {
        // An arrow matrix: row 0 is fully dense, every other row holds one
        // diagonal entry. Row-parallel's critical-row term (the whole hub
        // row on one thread) dwarfs the bandwidth bound, so the tuner must
        // pick a load-balanced kernel instead.
        let n = 2048usize;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        col_idx.extend(0..n as u32);
        row_ptr.push(col_idx.len());
        for r in 1..n {
            col_idx.push(r as u32);
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0; col_idx.len()];
        let a = Csr::try_from_parts(n, n, row_ptr, col_idx, values).unwrap();
        let outcome = tune_matrix(&a, &opts(0)).unwrap();
        assert_ne!(outcome.config.kernel, SpmvKernel::RowParallel);
        assert_ne!(outcome.config.kernel, SpmvKernel::Serial);
    }

    #[test]
    fn persistence_round_trips_byte_for_byte() {
        let a = stencil();
        let outcome = tune_matrix(&a, &opts(0)).unwrap();
        let s1 = outcome.config.to_json_string();
        let parsed = TunedConfig::from_json_str(&s1).unwrap();
        assert_eq!(parsed, outcome.config);
        assert_eq!(parsed.to_json_string(), s1);
        parsed.validate_for(&a).unwrap();
    }

    #[test]
    fn certified_envelope_brackets_measured_busy_cycles() {
        // The cross-check tune_matrix applies per candidate, verified here
        // directly: every stage image certifies a bound, and the measured
        // busy cycles of a clean run land inside the summed envelope.
        let a = stencil();
        let sys = SystemConfig::ddr4();
        let recoded = RecodedSpmv::new(&a, StageSubset::Dsh.codec_config(4096)).unwrap();
        let (_, stats) = recoded.decompress_via_udp(&sys).unwrap();
        assert!(!stats.degraded);
        let c = recoded.compressed();
        let (imin, imax) =
            certified_stream_envelope(recoded.index_decoder(), &c.index_stream.blocks)
                .expect("every builtin stage must carry a certified bound");
        let (vmin, vmax) =
            certified_stream_envelope(recoded.value_decoder(), &c.value_stream.blocks)
                .expect("every builtin stage must carry a certified bound");
        let busy = stats.accel.busy_cycles;
        assert!(
            imin + vmin <= busy && busy <= imax + vmax,
            "busy {busy} outside [{}, {}]",
            imin + vmin,
            imax + vmax
        );
        check_certified_bounds(&recoded, &stats, StageSubset::Dsh, 4096).unwrap();
    }

    #[test]
    fn bound_violation_is_a_typed_error() {
        // A measurement outside the envelope must surface as BoundViolated
        // with the candidate's identity attached.
        let a = stencil();
        let sys = SystemConfig::ddr4();
        let recoded = RecodedSpmv::new(&a, StageSubset::Dsh.codec_config(4096)).unwrap();
        let (_, mut stats) = recoded.decompress_via_udp(&sys).unwrap();
        stats.accel.busy_cycles = u64::MAX;
        let err = check_certified_bounds(&recoded, &stats, StageSubset::Dsh, 4096).unwrap_err();
        assert!(matches!(err, TuneError::BoundViolated { stages: "dsh", block_bytes: 4096, .. }));
        assert!(err.to_string().contains("certified envelope"));
        // Degraded runs are exempt — the check must not fire on them.
        stats.degraded = true;
        check_certified_bounds(&recoded, &stats, StageSubset::Dsh, 4096).unwrap();
    }

    #[test]
    fn schema_and_digest_mismatches_are_typed_errors() {
        let a = stencil();
        let config = tune_matrix(&a, &opts(0)).unwrap().config;
        let tampered = config.to_json_string().replace(TUNED_SCHEMA, "recode-tuned/v9");
        assert!(matches!(
            TunedConfig::from_json_str(&tampered),
            Err(TuneError::SchemaMismatch { .. })
        ));
        assert!(matches!(
            config.validate_for(&stencil_ones()),
            Err(TuneError::DigestMismatch { .. })
        ));
        assert!(matches!(TunedConfig::from_json_str("{}"), Err(TuneError::Malformed(_))));
        assert!(matches!(TunedConfig::from_json_str("not json"), Err(TuneError::Malformed(_))));
    }

    #[test]
    fn tune_trials_parse_accepts_counts_and_rejects_garbage() {
        assert_eq!(parse_tune_trials("0"), Ok(0), "0 skips wall measurement and is valid");
        assert_eq!(parse_tune_trials("7"), Ok(7));
        assert_eq!(parse_tune_trials("  12  "), Ok(12), "whitespace is trimmed");
        for garbage in ["", "three", "-1", "1.5", "0x10"] {
            let err = parse_tune_trials(garbage).unwrap_err();
            assert!(err.contains(TRIALS_ENV), "error must name the variable: {err}");
            assert!(err.contains(garbage), "error must echo the value: {err}");
        }
    }
}
