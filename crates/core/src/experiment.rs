//! Per-figure experiment runners.
//!
//! Each function reproduces the data behind one (or one pair) of the
//! paper's figures and returns serializable rows; `crate::report` renders
//! them, and the `recode-bench` binaries drive them from the command line.

use crate::arch::SystemConfig;
use crate::corpus::CorpusEntry;
use crate::measure::{measure_udp_decomp, DecompMeasurement};
use crate::perfmodel::SpmvPerfModel;
use crate::power::PowerSavings;
use crate::seven;
use rayon::prelude::*;
use recode_codec::metrics::RAW_CSR_BYTES_PER_NNZ;
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_sparse::spmv::{spmv_with_into, SpmvKernel};
use recode_sparse::util::geometric_mean;
use recode_sparse::Csr;
use serde::{Deserialize, Serialize};

/// Default number of blocks simulated per stream when measuring UDP
/// throughput (evenly sampled; cycle counts extrapolate linearly).
pub const DEFAULT_BLOCK_SAMPLE: usize = 24;

// ---------------------------------------------------------------- Fig. 3

/// One matrix's CPU-only SpMV rates (modeled and host-measured).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Matrix name.
    pub name: String,
    /// Generator family.
    pub family: String,
    /// Non-zeros.
    pub nnz: usize,
    /// Modeled bandwidth-bound rate on the configured system (Gflop/s).
    pub modeled_gflops: f64,
    /// Host-machine measured rate with the row-parallel kernel (Gflop/s) —
    /// a sanity check that real kernels are memory-bound, not the
    /// reproduction target.
    pub host_gflops: f64,
}

/// Runs the Fig. 3 study on `entries`.
pub fn fig3_cpu_spmv(sys: &SystemConfig, entries: &[CorpusEntry]) -> Vec<Fig3Row> {
    let modeled = sys.cpu.spmv_flops(&sys.mem, RAW_CSR_BYTES_PER_NNZ) / 1e9;
    entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let x = vec![1.0f64; a.ncols()];
            let mut y = vec![0.0f64; a.nrows()];
            // Warm once, then time a few iterations.
            spmv_with_into(SpmvKernel::RowParallel, &a, &x, &mut y);
            let iters = (20_000_000 / a.nnz().max(1)).clamp(1, 50);
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                spmv_with_into(SpmvKernel::RowParallel, &a, &x, &mut y);
            }
            let secs = t0.elapsed().as_secs_f64();
            let host_gflops = (2.0 * a.nnz() as f64 * iters as f64) / secs / 1e9;
            Fig3Row {
                name: e.name.clone(),
                family: e.family.to_string(),
                nnz: a.nnz(),
                modeled_gflops: modeled,
                host_gflops,
            }
        })
        .collect()
}

// ---------------------------------------------------------- Figs. 10 / 11

/// Compressed sizes of one matrix under the three configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressionRow {
    /// Matrix name.
    pub name: String,
    /// Generator family.
    pub family: String,
    /// Non-zeros.
    pub nnz: usize,
    /// CPU Snappy (32 KB blocks) bytes/nnz — paper geomean 5.20.
    pub cpu_snappy_bpnnz: f64,
    /// UDP Delta+Snappy (8 KB blocks) bytes/nnz — paper geomean 5.92.
    pub ds_bpnnz: f64,
    /// UDP Delta+Snappy+Huffman bytes/nnz — paper geomean 5.00.
    pub dsh_bpnnz: f64,
}

/// Corpus-level geometric means for the three configurations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CompressionGeomeans {
    /// CPU Snappy geomean.
    pub cpu_snappy: f64,
    /// Delta+Snappy geomean.
    pub ds: f64,
    /// Delta+Snappy+Huffman geomean.
    pub dsh: f64,
}

/// Compresses every entry three ways (Figs. 10 and 11 share this data).
pub fn compression_study(entries: &[CorpusEntry]) -> Vec<CompressionRow> {
    entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let bpnnz = |cfg: MatrixCodecConfig| {
                CompressedMatrix::compress(&a, cfg)
                    .expect("corpus matrices satisfy codec preconditions")
                    .bytes_per_nnz()
            };
            CompressionRow {
                name: e.name.clone(),
                family: e.family.to_string(),
                nnz: a.nnz(),
                cpu_snappy_bpnnz: bpnnz(MatrixCodecConfig::cpu_snappy()),
                ds_bpnnz: bpnnz(MatrixCodecConfig::udp_ds()),
                dsh_bpnnz: bpnnz(MatrixCodecConfig::udp_dsh()),
            }
        })
        .collect()
}

/// Geometric means over a compression study.
pub fn compression_geomeans(rows: &[CompressionRow]) -> Option<CompressionGeomeans> {
    Some(CompressionGeomeans {
        cpu_snappy: geometric_mean(&rows.iter().map(|r| r.cpu_snappy_bpnnz).collect::<Vec<_>>())?,
        ds: geometric_mean(&rows.iter().map(|r| r.ds_bpnnz).collect::<Vec<_>>())?,
        dsh: geometric_mean(&rows.iter().map(|r| r.dsh_bpnnz).collect::<Vec<_>>())?,
    })
}

// ---------------------------------------------------------- Figs. 12 / 13

/// Decompression throughput of one matrix: 32-thread CPU Snappy vs 64-lane
/// UDP DSH.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecompRow {
    /// Matrix name.
    pub name: String,
    /// Generator family.
    pub family: String,
    /// Non-zeros.
    pub nnz: usize,
    /// CPU Snappy decompression throughput, bytes/s (calibrated model).
    pub cpu_bps: f64,
    /// UDP accelerator decompressed-output throughput, bytes/s (simulated).
    pub udp_bps: f64,
    /// Single-lane µs per block (paper: geomean 21.7 µs for 8 KB).
    pub us_per_block: f64,
    /// `udp / cpu` (paper: geomean ≈ 7×, 2–5× on the seven).
    pub speedup: f64,
}

/// Runs the Fig. 12/13 study on pre-generated `(name, family, matrix)`
/// triples (callers choose corpus or the seven).
pub fn decomp_study(
    sys: &SystemConfig,
    matrices: &[(String, String, Csr)],
    max_blocks_per_stream: usize,
) -> Vec<DecompRow> {
    let cpu_bps = sys.cpu.snappy_decomp_bps(sys.cpu.threads);
    matrices
        .par_iter()
        .map(|(name, family, a)| {
            let cm = CompressedMatrix::compress(a, MatrixCodecConfig::udp_dsh())
                .expect("codec preconditions");
            let m: DecompMeasurement = measure_udp_decomp(&cm, &sys.udp, max_blocks_per_stream)
                .expect("self-encoded blocks decode");
            DecompRow {
                name: name.clone(),
                family: family.clone(),
                nnz: a.nnz(),
                cpu_bps,
                udp_bps: m.accel_out_bps,
                us_per_block: m.us_per_block,
                speedup: if cpu_bps > 0.0 { m.accel_out_bps / cpu_bps } else { 0.0 },
            }
        })
        .collect()
}

// ---------------------------------------------------------- Figs. 14 / 15

/// The three-scenario SpMV comparison for one matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpmvRow {
    /// Matrix name.
    pub name: String,
    /// Generator family.
    pub family: String,
    /// Non-zeros.
    pub nnz: usize,
    /// DSH compressed bytes per non-zero.
    pub bytes_per_nnz: f64,
    /// Max Uncompressed, Gflop/s.
    pub uncompressed_gflops: f64,
    /// Decomp(CPU), Gflop/s.
    pub cpu_decomp_gflops: f64,
    /// Decomp(UDP+CPU), Gflop/s.
    pub hetero_gflops: f64,
    /// Hetero / uncompressed (paper geomean 2.4×).
    pub speedup: f64,
    /// UDP accelerators the model sized for the memory rate.
    pub udps: usize,
}

/// Runs the Fig. 14/15 study.
pub fn spmv_study(
    sys: &SystemConfig,
    matrices: &[(String, String, Csr)],
    max_blocks_per_stream: usize,
) -> Vec<SpmvRow> {
    matrices
        .par_iter()
        .map(|(name, family, a)| {
            let cm = CompressedMatrix::compress(a, MatrixCodecConfig::udp_dsh())
                .expect("codec preconditions");
            let m = measure_udp_decomp(&cm, &sys.udp, max_blocks_per_stream)
                .expect("self-encoded blocks decode");
            let model = SpmvPerfModel {
                bytes_per_nnz: cm.bytes_per_nnz().max(0.01),
                udp_out_bps_per_accel: m.accel_out_bps.max(1e9),
            };
            let [unc, sw, het] = model.evaluate_all(sys);
            SpmvRow {
                name: name.clone(),
                family: family.clone(),
                nnz: a.nnz(),
                bytes_per_nnz: cm.bytes_per_nnz(),
                uncompressed_gflops: unc.gflops,
                cpu_decomp_gflops: sw.gflops,
                hetero_gflops: het.gflops,
                speedup: het.gflops / unc.gflops,
                udps: het.udps,
            }
        })
        .collect()
}

// ---------------------------------------------------------- Figs. 16 / 17

/// Power savings for one of the seven representative matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerRow {
    /// Matrix name.
    pub name: String,
    /// DSH compressed bytes per non-zero.
    pub bytes_per_nnz: f64,
    /// The savings breakdown.
    pub savings: PowerSavings,
}

/// Runs the Fig. 16/17 study on the seven representative matrices at the
/// given generation scale.
pub fn power_study(
    sys: &SystemConfig,
    rep_scale: f64,
    seed: u64,
    max_blocks_per_stream: usize,
) -> Vec<PowerRow> {
    seven::generate_all(rep_scale, seed)
        .into_par_iter()
        .map(|(rep, a)| {
            let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh())
                .expect("codec preconditions");
            let m = measure_udp_decomp(&cm, &sys.udp, max_blocks_per_stream)
                .expect("self-encoded blocks decode");
            let bpnnz = cm.bytes_per_nnz();
            PowerRow {
                name: rep.name.to_string(),
                bytes_per_nnz: bpnnz,
                savings: PowerSavings::compute(sys, bpnnz, m.accel_out_bps.max(1e9)),
            }
        })
        .collect()
}

/// Helper: materialize corpus entries as named matrices (streamed by the
/// caller for large scales).
pub fn materialize(entries: &[CorpusEntry]) -> Vec<(String, String, Csr)> {
    entries.par_iter().map(|e| (e.name.clone(), e.family.to_string(), e.generate())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{corpus, CorpusScale};

    fn small_entries(n: usize) -> Vec<CorpusEntry> {
        corpus(CorpusScale::Small, 11).into_iter().take(n).collect()
    }

    #[test]
    fn compression_study_produces_paper_shaped_geomeans() {
        let rows = compression_study(&small_entries(22));
        let g = compression_geomeans(&rows).unwrap();
        // Shape: everything well below 12 raw; DSH at least as good as DS.
        assert!(g.dsh < 9.0, "dsh geomean {:.2}", g.dsh);
        assert!(g.ds < 10.0, "ds geomean {:.2}", g.ds);
        assert!(g.cpu_snappy < 10.0, "snappy geomean {:.2}", g.cpu_snappy);
        assert!(g.dsh <= g.ds + 0.05, "huffman must not hurt: {:.2} vs {:.2}", g.dsh, g.ds);
    }

    #[test]
    fn decomp_study_shows_udp_advantage() {
        let sys = SystemConfig::ddr4();
        let m = materialize(&small_entries(6));
        let rows = decomp_study(&sys, &m, 6);
        let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        let g = geometric_mean(&speedups).unwrap();
        assert!(g > 1.5, "UDP should beat 32-thread CPU snappy, geomean {g:.2}");
    }

    #[test]
    fn spmv_study_speedup_in_paper_band() {
        let sys = SystemConfig::ddr4();
        let m = materialize(&small_entries(6));
        let rows = spmv_study(&sys, &m, 6);
        for r in &rows {
            assert!(r.speedup > 1.0, "{}: speedup {:.2}", r.name, r.speedup);
            assert!(r.cpu_decomp_gflops < r.hetero_gflops / 10.0, "{}", r.name);
            assert!((r.uncompressed_gflops - 16.67).abs() < 0.05);
        }
    }

    #[test]
    fn power_study_saves_power_on_all_seven() {
        let sys = SystemConfig::ddr4();
        let rows = power_study(&sys, 0.02, 5, 4);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.savings.net_saving_w > 0.0,
                "{}: net {:.1} W at {:.2} B/nnz",
                r.name,
                r.savings.net_saving_w,
                r.bytes_per_nnz
            );
        }
    }
}
