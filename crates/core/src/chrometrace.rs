//! Chrome trace-event / Perfetto exporter for flight-recorder events.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: duration events
//! (`ph: "B"`/`"E"`) for recorder spans, instant events (`ph: "i"`) for
//! point occurrences (block outcomes, retries, breaker transitions, pool
//! and cache traffic, chaos injections), and one metadata `thread_name`
//! record per [`Track`] so every lane, worker, and pipeline stage gets its
//! own named row on the timeline.
//!
//! The exporter is defensive about balance: a ring-buffer recorder can
//! legitimately hold an `E` whose `B` was overwritten (or a `B` whose `E`
//! never happened because the run was cut short). Unmatched halves are
//! dropped here, per track, so the emitted document always satisfies the
//! trace-event contract — monotonic non-negative timestamps and strictly
//! paired `B`/`E` per thread.

use crate::json::Json;
use crate::recorder::{Event, EventKind, Track};
use std::collections::BTreeMap;

/// All trace events share one process row.
const PID: u64 = 1;

/// Converts drained recorder events into a Chrome trace-event JSON
/// document. Events are sorted by timestamp, unmatched span halves are
/// dropped per track, and every referenced track gets a `thread_name`
/// metadata record.
pub fn export_chrome_trace(events: &[Event]) -> Json {
    let mut sorted: Vec<Event> = events.to_vec();
    sorted.sort_by_key(|e| (e.ts_ns, e.seq));

    let keep = balanced_span_mask(&sorted);

    let mut tracks: BTreeMap<u32, Track> = BTreeMap::new();
    for e in &sorted {
        tracks.entry(e.track.encoded()).or_insert(e.track);
    }

    let mut trace_events = Vec::new();
    for track in tracks.values() {
        trace_events.push(thread_name_record(*track));
    }
    for (i, e) in sorted.iter().enumerate() {
        match e.kind {
            EventKind::SpanBegin | EventKind::SpanEnd => {
                if keep[i] {
                    trace_events.push(span_record(e));
                }
            }
            _ => trace_events.push(instant_record(e)),
        }
    }

    Json::obj()
        .set("traceEvents", Json::Arr(trace_events))
        .set("displayTimeUnit", Json::Str("ns".into()))
}

/// Marks which `SpanBegin`/`SpanEnd` events form matched pairs, per track,
/// treating each track's spans as a stack (recorder guards nest LIFO).
fn balanced_span_mask(sorted: &[Event]) -> Vec<bool> {
    let mut keep = vec![false; sorted.len()];
    let mut open: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, e) in sorted.iter().enumerate() {
        match e.kind {
            EventKind::SpanBegin => open.entry(e.track.encoded()).or_default().push(i),
            EventKind::SpanEnd => {
                let stack = open.entry(e.track.encoded()).or_default();
                // Pop until we find the begin this end closes; begins whose
                // end was lost to ring overwrite are discarded on the way.
                while let Some(b) = stack.pop() {
                    if sorted[b].name == e.name {
                        keep[b] = true;
                        keep[i] = true;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    keep
}

fn track_label(track: Track) -> String {
    match track.class() {
        "main" => "main".to_string(),
        "stage" if track.id() == 0 => "stage 0 (decode)".to_string(),
        class => format!("{class} {}", track.id()),
    }
}

fn thread_name_record(track: Track) -> Json {
    Json::obj()
        .set("name", Json::Str("thread_name".into()))
        .set("ph", Json::Str("M".into()))
        .set("pid", Json::U64(PID))
        .set("tid", Json::U64(u64::from(track.encoded())))
        .set("args", Json::obj().set("name", Json::Str(track_label(track))))
}

fn ts_us(e: &Event) -> Json {
    #[allow(clippy::cast_precision_loss)]
    Json::F64(e.ts_ns as f64 / 1000.0)
}

fn span_record(e: &Event) -> Json {
    let ph = if e.kind == EventKind::SpanBegin { "B" } else { "E" };
    Json::obj()
        .set("name", Json::Str(e.name.to_string()))
        .set("cat", Json::Str("span".into()))
        .set("ph", Json::Str(ph.into()))
        .set("pid", Json::U64(PID))
        .set("tid", Json::U64(u64::from(e.track.encoded())))
        .set("ts", ts_us(e))
}

fn instant_record(e: &Event) -> Json {
    Json::obj()
        .set("name", Json::Str(e.name.to_string()))
        .set("cat", Json::Str(e.kind.label().into()))
        .set("ph", Json::Str("i".into()))
        .set("s", Json::Str("t".into()))
        .set("pid", Json::U64(PID))
        .set("tid", Json::U64(u64::from(e.track.encoded())))
        .set("ts", ts_us(e))
        .set("args", Json::obj().set("a", Json::U64(e.a)).set("b", Json::U64(e.b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, seq: u64, kind: EventKind, track: Track, name: &'static str) -> Event {
        Event { ts_ns, seq, kind, track, name, a: 0, b: 0 }
    }

    #[test]
    fn matched_spans_survive_and_unmatched_halves_are_dropped() {
        let lane = Track::lane(2);
        let events = [
            ev(5, 0, EventKind::SpanEnd, lane, "orphan-end"),
            ev(10, 1, EventKind::SpanBegin, lane, "decode"),
            ev(20, 2, EventKind::SpanEnd, lane, "decode"),
            ev(30, 3, EventKind::SpanBegin, lane, "orphan-begin"),
        ];
        let doc = export_chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
        let phases: Vec<&str> =
            arr.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        assert_eq!(phases, ["M", "B", "E"], "one thread_name + the one matched pair");
    }

    #[test]
    fn every_track_gets_a_thread_name_row_and_instants_carry_payload() {
        let events = [
            ev(1, 0, EventKind::SpanBegin, Track::MAIN, "job"),
            Event {
                ts_ns: 2,
                seq: 1,
                kind: EventKind::BlockOutcome,
                track: Track::lane(0),
                name: "block",
                a: 97,
                b: 0,
            },
            ev(3, 2, EventKind::SpanEnd, Track::MAIN, "job"),
            ev(4, 3, EventKind::CacheHit, Track::worker(1), "cache.hit"),
        ];
        let doc = export_chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
        let names: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
            .collect();
        assert_eq!(names, ["main", "lane 0", "worker 1"]);
        let block = arr
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("block"))
            .expect("block instant present");
        assert_eq!(block.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(block.get("args").and_then(|a| a.get("a")).and_then(Json::as_u64), Some(97));
        assert_eq!(block.get("cat").and_then(Json::as_str), Some("block_outcome"));
    }

    #[test]
    fn timestamps_are_microseconds_and_monotonic() {
        let events = [
            ev(1_500, 0, EventKind::SpanBegin, Track::MAIN, "a"),
            ev(2_500, 1, EventKind::SpanEnd, Track::MAIN, "a"),
        ];
        let doc = export_chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
        let ts: Vec<f64> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .filter_map(|e| e.get("ts").and_then(Json::as_f64))
            .collect();
        assert_eq!(ts, [1.5, 2.5], "ns payloads render as fractional microseconds");
    }
}
