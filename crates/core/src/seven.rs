//! Synthetic stand-ins for the paper's seven representative matrices
//! (§IV-B): copter2, g7jac160, gas_sensor, m3dc1_a30, matrix-new_3,
//! shipsec1, xenon1 — used for the memory-power studies (Figs. 16/17) and
//! the per-matrix decompression bars (Fig. 12).
//!
//! The real matrices live in the TAMU/SuiteSparse collection; each stand-in
//! matches the published dimensions and non-zero count (approximate where
//! we could not verify them) and the structural *class* of its original, so
//! compression behaviour is comparable. See DESIGN.md §3, substitution 2.

use recode_sparse::gen::{generate, GenSpec, ValueModel};
use recode_sparse::Csr;
use serde::{Deserialize, Serialize};

/// Descriptor of one representative matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Representative {
    /// SuiteSparse name of the original.
    pub name: &'static str,
    /// Application domain of the original.
    pub domain: &'static str,
    /// Dimension of the original (approximate where unpublished).
    pub n: usize,
    /// Non-zeros of the original (approximate where unpublished).
    pub nnz: usize,
    /// Generator family used for the stand-in.
    pub family: &'static str,
    /// Value model for the stand-in — chosen per matrix so the seven span
    /// the paper's reported 30-84% per-matrix power-saving spread (i.e.
    /// value entropy from near-incompressible to highly repetitive).
    pub values: ValueModel,
}

/// The seven matrices, with their published (or approximated) sizes.
pub fn catalog() -> Vec<Representative> {
    vec![
        Representative {
            name: "copter2",
            domain: "CFD: helicopter rotor mesh (FEM)",
            n: 55_476,
            nnz: 759_952,
            family: "femband",
            values: ValueModel::QuantizedGaussian { levels: 65535 },
        },
        Representative {
            name: "g7jac160",
            domain: "economics: Jacobian from a general-equilibrium model",
            n: 47_430,
            nnz: 656_616,
            family: "blockjac",
            values: ValueModel::UniformRandom,
        },
        Representative {
            name: "gas_sensor",
            domain: "microelectromechanical device simulation (3D FEM)",
            n: 66_917,
            nnz: 1_703_365,
            family: "stencil3d",
            values: ValueModel::QuantizedGaussian { levels: 65535 },
        },
        Representative {
            name: "m3dc1_a30",
            // Size approximated: the M3D-C1 fusion matrices in this series
            // are ~220k rows with ~60-70 nnz/row.
            domain: "fusion plasma PDE (M3D-C1)",
            n: 220_000,
            nnz: 14_000_000,
            family: "femband",
            values: ValueModel::QuantizedGaussian { levels: 2048 },
        },
        Representative {
            name: "matrix-new_3",
            domain: "semiconductor device simulation",
            n: 125_329,
            nnz: 893_984,
            family: "multidiag",
            values: ValueModel::MixedRepeated { distinct: 6 },
        },
        Representative {
            name: "shipsec1",
            domain: "structural: ship section stiffness (FEM)",
            n: 140_874,
            nnz: 7_813_404,
            family: "femband",
            values: ValueModel::MixedRepeated { distinct: 1000 },
        },
        Representative {
            name: "xenon1",
            domain: "materials: complex zeolite / xenon diffusion",
            n: 48_600,
            nnz: 1_181_120,
            family: "stencil3d",
            values: ValueModel::QuantizedGaussian { levels: 65535 },
        },
    ]
}

/// Generates the stand-in for `rep`, scaled by `scale` (1.0 = published
/// size; smaller values shrink the dimension while preserving nnz/row, so
/// compression behaviour is stable while experiments stay fast).
pub fn generate_representative(rep: &Representative, scale: f64, seed: u64) -> Csr {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let n = ((rep.n as f64 * scale) as usize).max(256);
    let per_row = rep.nnz as f64 / rep.n as f64;
    match rep.family {
        "femband" => {
            // nnz/row = 1 + 2*band*fill; fix fill = 0.5.
            let band = (((per_row - 1.0) / 2.0 / 0.5).round() as usize).max(2);
            generate(&GenSpec::FemBand { n, band, fill: 0.5, values: rep.values }, seed)
        }
        "blockjac" => {
            let block = (per_row.round() as usize).clamp(4, 48);
            let nblocks = (n / block).max(1);
            generate(
                &GenSpec::BlockJacobian { nblocks, block, coupling: 1.0, values: rep.values },
                seed,
            )
        }
        "stencil3d" => {
            // 27-point stencils give ~26 nnz/row; perforate via dimension to
            // approximate per_row by choosing 7 or 27 points.
            let points = if per_row > 15.0 { 27 } else { 7 };
            let side = (n as f64).cbrt().round() as usize;
            generate(
                &GenSpec::Stencil3D {
                    nx: side.max(4),
                    ny: side.max(4),
                    nz: side.max(4),
                    points,
                    values: rep.values,
                },
                seed,
            )
        }
        "multidiag" => {
            let k = (per_row.round() as usize).clamp(3, 15) | 1; // odd
            let mut offsets: Vec<i64> = vec![0];
            let half = (k - 1) / 2;
            for i in 1..=half {
                let off = (i * i) as i64; // spreading diagonals
                offsets.push(off);
                offsets.push(-off);
            }
            generate(&GenSpec::MultiDiagonal { n, offsets, values: rep.values }, seed)
        }
        other => panic!("unknown representative family {other}"),
    }
}

/// Generates all seven at `scale`, returning `(descriptor, matrix)` pairs.
pub fn generate_all(scale: f64, seed: u64) -> Vec<(Representative, Csr)> {
    catalog()
        .into_iter()
        .enumerate()
        .map(|(i, rep)| {
            let m = generate_representative(&rep, scale, seed ^ (i as u64) << 8);
            (rep, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_papers_seven() {
        let names: Vec<&str> = catalog().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "copter2",
                "g7jac160",
                "gas_sensor",
                "m3dc1_a30",
                "matrix-new_3",
                "shipsec1",
                "xenon1"
            ]
        );
    }

    #[test]
    fn standins_match_density_class_at_small_scale() {
        for (rep, m) in generate_all(0.02, 7) {
            let want_per_row = rep.nnz as f64 / rep.n as f64;
            let got_per_row = m.nnz() as f64 / m.nrows() as f64;
            assert!(
                got_per_row > want_per_row / 3.0 && got_per_row < want_per_row * 3.0,
                "{}: wanted ~{want_per_row:.1} nnz/row, got {got_per_row:.1}",
                rep.name
            );
            assert!(m.nnz() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_all(0.02, 3);
        let b = generate_all(0.02, 3);
        for ((_, ma), (_, mb)) in a.iter().zip(&b) {
            assert_eq!(ma, mb);
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let rep = &catalog()[0];
        let _ = generate_representative(rep, 0.0, 1);
    }
}
