//! Always-on flight recorder: a fixed-capacity ring of typed events fed by
//! thread-local buffers.
//!
//! The recorder is the runtime-observability layer underneath the post-hoc
//! [`crate::telemetry::TraceDocument`]: where the trace document aggregates
//! a finished run, the recorder captures *when* things happened — span
//! begin/end pairs per pipeline phase, per-block outcomes on their lane
//! track, retry/fallback rungs, circuit-breaker transitions, pool
//! quarantine traffic, cache hits/evictions, and chaos injections — cheap
//! enough to leave enabled in production.
//!
//! ## Cost model
//!
//! * **Disabled** (the default): every recording call is one relaxed
//!   atomic load and a branch. Nothing allocates, no locks are touched —
//!   `tests/alloc_regression.rs` pins this.
//! * **Enabled, steady state**: an event is a `Copy` struct stamped with a
//!   monotonic timestamp and pushed into a thread-local buffer
//!   (preallocated on the thread's first event). When the buffer fills it
//!   drains into the global ring under a short mutex — a `memcpy` into
//!   storage preallocated at [`enable`] time. No path allocates after
//!   warm-up.
//! * **Overflow**: the ring overwrites its oldest events and counts them
//!   in [`RecorderStats::dropped`] — observability must never stall the
//!   pipeline it observes.
//!
//! Event names are `&'static str` by construction: no formatting happens
//! at record time.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default ring capacity in events (~3 MB at 48 B/event).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Thread-local buffer capacity in events; drained into the ring when full.
const LOCAL_CAPACITY: usize = 256;

/// What a recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A phase/span opened on this track (`B` in the Chrome trace).
    SpanBegin,
    /// The most recent open span on this track closed (`E`).
    SpanEnd,
    /// One block finished its decode: `a` = cycles, `b` = outcome code
    /// (0 ok, 1 retried, 2 fell back).
    BlockOutcome,
    /// One retry-ladder rung ran: `a` = attempt number (1-based).
    Retry,
    /// A block was served from the raw-CSR fallback store: `a` = bytes.
    Fallback,
    /// Circuit breaker changed state: `a` = from, `b` = to
    /// (0 closed, 1 open, 2 half-open).
    BreakerTransition,
    /// A lane was quarantined on return to the pool.
    PoolQuarantine,
    /// A quarantined lane was readmitted on probation.
    PoolProbation,
    /// A checkout was served by recycling a pooled lane.
    PoolRecycle,
    /// Decoded-block cache hit: `a` = bytes served.
    CacheHit,
    /// Decoded-block cache eviction.
    CacheEvict,
    /// A chaos campaign injected a fault: `a` = trial seed (low bits).
    ChaosInjection,
    /// A JIT compile finished: `a` packs blocks lowered (high 32 bits)
    /// over machine-code bytes emitted (low 32), `b` = wall nanoseconds.
    /// The name says what was compiled (`jit.lane`, `jit.huffman`), with a
    /// `.failed` suffix when compilation failed and the interpreter/scalar
    /// tier took over.
    JitCompile,
}

impl EventKind {
    /// Stable lowercase label (metrics / exporter phase names).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::BlockOutcome => "block_outcome",
            EventKind::Retry => "retry",
            EventKind::Fallback => "fallback",
            EventKind::BreakerTransition => "breaker_transition",
            EventKind::PoolQuarantine => "pool_quarantine",
            EventKind::PoolProbation => "pool_probation",
            EventKind::PoolRecycle => "pool_recycle",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheEvict => "cache_evict",
            EventKind::ChaosInjection => "chaos_injection",
            EventKind::JitCompile => "jit_compile",
        }
    }

    /// Every kind, for summary tables.
    pub const ALL: [EventKind; 13] = [
        EventKind::SpanBegin,
        EventKind::SpanEnd,
        EventKind::BlockOutcome,
        EventKind::Retry,
        EventKind::Fallback,
        EventKind::BreakerTransition,
        EventKind::PoolQuarantine,
        EventKind::PoolProbation,
        EventKind::PoolRecycle,
        EventKind::CacheHit,
        EventKind::CacheEvict,
        EventKind::ChaosInjection,
        EventKind::JitCompile,
    ];
}

/// Which timeline an event belongs to. Encoded in one `u32`: the high
/// nibble is the class, the rest the id — `Copy`, branch-free to stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track(u32);

const TRACK_CLASS_SHIFT: u32 = 28;

impl Track {
    /// The main/orchestration thread.
    pub const MAIN: Track = Track(0);

    /// A UDP lane's timeline.
    pub fn lane(id: usize) -> Track {
        Track((1 << TRACK_CLASS_SHIFT) | (id as u32 & 0x0fff_ffff))
    }

    /// A CPU multiply worker's timeline.
    pub fn worker(id: usize) -> Track {
        Track((2 << TRACK_CLASS_SHIFT) | (id as u32 & 0x0fff_ffff))
    }

    /// A pipeline stage's timeline (0 = decode producer).
    pub fn stage(id: usize) -> Track {
        Track((3 << TRACK_CLASS_SHIFT) | (id as u32 & 0x0fff_ffff))
    }

    /// The id within the class.
    pub fn id(self) -> u32 {
        self.0 & 0x0fff_ffff
    }

    /// `"main"`, `"lane"`, `"worker"`, or `"stage"`.
    pub fn class(self) -> &'static str {
        match self.0 >> TRACK_CLASS_SHIFT {
            1 => "lane",
            2 => "worker",
            3 => "stage",
            _ => "main",
        }
    }

    /// Raw encoding (stable; the Chrome exporter's `tid`).
    pub fn encoded(self) -> u32 {
        self.0
    }
}

/// One recorded event. `Copy` and fixed-size so buffers are flat arrays.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Nanoseconds since the recorder was (first) enabled.
    pub ts_ns: u64,
    /// Global arrival sequence (ties on `ts_ns` sort stably).
    pub seq: u64,
    /// Event class.
    pub kind: EventKind,
    /// Timeline the event belongs to.
    pub track: Track,
    /// Static label (span/phase name, counter name).
    pub name: &'static str,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

/// Point-in-time recorder counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events accepted since enable (monotonic).
    pub recorded: u64,
    /// Events overwritten by ring wrap-around (monotonic).
    pub dropped: u64,
    /// Ring capacity in events (0 while disabled).
    pub capacity: usize,
}

/// Global ring sink. Storage is preallocated by [`enable`]; `push_slice`
/// never allocates.
struct Ring {
    buf: Vec<Event>,
    head: usize,
    len: usize,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    const fn empty() -> Ring {
        Ring { buf: Vec::new(), head: 0, len: 0, capacity: 0, dropped: 0 }
    }

    fn push_slice(&mut self, events: &[Event]) {
        for &e in events {
            if self.capacity == 0 {
                self.dropped += 1;
                continue;
            }
            if self.len < self.capacity {
                self.buf[(self.head + self.len) % self.capacity] = e;
                self.len += 1;
            } else {
                self.buf[self.head] = e;
                self.head = (self.head + 1) % self.capacity;
                self.dropped += 1;
            }
        }
    }

    fn drain_ordered(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % self.capacity]);
        }
        self.head = 0;
        self.len = 0;
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<Ring> = Mutex::new(Ring::empty());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf { buf: Vec::new() }) };
}

/// Thread-local staging buffer. The `Drop` impl flushes as a best-effort
/// safety net; threads whose completion is observed before they exit
/// (scoped workers, watchdogged trials) call [`flush_thread`] explicitly.
struct LocalBuf {
    buf: Vec<Event>,
}

impl LocalBuf {
    fn push(&mut self, e: Event) {
        if self.buf.capacity() == 0 {
            // One-time allocation per thread, on its first recorded event.
            self.buf.reserve_exact(LOCAL_CAPACITY);
        }
        self.buf.push(e);
        if self.buf.len() >= LOCAL_CAPACITY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut ring = RING.lock().unwrap_or_else(PoisonError::into_inner);
        ring.push_slice(&self.buf);
        self.buf.clear();
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Is the recorder on? One relaxed load — the whole cost of the disabled
/// path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on with a ring of `capacity` events (clamped to at
/// least [`LOCAL_CAPACITY`]), preallocating all sink storage up front and
/// installing the pool event hook. Re-enabling resizes and clears the ring.
pub fn enable(capacity: usize) {
    let capacity = capacity.max(LOCAL_CAPACITY);
    {
        let mut ring = RING.lock().unwrap_or_else(PoisonError::into_inner);
        ring.buf = vec![EMPTY_EVENT; capacity];
        ring.capacity = capacity;
        ring.head = 0;
        ring.len = 0;
        ring.dropped = 0;
    }
    RECORDED.store(0, Ordering::Relaxed);
    let _ = epoch();
    recode_udp::pool::set_event_hook(pool_event_hook);
    recode_codec::jit::set_compile_hook(jit_compile_hook);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Already-buffered events stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

const EMPTY_EVENT: Event = Event {
    ts_ns: 0,
    seq: 0,
    kind: EventKind::SpanBegin,
    track: Track::MAIN,
    name: "",
    a: 0,
    b: 0,
};

/// Records one event. No-op (one atomic load) while disabled.
#[inline]
pub fn record(kind: EventKind, track: Track, name: &'static str, a: u64, b: u64) {
    if !is_enabled() {
        return;
    }
    record_slow(kind, track, name, a, b);
}

#[cold]
fn record_slow(kind: EventKind, track: Track, name: &'static str, a: u64, b: u64) {
    let e = Event {
        ts_ns: epoch().elapsed().as_nanos() as u64,
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        kind,
        track,
        name,
        a,
        b,
    };
    RECORDED.fetch_add(1, Ordering::Relaxed);
    // Destroyed-TLS fallback (thread teardown): drop the event rather than
    // touch a dead slot.
    let _ = LOCAL.try_with(|l| l.borrow_mut().push(e));
}

/// Opens a span on `track`; the returned guard closes it on drop. Guards
/// nest per thread, so each track's B/E events pair up like a stack.
#[must_use = "the span closes when the guard drops"]
pub fn span(track: Track, name: &'static str) -> SpanGuard {
    record(EventKind::SpanBegin, track, name, 0, 0);
    SpanGuard { track, name }
}

/// Closes its span on drop (records nothing while disabled).
pub struct SpanGuard {
    track: Track,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        record(EventKind::SpanEnd, self.track, self.name, 0, 0);
    }
}

/// Flushes the calling thread's staging buffer into the ring.
///
/// Threads that outlive their events' consumer must call this before
/// signalling completion: `std::thread::scope` (and a watchdog channel
/// send) only orders the *closure*'s end, not the thread's TLS
/// destructors, so relying on the `Drop` flush alone would let the owner
/// `drain()` before the worker's buffer reaches the ring.
pub fn flush_thread() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
}

/// Flushes this thread's buffer and returns every ringed event in
/// chronological order (ties broken by arrival), leaving the ring empty.
pub fn drain() -> Vec<Event> {
    LOCAL.with(|l| l.borrow_mut().flush());
    let mut events = RING.lock().unwrap_or_else(PoisonError::into_inner).drain_ordered();
    events.sort_by_key(|e| (e.ts_ns, e.seq));
    events
}

/// Point-in-time counters (valid whether enabled or not).
pub fn stats() -> RecorderStats {
    let ring = RING.lock().unwrap_or_else(PoisonError::into_inner);
    RecorderStats {
        recorded: RECORDED.load(Ordering::Relaxed),
        dropped: ring.dropped,
        capacity: ring.capacity,
    }
}

/// The pool-side event hook ([`recode_udp::pool::PoolEvent`] → recorder
/// events). Installed by [`enable`]; itself gated on [`is_enabled`].
fn pool_event_hook(event: recode_udp::pool::PoolEvent) {
    use recode_udp::pool::PoolEvent;
    let (kind, name) = match event {
        PoolEvent::Quarantined => (EventKind::PoolQuarantine, "pool.quarantine"),
        PoolEvent::Readmitted => (EventKind::PoolProbation, "pool.probation"),
        PoolEvent::Recycled => (EventKind::PoolRecycle, "pool.recycle"),
    };
    record(kind, Track::MAIN, name, 0, 0);
}

/// The codec-side JIT compile hook
/// ([`recode_codec::jit::CompileEvent`] → recorder events). Installed by
/// [`enable`]; itself gated on [`is_enabled`].
fn jit_compile_hook(event: &recode_codec::jit::CompileEvent) {
    let name = match (event.what, event.ok) {
        ("lane", true) => "jit.lane",
        ("lane", false) => "jit.lane.failed",
        ("huffman", true) => "jit.huffman",
        ("huffman", false) => "jit.huffman.failed",
        (_, true) => "jit.compile",
        (_, false) => "jit.compile.failed",
    };
    let a = ((event.blocks as u64) << 32) | (event.code_bytes as u64 & 0xFFFF_FFFF);
    record(EventKind::JitCompile, Track::MAIN, name, a, event.wall_ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recorder state is process-global, so every test in this module runs
    // under one lock to keep enable/disable/drain from interleaving.
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = serialized();
        disable();
        record(EventKind::Retry, Track::MAIN, "noop", 1, 2);
        let _span = span(Track::MAIN, "noop");
        assert!(drain().is_empty());
    }

    #[test]
    fn events_drain_in_timestamp_order_across_threads() {
        let _g = serialized();
        enable(4096);
        let before = stats().recorded;
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    for i in 0..50u64 {
                        record(EventKind::BlockOutcome, Track::worker(w), "blk", i, 0);
                    }
                    // The scope only waits for this closure, not the TLS
                    // destructor, so publish before returning.
                    flush_thread();
                });
            }
        });
        record(EventKind::Retry, Track::MAIN, "after", 0, 0);
        let events = drain();
        disable();
        assert_eq!(events.len(), 201, "4x50 worker events + 1 main event");
        assert_eq!(stats().recorded - before, 201);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "chronological");
        for w in 0..4 {
            let n = events.iter().filter(|e| e.track == Track::worker(w)).count();
            assert_eq!(n, 50, "worker {w} events all flushed at scope exit");
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = serialized();
        enable(0); // clamped up to LOCAL_CAPACITY
        assert_eq!(stats().capacity, LOCAL_CAPACITY);
        for i in 0..(LOCAL_CAPACITY as u64 * 3) {
            record(EventKind::Retry, Track::MAIN, "spin", i, 0);
        }
        let events = drain();
        let st = stats();
        disable();
        assert_eq!(events.len(), LOCAL_CAPACITY, "ring keeps exactly its capacity");
        assert_eq!(st.dropped, LOCAL_CAPACITY as u64 * 2, "overflow is counted");
        // The survivors are the *newest* events.
        assert_eq!(events.last().expect("non-empty").a, LOCAL_CAPACITY as u64 * 3 - 1);
    }

    /// Seeded interleaving stress (ISSUE 9): many threads overflow a small
    /// ring concurrently from a fixed barrier. Whatever the schedule, the
    /// accounting must partition exactly — every accepted event is either
    /// drained or counted dropped, never both and never neither — and no
    /// surviving event is duplicated or reordered within its track.
    #[test]
    fn concurrent_overflow_accounting_is_exact() {
        const THREADS: usize = 8;
        const CAPACITY: usize = 512;
        let _g = serialized();
        enable(CAPACITY);
        let before = stats().recorded;
        // Fixed xorshift seed → fixed per-thread event counts, so the
        // totals below are deterministic across runs and machines.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let counts: [u64; THREADS] = std::array::from_fn(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            300 + seed % 200
        });
        let total: u64 = counts.iter().sum();
        let barrier = std::sync::Barrier::new(THREADS);
        std::thread::scope(|s| {
            for (w, &n) in counts.iter().enumerate() {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..n {
                        record(EventKind::BlockOutcome, Track::lane(w), "stress", i, 0);
                    }
                    flush_thread();
                });
            }
        });
        let events = drain();
        let st = stats();
        disable();
        assert_eq!(st.recorded - before, total, "every record() call is counted once");
        assert_eq!(
            events.len() as u64 + st.dropped,
            total,
            "drained + dropped partition the accepted events exactly"
        );
        assert_eq!(events.len(), CAPACITY, "overflowed ring keeps exactly its capacity");
        assert!(events.iter().all(|e| e.name == "stress"), "no phantom events survive");
        for w in 0..THREADS {
            let payloads: Vec<u64> =
                events.iter().filter(|e| e.track == Track::lane(w)).map(|e| e.a).collect();
            assert!(
                payloads.windows(2).all(|p| p[0] < p[1]),
                "lane {w} survivors are never duplicated or reordered: {payloads:?}"
            );
        }
    }

    #[test]
    fn span_guard_balances_begin_end() {
        let _g = serialized();
        enable(4096);
        {
            let _outer = span(Track::stage(0), "outer");
            let _inner = span(Track::stage(0), "inner");
        }
        let events = drain();
        disable();
        let kinds: Vec<(EventKind, &str)> = events.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            kinds,
            [
                (EventKind::SpanBegin, "outer"),
                (EventKind::SpanBegin, "inner"),
                (EventKind::SpanEnd, "inner"),
                (EventKind::SpanEnd, "outer"),
            ],
            "guards close in LIFO order"
        );
    }

    #[test]
    fn jit_compile_events_reach_the_ring() {
        let _g = serialized();
        enable(4096);
        // Drive the hook directly — assemble-time compiles fire the same
        // path, but depend on platform/env JIT availability.
        recode_codec::jit::report_compile(&recode_codec::jit::CompileEvent {
            what: "lane",
            code_bytes: 1234,
            blocks: 7,
            wall_ns: 42,
            ok: true,
        });
        recode_codec::jit::report_compile(&recode_codec::jit::CompileEvent {
            what: "huffman",
            code_bytes: 0,
            blocks: 0,
            wall_ns: 9,
            ok: false,
        });
        let events = drain();
        disable();
        let jit: Vec<_> = events.iter().filter(|e| e.kind == EventKind::JitCompile).collect();
        assert_eq!(jit.len(), 2, "both compile reports must reach the ring");
        assert_eq!(jit[0].name, "jit.lane");
        assert_eq!(jit[0].a >> 32, 7, "blocks lowered ride the high half of `a`");
        assert_eq!(jit[0].a & 0xFFFF_FFFF, 1234, "code bytes ride the low half");
        assert_eq!(jit[0].b, 42, "wall ns rides `b`");
        assert_eq!(jit[1].name, "jit.huffman.failed", "failures are distinguishable");
    }
}
