//! Job-level resilience: per-job budgets, typed terminal states, and the
//! circuit breaker that trips a chronically failing matrix onto the
//! software/raw-CSR path.
//!
//! PR 1 hardened the *block* path (CRC framing, bounded retries, raw-CSR
//! fallback); this module bounds the *job*. Every budgeted run ends in one
//! of four [`JobState`]s, retry spending is governed by a [`JobBudget`]
//! instead of a bare attempt count, and a [`CircuitBreaker`] watches the
//! windowed job-failure rate so a matrix that keeps trapping stops burning
//! accelerator time and degrades to the software decoder until a half-open
//! probe proves the lanes healthy again.

use crate::error::ExecError;
use crate::exec::ExecStats;
use recode_sparse::Csr;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Resource budget for one job (one full decode or decode+multiply run).
///
/// All limits default to "unbounded"; the per-block retry cap
/// ([`crate::exec::MAX_BLOCK_RETRIES`]) still applies underneath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobBudget {
    /// Wall-clock deadline for the whole job. Checked at retry boundaries
    /// (a job never hangs mid-block; blocks are small).
    pub deadline: Option<Duration>,
    /// Cap on modeled lane cycles spent in retry decodes across the job.
    pub max_retry_cycles: Option<u64>,
    /// Cap on total retry attempts across all blocks of the job.
    pub max_total_retries: Option<usize>,
    /// Backoff charged to the modeled makespan per retry attempt — the
    /// scheduler waiting before re-dispatch. Charged to the critical path
    /// only, never to busy cycles. Default 0 keeps budgeted and unbudgeted
    /// clean runs cycle-identical.
    pub backoff_cycles_per_retry: u64,
}

impl JobBudget {
    /// A budget with no limits (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        JobBudget { deadline: Some(deadline), ..Self::default() }
    }

    /// True when no limit is set (backoff alone does not bound anything).
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.max_retry_cycles.is_none()
            && self.max_total_retries.is_none()
    }
}

/// Typed terminal state of a job. Every budgeted run ends in exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Finished on the happy path: no retries, no fallback, no bypass.
    Completed,
    /// Finished bit-exact but off the happy path — retries, raw-CSR block
    /// fallback, or a breaker bypass to the software decoder.
    Degraded,
    /// The [`JobBudget`] ran out before the work completed.
    DeadlineExceeded,
    /// The job failed for a non-budget reason (unrecoverable block with no
    /// fallback store, reassembly failure, worker panic).
    Rejected,
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Completed => "completed",
            JobState::Degraded => "degraded",
            JobState::DeadlineExceeded => "deadline-exceeded",
            JobState::Rejected => "rejected",
        };
        f.write_str(s)
    }
}

/// Tracks a running job's consumption against its [`JobBudget`].
///
/// The exec retry ladder calls [`BudgetTracker::admit_retry`] before every
/// retry attempt and [`BudgetTracker::charge_retry_cycles`] after a
/// successful one; when a limit is hit, `admit_retry` names the exhausted
/// budget and the caller surfaces [`ExecError::DeadlineExceeded`].
#[derive(Debug)]
pub struct BudgetTracker {
    budget: JobBudget,
    started: Instant,
    retry_cycles: u64,
    retries: usize,
    backoff_cycles: u64,
}

impl BudgetTracker {
    /// Starts the job's clock.
    pub fn new(budget: JobBudget) -> Self {
        BudgetTracker {
            budget,
            started: Instant::now(),
            retry_cycles: 0,
            retries: 0,
            backoff_cycles: 0,
        }
    }

    /// Admission check before one retry attempt. On `Ok` the attempt is
    /// counted and its backoff charged; on `Err` the name of the exhausted
    /// budget is returned and nothing is charged.
    pub fn admit_retry(&mut self) -> Result<(), &'static str> {
        if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                return Err("wall deadline");
            }
        }
        if let Some(cap) = self.budget.max_total_retries {
            if self.retries >= cap {
                return Err("retry budget");
            }
        }
        if let Some(cap) = self.budget.max_retry_cycles {
            if self.retry_cycles >= cap {
                return Err("cycle budget");
            }
        }
        self.retries += 1;
        self.backoff_cycles += self.budget.backoff_cycles_per_retry;
        Ok(())
    }

    /// Charges modeled lane cycles consumed by a retry decode.
    pub fn charge_retry_cycles(&mut self, cycles: u64) {
        self.retry_cycles += cycles;
    }

    /// Backoff cycles accumulated so far (to fold into the makespan).
    pub fn backoff_cycles(&self) -> u64 {
        self.backoff_cycles
    }

    /// Retry attempts admitted so far.
    pub fn retries(&self) -> usize {
        self.retries
    }
}

/// Circuit-breaker lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: jobs run on the accelerator.
    Closed,
    /// Tripped: jobs bypass to the software/raw-CSR path.
    Open,
    /// Probing: one job is let through to the accelerator; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        f.write_str(s)
    }
}

/// Thresholds for the per-matrix [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length, in runs.
    pub window_runs: usize,
    /// Windowed job-failure rate (failed jobs / jobs) that trips the
    /// breaker. The default 0.5 sits far above the few-percent failure
    /// rates transient-fault tests induce, so only a genuinely sick matrix
    /// or lane population trips it.
    pub error_rate_threshold: f64,
    /// Minimum jobs observed in the window before the breaker may trip
    /// (prevents one tiny faulty run from tripping it).
    pub min_window_jobs: usize,
    /// Bypassed runs while `Open` before a half-open probe is attempted.
    pub cooldown_runs: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window_runs: 8,
            error_rate_threshold: 0.5,
            min_window_jobs: 32,
            cooldown_runs: 2,
        }
    }
}

/// Sliding-window circuit breaker guarding the accelerator path of one
/// matrix. Drive it with [`CircuitBreaker::admit`] before each run and
/// [`CircuitBreaker::record`] after each accelerator run.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Recent accelerator runs: (jobs, jobs_failed).
    window: VecDeque<(usize, usize)>,
    /// Runs bypassed since the breaker opened.
    bypassed: usize,
    /// Times the breaker tripped open (monotonic).
    trips: u64,
    /// Half-open probes attempted (monotonic).
    probes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with `config` thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            bypassed: 0,
            trips: 0,
            probes: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open probes attempted.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Admission decision for the next run: `true` = run on the
    /// accelerator (closed, or a half-open probe), `false` = bypass to the
    /// software path. While open, every `cooldown_runs`-th bypass converts
    /// into a half-open probe.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.bypassed += 1;
                if self.bypassed >= self.config.cooldown_runs {
                    self.transition(BreakerState::HalfOpen);
                    self.probes += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// State change + flight-recorder notification (free when the recorder
    /// is off). Codes on the event: 0 closed, 1 open, 2 half-open.
    fn transition(&mut self, to: BreakerState) {
        let code = |s: BreakerState| match s {
            BreakerState::Closed => 0u64,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        crate::recorder::record(
            crate::recorder::EventKind::BreakerTransition,
            crate::recorder::Track::MAIN,
            "breaker",
            code(self.state),
            code(to),
        );
        self.state = to;
    }

    /// Records one accelerator run's job counts and updates the state
    /// machine. Call only for runs that actually reached the accelerator.
    pub fn record(&mut self, jobs: usize, jobs_failed: usize) {
        match self.state {
            BreakerState::HalfOpen => {
                if jobs_failed == 0 {
                    // Probe succeeded: close and forget the bad history.
                    self.transition(BreakerState::Closed);
                    self.window.clear();
                } else {
                    self.transition(BreakerState::Open);
                    self.bypassed = 0;
                }
                return;
            }
            BreakerState::Open => return,
            BreakerState::Closed => {}
        }
        self.window.push_back((jobs, jobs_failed));
        while self.window.len() > self.config.window_runs {
            self.window.pop_front();
        }
        let total: usize = self.window.iter().map(|(j, _)| *j).sum();
        let failed: usize = self.window.iter().map(|(_, f)| *f).sum();
        if total >= self.config.min_window_jobs
            && failed as f64 > self.config.error_rate_threshold * total as f64
        {
            self.transition(BreakerState::Open);
            self.bypassed = 0;
            self.trips += 1;
        }
    }
}

/// Outcome of one budgeted job run ([`crate::exec::RecodedSpmv::run_job`]).
#[derive(Debug)]
pub struct JobReport {
    /// Typed terminal state — always set.
    pub state: JobState,
    /// The decoded matrix, when the job produced one.
    pub matrix: Option<Csr>,
    /// Execution stats, when the job produced them (hardware path, or the
    /// synthesized software-path stats).
    pub stats: Option<ExecStats>,
    /// The error, for `DeadlineExceeded` / `Rejected` states.
    pub error: Option<ExecError>,
    /// True when the breaker bypassed the accelerator entirely.
    pub software_path: bool,
    /// Breaker state *after* this run (`Closed` when no breaker was used).
    pub breaker: BreakerState,
}

impl JobReport {
    /// Classifies a finished run into its terminal state.
    pub fn classify(result: &Result<ExecStats, ExecError>, software_path: bool) -> JobState {
        match result {
            Ok(stats) => {
                if software_path || stats.degraded || stats.software_decode {
                    JobState::Degraded
                } else {
                    JobState::Completed
                }
            }
            Err(ExecError::DeadlineExceeded { .. }) => JobState::DeadlineExceeded,
            Err(_) => JobState::Rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_admits_forever() {
        let mut t = BudgetTracker::new(JobBudget::unbounded());
        for _ in 0..10_000 {
            assert!(t.admit_retry().is_ok());
        }
        assert_eq!(t.retries(), 10_000);
        assert_eq!(t.backoff_cycles(), 0);
    }

    #[test]
    fn retry_cap_names_the_exhausted_budget() {
        let budget = JobBudget { max_total_retries: Some(2), ..JobBudget::default() };
        let mut t = BudgetTracker::new(budget);
        assert!(t.admit_retry().is_ok());
        assert!(t.admit_retry().is_ok());
        assert_eq!(t.admit_retry(), Err("retry budget"));
    }

    #[test]
    fn cycle_cap_blocks_after_charge() {
        let budget = JobBudget { max_retry_cycles: Some(100), ..JobBudget::default() };
        let mut t = BudgetTracker::new(budget);
        assert!(t.admit_retry().is_ok());
        t.charge_retry_cycles(99);
        assert!(t.admit_retry().is_ok(), "99 < 100 still admits");
        t.charge_retry_cycles(1);
        assert_eq!(t.admit_retry(), Err("cycle budget"));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let budget = JobBudget::with_deadline(Duration::ZERO);
        let mut t = BudgetTracker::new(budget);
        assert_eq!(t.admit_retry(), Err("wall deadline"));
    }

    #[test]
    fn backoff_accumulates_per_admitted_retry() {
        let budget = JobBudget { backoff_cycles_per_retry: 50, ..JobBudget::default() };
        let mut t = BudgetTracker::new(budget);
        t.admit_retry().unwrap();
        t.admit_retry().unwrap();
        assert_eq!(t.backoff_cycles(), 100);
    }

    #[test]
    fn breaker_trips_on_windowed_error_rate_and_recovers_via_probe() {
        let config = BreakerConfig {
            window_runs: 4,
            error_rate_threshold: 0.5,
            min_window_jobs: 10,
            cooldown_runs: 2,
        };
        let mut b = CircuitBreaker::new(config);
        assert_eq!(b.state(), BreakerState::Closed);
        // Healthy runs never trip it.
        for _ in 0..10 {
            assert!(b.admit());
            b.record(10, 0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Two disastrous runs push the windowed rate over 50%.
        b.record(10, 10);
        assert_eq!(b.state(), BreakerState::Closed, "window still mostly healthy");
        b.record(10, 10);
        b.record(10, 10);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Open: bypasses until the cooldown elapses, then probes.
        assert!(!b.admit(), "first open run bypasses");
        assert!(b.admit(), "second open run becomes the half-open probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.probes(), 1);
        // Failed probe re-opens.
        b.record(10, 3);
        assert_eq!(b.state(), BreakerState::Open);
        // Next probe succeeds and closes.
        assert!(!b.admit());
        assert!(b.admit());
        b.record(10, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        // History was cleared: a bad run below the window minimum does not
        // instantly re-trip (the old disastrous runs are forgotten).
        b.record(4, 4);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_needs_min_window_jobs_before_tripping() {
        let config = BreakerConfig { min_window_jobs: 100, ..BreakerConfig::default() };
        let mut b = CircuitBreaker::new(config);
        b.record(10, 10);
        assert_eq!(b.state(), BreakerState::Closed, "too few jobs observed to trip");
    }

    #[test]
    fn job_states_render_stably() {
        assert_eq!(JobState::Completed.to_string(), "completed");
        assert_eq!(JobState::Degraded.to_string(), "degraded");
        assert_eq!(JobState::DeadlineExceeded.to_string(), "deadline-exceeded");
        assert_eq!(JobState::Rejected.to_string(), "rejected");
    }
}
