//! Analytic SpMV performance model (Figs. 3, 14, 15).
//!
//! SpMV at scale is bandwidth-bound (§II-B): the achieved flop rate is
//! `2 flops × (bytes moved per non-zero)⁻¹ × memory bandwidth`. The three
//! scenarios differ only in *how many bytes per non-zero cross the memory
//! interface* and in *what bounds the decompression*:
//!
//! | scenario | bytes/nnz on the wire | decompression bound |
//! |---|---|---|
//! | Max Uncompressed | 12 (raw CSR) | — |
//! | Decomp(CPU) | compressed | CPU software DSH throughput |
//! | Decomp(UDP+CPU) | compressed | UDP aggregate throughput (paper sizes the UDP count to the memory rate) |

use crate::arch::{Scenario, SystemConfig};
use recode_codec::metrics::RAW_CSR_BYTES_PER_NNZ;
use serde::{Deserialize, Serialize};

/// Inputs for one scenario evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpmvPerfModel {
    /// Compressed bytes per non-zero (12.0 for uncompressed CSR).
    pub bytes_per_nnz: f64,
    /// Measured UDP decompressed-output throughput per 64-lane accelerator
    /// (bytes/s); see `crate::measure`.
    pub udp_out_bps_per_accel: f64,
}

/// One scenario's modeled outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario.
    pub scenario: Scenario,
    /// Achieved SpMV rate, Gflop/s.
    pub gflops: f64,
    /// Memory bandwidth actually consumed, bytes/s.
    pub mem_bw_used: f64,
    /// UDP accelerators required (0 for CPU scenarios).
    pub udps: usize,
}

impl SpmvPerfModel {
    /// Evaluates one scenario on `sys`.
    pub fn evaluate(&self, sys: &SystemConfig, scenario: Scenario) -> ScenarioResult {
        match scenario {
            Scenario::CpuUncompressed => {
                let flops = sys.cpu.spmv_flops(&sys.mem, RAW_CSR_BYTES_PER_NNZ);
                ScenarioResult {
                    scenario,
                    gflops: flops / 1e9,
                    mem_bw_used: sys.mem.peak_bw_bps,
                    udps: 0,
                }
            }
            Scenario::CpuSoftwareDecomp => {
                // The CPU must expand compressed data to 12 B/nnz CSR before
                // multiplying; its software DSH throughput (output bytes/s)
                // is the bound, far below memory bandwidth.
                let decomp_out = sys.cpu.dsh_decomp_bps(sys.cpu.threads);
                let nnz_rate_decomp = decomp_out / RAW_CSR_BYTES_PER_NNZ;
                // Memory could deliver compressed data faster; take the min.
                let nnz_rate_mem = sys.mem.peak_bw_bps / self.bytes_per_nnz;
                let nnz_rate = nnz_rate_decomp.min(nnz_rate_mem);
                ScenarioResult {
                    scenario,
                    gflops: 2.0 * nnz_rate / 1e9,
                    mem_bw_used: nnz_rate * self.bytes_per_nnz,
                    udps: 0,
                }
            }
            Scenario::HeteroUdp => {
                // Compressed stream saturates memory; UDP count is sized to
                // the decompressed-output rate that implies (the paper's
                // "sufficient number of UDPs to meet the desired memory
                // rate").
                let nnz_rate_mem = sys.mem.peak_bw_bps / self.bytes_per_nnz;
                let decomp_out_needed = nnz_rate_mem * RAW_CSR_BYTES_PER_NNZ;
                let udps =
                    (decomp_out_needed / self.udp_out_bps_per_accel).ceil().max(1.0) as usize;
                // Cap SpMV by the CPU compute ceiling too (never binds at
                // realistic compression).
                let flops = (2.0 * nnz_rate_mem).min(sys.cpu.peak_flops());
                ScenarioResult {
                    scenario,
                    gflops: flops / 1e9,
                    mem_bw_used: sys.mem.peak_bw_bps,
                    udps,
                }
            }
        }
    }

    /// Evaluates all three scenarios.
    pub fn evaluate_all(&self, sys: &SystemConfig) -> [ScenarioResult; 3] {
        Scenario::ALL.map(|s| self.evaluate(sys, s))
    }

    /// Speedup of the heterogeneous system over uncompressed CPU — the
    /// paper's headline metric (geomean 2.4×).
    pub fn hetero_speedup(&self, sys: &SystemConfig) -> f64 {
        let base = self.evaluate(sys, Scenario::CpuUncompressed).gflops;
        let het = self.evaluate(sys, Scenario::HeteroUdp).gflops;
        het / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(bpnnz: f64) -> SpmvPerfModel {
        SpmvPerfModel { bytes_per_nnz: bpnnz, udp_out_bps_per_accel: 24e9 }
    }

    #[test]
    fn uncompressed_ddr_matches_paper_fig3() {
        let r = model(12.0).evaluate(&SystemConfig::ddr4(), Scenario::CpuUncompressed);
        assert!((r.gflops - 16.666).abs() < 0.01, "{}", r.gflops);
    }

    #[test]
    fn five_bytes_per_nnz_gives_2_4x() {
        // The paper's headline: 12 -> 5 B/nnz is a 2.4x speedup.
        let m = model(5.0);
        let s = m.hetero_speedup(&SystemConfig::ddr4());
        assert!((s - 2.4).abs() < 0.01, "speedup {s}");
        let s = m.hetero_speedup(&SystemConfig::hbm2());
        assert!((s - 2.4).abs() < 0.01, "speedup is bandwidth-independent, got {s}");
    }

    #[test]
    fn cpu_software_decomp_is_30x_worse_than_hetero() {
        let m = model(5.0);
        let sys = SystemConfig::ddr4();
        let het = m.evaluate(&sys, Scenario::HeteroUdp).gflops;
        let sw = m.evaluate(&sys, Scenario::CpuSoftwareDecomp).gflops;
        assert!(het / sw > 30.0, "paper claims >30x, got {:.1}x", het / sw);
    }

    #[test]
    fn udp_count_scales_with_bandwidth() {
        let m = model(5.0);
        let ddr = m.evaluate(&SystemConfig::ddr4(), Scenario::HeteroUdp).udps;
        let hbm = m.evaluate(&SystemConfig::hbm2(), Scenario::HeteroUdp).udps;
        assert!(ddr >= 1);
        assert!(hbm > ddr, "1 TB/s needs more UDPs than 100 GB/s");
        // DDR: decompressed rate = 100e9 * 12/5 = 240 GB/s -> 10 UDPs at 24 GB/s.
        assert_eq!(ddr, 10);
    }

    #[test]
    fn software_decomp_memory_bw_is_tiny() {
        let m = model(5.0);
        let r = m.evaluate(&SystemConfig::ddr4(), Scenario::CpuSoftwareDecomp);
        assert!(r.mem_bw_used < 0.05 * SystemConfig::ddr4().mem.peak_bw_bps);
    }

    #[test]
    fn incompressible_matrix_gives_no_speedup() {
        let m = model(12.0);
        let s = m.hetero_speedup(&SystemConfig::ddr4());
        assert!((s - 1.0).abs() < 1e-9);
    }
}
