//! Lightweight span/counter/histogram telemetry for the whole recoded-SpMV
//! pipeline, exported as one stable JSON trace document.
//!
//! Everything here is plain data + `std` — no new dependencies. The
//! trace-off path costs nothing: every instrumented function takes
//! `Option<&mut Telemetry>` and skips all timing when it is `None`.
//!
//! ## Schema
//!
//! A [`TraceDocument`] (version [`TRACE_SCHEMA`]) aggregates:
//!
//! * [`Span`]s — wall-clock (`wall_ns`) and/or modeled (`modeled_seconds`)
//!   durations for each pipeline phase (`exec.decode_batch`, `exec.retry`,
//!   `exec.fallback`, `exec.reassemble`, `exec.mem_stream`, `exec.dma`,
//!   `exec.cpu_multiply`);
//! * counters — dotted lowercase names (`exec.blocks_retried`,
//!   `mem.read.compressed_stream`, ...);
//! * a log₂-bucketed [`CycleHistogram`] of per-block decode cycles;
//! * per-block [`BlockEvent`] records (job, stream, block, lane, cycles,
//!   outcome);
//! * the accelerator's per-lane/per-opcode-class breakdown (via
//!   `ExecStats::accel`), the codec's per-stage timings, and the memory
//!   traffic ledger by source.

use crate::exec::ExecStats;
use recode_codec::telemetry::CodecStageReport;
use recode_mem::traffic::{TrafficLedger, TrafficReport};
use recode_mem::MemorySystem;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Current trace-document schema identifier. v2 adds the resilience layer:
/// `pool.*` / `breaker.*` counters and an optional flight-recorder summary.
pub const TRACE_SCHEMA: &str = "recode-trace/v2";

/// The original schema. Documents without any v2 content are still stamped
/// (and [`TraceDocument::validate`]d) as v1, so traces from paths that never
/// touch the resilience machinery — and old golden fixtures — stay
/// byte-identical.
pub const TRACE_SCHEMA_V1: &str = "recode-trace/v1";

/// A log₂-bucketed histogram of `u64` samples (block decode cycles).
///
/// Bucket 0 holds zeros; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b - 1]`. Buckets are stored sparsely so the JSON stays
/// small and schema-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sparse `bucket index → count` map.
    pub buckets: BTreeMap<u8, u64>,
}

impl CycleHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` lands in.
    pub fn bucket_index(value: u64) -> u8 {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as u8
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `b`.
    pub fn bucket_range(b: u8) -> (u64, u64) {
        match b {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            b => (1u64 << (b - 1), (1u64 << b) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &CycleHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
    }
}

/// One named pipeline phase. `wall_ns` is host wall-clock time actually
/// spent simulating/executing the phase; `modeled_seconds` is the
/// architectural model's time for the phase (0.0 when not applicable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Dotted lowercase phase name (e.g. `exec.decode_batch`).
    pub name: String,
    /// Host wall-clock nanoseconds spent in the phase.
    pub wall_ns: u64,
    /// Modeled seconds on the simulated system (0.0 if not modeled).
    pub modeled_seconds: f64,
    /// Bytes the phase processed (0 if not meaningful).
    pub bytes: u64,
}

/// Which compressed stream a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Column-index stream.
    Index,
    /// Value stream.
    Value,
}

/// How a block's decode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockOutcome {
    /// Decoded cleanly on the first attempt.
    Ok,
    /// Failed at least once, recovered by a retry on a fresh lane.
    Retried,
    /// Retries exhausted; served from the raw fallback store.
    FellBack,
}

/// One block's journey through the decode batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEvent {
    /// Job index in the interleaved batch.
    pub job: usize,
    /// Stream the block belongs to.
    pub stream: StreamKind,
    /// Block index within its stream.
    pub block: usize,
    /// Lane the job ran on (`job % lanes`).
    pub lane: usize,
    /// Decode cycles (the successful attempt's; 0 for fallback blocks).
    pub cycles: u64,
    /// Outcome classification.
    pub outcome: BlockOutcome,
}

/// Aggregate view of a flight-recorder session, embedded in v2 traces when
/// the recorder was enabled for the run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderSummary {
    /// Events accepted by the recorder over the run.
    pub recorded: u64,
    /// Events lost to ring overwrite (the ring never blocks the pipeline).
    pub dropped: u64,
    /// Ring capacity in events.
    pub capacity: usize,
    /// Drained events by kind label (`span_begin`, `block_outcome`, ...).
    pub by_kind: BTreeMap<String, u64>,
}

impl RecorderSummary {
    /// Builds the summary from a drained event list plus recorder stats.
    pub fn from_events(
        events: &[crate::recorder::Event],
        stats: crate::recorder::RecorderStats,
    ) -> Self {
        let mut by_kind = BTreeMap::new();
        for e in events {
            *by_kind.entry(e.kind.label().to_string()).or_insert(0u64) += 1;
        }
        RecorderSummary {
            recorded: stats.recorded,
            dropped: stats.dropped,
            capacity: stats.capacity,
            by_kind,
        }
    }
}

/// In-flight telemetry registry threaded through the pipeline.
#[derive(Debug, Default)]
pub struct Telemetry {
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    block_cycles: CycleHistogram,
    block_events: Vec<BlockEvent>,
    /// Memory traffic by source, filled by the exec path.
    pub traffic: TrafficLedger,
}

impl Telemetry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finished span.
    pub fn span(&mut self, name: &str, wall_ns: u64, modeled_seconds: f64, bytes: u64) {
        self.spans.push(Span { name: name.to_string(), wall_ns, modeled_seconds, bytes });
    }

    /// Adds `delta` to counter `name` (created at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one block event (and its cycles into the histogram).
    pub fn block_event(&mut self, event: BlockEvent) {
        self.block_cycles.record(event.cycles);
        self.block_events.push(event);
    }

    /// Recorded spans, in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Recorded block events, in batch order.
    pub fn block_events(&self) -> &[BlockEvent] {
        &self.block_events
    }

    /// The block-cycle histogram.
    pub fn block_cycles(&self) -> &CycleHistogram {
        &self.block_cycles
    }

    /// Folds `other` into `self`: spans/events append, counters and the
    /// histogram add, traffic merges.
    pub fn merge(&mut self, other: Telemetry) {
        self.spans.extend(other.spans);
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        self.block_cycles.merge(&other.block_cycles);
        self.block_events.extend(other.block_events);
        self.traffic.merge(&other.traffic);
    }

    /// Seals the registry into a [`TraceDocument`]. Memory-traffic counters
    /// (`mem.read.<source>` / `mem.write.<source>`) are derived from the
    /// ledger here so counters and the traffic report can never disagree.
    pub fn into_document(
        mut self,
        matrix: MatrixMeta,
        system: SystemMeta,
        exec: ExecStats,
        codec_stages: CodecStageReport,
        mem: &MemorySystem,
        wall_ns_total: u64,
    ) -> TraceDocument {
        use recode_mem::traffic::TrafficSource;
        for s in TrafficSource::ALL {
            let r = self.traffic.read_bytes(s);
            let w = self.traffic.write_bytes(s);
            if r > 0 {
                self.add(&format!("mem.read.{}", s.name()), r);
            }
            if w > 0 {
                self.add(&format!("mem.write.{}", s.name()), w);
            }
        }
        // Schema is content-dependent: a document only claims v2 when it
        // actually carries v2 content (resilience counters; a recorder
        // summary attached later also promotes). Runs that never touch the
        // resilience layer keep emitting byte-identical v1 documents.
        let has_v2_counters =
            self.counters.keys().any(|k| k.starts_with("pool.") || k.starts_with("breaker."));
        TraceDocument {
            schema: if has_v2_counters { TRACE_SCHEMA } else { TRACE_SCHEMA_V1 }.to_string(),
            matrix,
            system,
            wall_ns_total,
            spans: self.spans,
            counters: self.counters,
            block_cycles: self.block_cycles,
            block_events: self.block_events,
            codec_stages,
            mem_traffic: self.traffic.report(mem),
            exec,
            recorder: None,
        }
    }
}

/// Matrix identity in a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatrixMeta {
    /// Display name (file stem or generator name; may be empty).
    pub name: String,
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Compressed wire bytes.
    pub compressed_bytes: usize,
    /// Compressed bytes per non-zero (raw CSR = 12.0).
    pub bytes_per_nnz: f64,
}

/// Simulated-platform identity in a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemMeta {
    /// Memory-system name.
    pub memory: String,
    /// UDP lanes.
    pub lanes: usize,
    /// UDP clock, Hz.
    pub freq_hz: f64,
}

/// The exported trace: one self-contained, schema-versioned JSON document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceDocument {
    /// Schema identifier ([`TRACE_SCHEMA`]).
    pub schema: String,
    /// Matrix identity.
    pub matrix: MatrixMeta,
    /// Platform identity.
    pub system: SystemMeta,
    /// Host wall-clock nanoseconds for the whole traced run.
    pub wall_ns_total: u64,
    /// Per-phase spans, in execution order.
    pub spans: Vec<Span>,
    /// Dotted-name counters.
    pub counters: BTreeMap<String, u64>,
    /// Log₂ histogram of per-block decode cycles.
    pub block_cycles: CycleHistogram,
    /// Per-block event records.
    pub block_events: Vec<BlockEvent>,
    /// Software-codec per-stage timings and byte counters.
    pub codec_stages: CodecStageReport,
    /// Memory traffic by source.
    pub mem_traffic: TrafficReport,
    /// Execution stats, including the accelerator report with per-lane
    /// profiles, opcode-class and stage cycle attribution.
    pub exec: ExecStats,
    /// Flight-recorder summary (v2; absent in v1 documents and when the
    /// recorder was off for the run).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recorder: Option<RecorderSummary>,
}

impl TraceDocument {
    /// Sum of measured span time (nanoseconds).
    pub fn spans_wall_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.wall_ns).sum()
    }

    /// Attaches a flight-recorder summary, which is v2-only content and so
    /// promotes the document's schema stamp.
    pub fn attach_recorder(&mut self, summary: RecorderSummary) {
        self.recorder = Some(summary);
        self.schema = TRACE_SCHEMA.to_string();
    }

    /// True when the document carries any v2-only content (resilience
    /// counters or a recorder summary).
    pub fn has_v2_content(&self) -> bool {
        self.recorder.is_some()
            || self.counters.keys().any(|k| k.starts_with("pool.") || k.starts_with("breaker."))
    }

    /// Structural validation: schema version plus the invariants the
    /// pipeline guarantees. Accepts both [`TRACE_SCHEMA`] (v2) and
    /// [`TRACE_SCHEMA_V1`] documents; a v1 stamp on v2 content is a
    /// violation. Returns a list of violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        match self.schema.as_str() {
            TRACE_SCHEMA => {}
            TRACE_SCHEMA_V1 => {
                if self.has_v2_content() {
                    errs.push(format!(
                        "document stamped `{TRACE_SCHEMA_V1}` carries v2 content \
                         (recorder summary or pool.*/breaker.* counters)"
                    ));
                }
            }
            other => {
                errs.push(format!(
                    "schema `{other}` is neither `{TRACE_SCHEMA}` nor `{TRACE_SCHEMA_V1}`"
                ));
            }
        }
        if let Some(rec) = &self.recorder {
            let drained: u64 = rec.by_kind.values().sum();
            if drained > rec.recorded {
                errs.push(format!(
                    "recorder summary drains {drained} events but only {} were recorded",
                    rec.recorded
                ));
            }
        }
        if self.spans_wall_ns() > self.wall_ns_total {
            errs.push(format!(
                "span wall time {} ns exceeds total {} ns",
                self.spans_wall_ns(),
                self.wall_ns_total
            ));
        }
        if self.block_cycles.count != self.block_events.len() as u64 {
            errs.push(format!(
                "histogram count {} != block events {}",
                self.block_cycles.count,
                self.block_events.len()
            ));
        }
        let event_cycles: u64 = self.block_events.iter().map(|e| e.cycles).sum();
        if self.block_cycles.sum != event_cycles {
            errs.push(format!(
                "histogram sum {} != event cycle sum {}",
                self.block_cycles.sum, event_cycles
            ));
        }
        // Certified-bound floor: a block that actually ran on a lane spent
        // at least one cycle (fallback blocks never ran and record zero).
        // The full envelope re-check — rebuilding the table-independent
        // stage programs and comparing against their certified CycleBounds —
        // lives in `recode trace-check --bounds`; this structural floor is
        // the part every trace can assert without access to the programs.
        for e in &self.block_events {
            if e.outcome != BlockOutcome::FellBack && e.cycles == 0 {
                errs.push(format!(
                    "block event (job {}, outcome {:?}) ran on a lane but recorded 0 cycles",
                    e.job, e.outcome
                ));
            }
        }
        let accel = &self.exec.accel;
        if !accel.lane_profiles.is_empty() && accel.lane_profiles.len() != accel.lanes {
            errs.push(format!(
                "{} lane profiles for {} lanes",
                accel.lane_profiles.len(),
                accel.lanes
            ));
        }
        let lane_busy: u64 =
            accel.lane_profiles.iter().map(|p| p.busy_cycles + p.stall_cycles).sum();
        // Retry cycles are folded into the batch totals after the fact, so
        // lane profiles may undercount busy cycles by exactly that much.
        if !accel.lane_profiles.is_empty()
            && lane_busy + self.exec.retry_cycles != accel.busy_cycles
        {
            errs.push(format!(
                "lane profiles sum to {} busy cycles, report says {} (retry {})",
                lane_busy, accel.busy_cycles, self.exec.retry_cycles
            ));
        }
        let traffic_total: u64 =
            self.mem_traffic.by_source.iter().map(|s| s.read_bytes + s.write_bytes).sum();
        if traffic_total != self.mem_traffic.total_bytes {
            errs.push(format!(
                "traffic by-source sum {} != total {}",
                traffic_total, self.mem_traffic.total_bytes
            ));
        }
        for (name, stat) in [
            ("exec.blocks_retried", self.exec.blocks_retried as u64),
            ("exec.blocks_fell_back", self.exec.blocks_fell_back as u64),
        ] {
            if self.counter(name) != stat {
                errs.push(format!(
                    "counter {name} = {} disagrees with exec stats {stat}",
                    self.counter(name)
                ));
            }
        }
        // Overlapped-schedule invariants. The batch path leaves OverlapStats
        // all-zero and emits none of these counters, so every check below is
        // vacuously true on old traces.
        let ov = &self.exec.overlap;
        if ov.overlapped_makespan_cycles > ov.serial_makespan_cycles {
            errs.push(format!(
                "overlapped makespan {} exceeds serial makespan {}",
                ov.overlapped_makespan_cycles, ov.serial_makespan_cycles
            ));
        }
        if ov.overlapped_makespan_cycles < ov.decode_cycles.max(ov.multiply_cycles) {
            errs.push(format!(
                "overlapped makespan {} below an engine's critical path (decode {}, multiply {})",
                ov.overlapped_makespan_cycles, ov.decode_cycles, ov.multiply_cycles
            ));
        }
        for (name, stat) in [
            ("pipeline.overlap.stages", ov.stages as u64),
            ("pipeline.overlap.decode_cycles", ov.decode_cycles),
            ("pipeline.overlap.multiply_cycles", ov.multiply_cycles),
            ("pipeline.overlap.makespan_cycles", ov.overlapped_makespan_cycles),
            ("pipeline.overlap.serial_cycles", ov.serial_makespan_cycles),
            ("cache.hits", ov.cache_hits),
            ("cache.misses", ov.cache_misses),
            ("cache.evictions", ov.cache_evictions),
            ("cache.hit_bytes", ov.cache_hit_bytes),
        ] {
            if self.counter(name) != stat {
                errs.push(format!(
                    "counter {name} = {} disagrees with overlap stats {stat}",
                    self.counter(name)
                ));
            }
        }
        if ov.enabled && self.exec.accel.makespan_cycles != ov.overlapped_makespan_cycles {
            errs.push(format!(
                "accel makespan {} != overlapped makespan {}",
                self.exec.accel.makespan_cycles, ov.overlapped_makespan_cycles
            ));
        }
        errs
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Renders the human-readable `recode report` table for a trace.
pub fn render_report(doc: &TraceDocument) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let m = &doc.matrix;
    let _ = writeln!(out, "== recode trace report ({}) ==", doc.schema);
    let _ = writeln!(
        out,
        "matrix {}: {} x {}, {} nnz, {} compressed bytes ({:.2} B/nnz)",
        if m.name.is_empty() { "<unnamed>" } else { &m.name },
        m.nrows,
        m.ncols,
        m.nnz,
        m.compressed_bytes,
        m.bytes_per_nnz
    );
    let s = &doc.system;
    let _ =
        writeln!(out, "system: {} | {} UDP lanes @ {:.2} GHz", s.memory, s.lanes, s.freq_hz / 1e9);
    let _ = writeln!(out, "\n-- phases (wall {:.3} ms total) --", doc.wall_ns_total as f64 / 1e6);
    let _ = writeln!(out, "{:<20} {:>12} {:>14} {:>12}", "span", "wall us", "modeled us", "bytes");
    for sp in &doc.spans {
        let _ = writeln!(
            out,
            "{:<20} {:>12.1} {:>14.3} {:>12}",
            sp.name,
            sp.wall_ns as f64 / 1e3,
            sp.modeled_seconds * 1e6,
            sp.bytes
        );
    }
    let a = &doc.exec.accel;
    let _ = writeln!(out, "\n-- accelerator --");
    let _ = writeln!(
        out,
        "jobs {} (failed {}), makespan {} cycles, busy {}, utilization {:.1}%",
        a.jobs,
        a.jobs_failed,
        a.makespan_cycles,
        a.busy_cycles,
        a.lane_utilization * 100.0
    );
    let oc = &a.opclass;
    let total = oc.total().max(1);
    let _ = writeln!(
        out,
        "opcode classes: dispatch {:.1}% | alu {:.1}% | mem {:.1}% | stream {:.1}%",
        oc.dispatch as f64 * 100.0 / total as f64,
        oc.alu as f64 * 100.0 / total as f64,
        oc.mem as f64 * 100.0 / total as f64,
        oc.stream as f64 * 100.0 / total as f64
    );
    let st = &a.stage_cycles;
    let stotal = st.total().max(1);
    let _ = writeln!(
        out,
        "decode stages: huffman {:.1}% | snappy {:.1}% | delta {:.1}%",
        st.huffman as f64 * 100.0 / stotal as f64,
        st.snappy as f64 * 100.0 / stotal as f64,
        st.delta as f64 * 100.0 / stotal as f64
    );
    let h = &doc.block_cycles;
    let _ = writeln!(out, "\n-- per-block decode cycles (log2 buckets) --");
    let _ = writeln!(out, "count {}, mean {:.0}, min {}, max {}", h.count, h.mean(), h.min, h.max);
    for (&b, &c) in &h.buckets {
        let (lo, hi) = CycleHistogram::bucket_range(b);
        let _ = writeln!(out, "  [{lo:>10}, {hi:>10}] {c:>6}");
    }
    let _ = writeln!(out, "\n-- memory traffic ({}) --", doc.mem_traffic.memory);
    for src in &doc.mem_traffic.by_source {
        let _ = writeln!(
            out,
            "{:<20} read {:>12} B  write {:>12} B",
            src.source.name(),
            src.read_bytes,
            src.write_bytes
        );
    }
    let _ = writeln!(
        out,
        "total {} B, {:.3} us at peak bandwidth, {:.3} mJ",
        doc.mem_traffic.total_bytes,
        doc.mem_traffic.stream_seconds * 1e6,
        doc.mem_traffic.transfer_joules * 1e3
    );
    let cs = &doc.codec_stages;
    let _ = writeln!(out, "\n-- software codec stages --");
    for (dir, d) in [("encode", &cs.encode), ("decode", &cs.decode)] {
        for (stage, st) in [("delta", &d.delta), ("snappy", &d.snappy), ("huffman", &d.huffman)] {
            if st.calls == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{dir:<7} {stage:<8} {:>8} blocks {:>12.1} us  {:>12} -> {:>12} B",
                st.calls,
                st.ns as f64 / 1e3,
                st.bytes_in,
                st.bytes_out
            );
        }
    }
    let e = &doc.exec;
    let _ = writeln!(out, "\n-- degradation --");
    let _ = writeln!(
        out,
        "retried {} | fell back {} | fallback bytes {} | retry cycles {} | degraded: {}",
        e.blocks_retried, e.blocks_fell_back, e.fallback_bytes, e.retry_cycles, e.degraded
    );
    let ov = &e.overlap;
    if ov.stages > 0 || ov.enabled {
        let _ = writeln!(out, "\n-- overlap --");
        let _ = writeln!(
            out,
            "pipelined: {} | stages {} | workers {} | decode {} cy | multiply {} cy",
            ov.enabled, ov.stages, ov.workers, ov.decode_cycles, ov.multiply_cycles
        );
        let _ = writeln!(
            out,
            "makespan {} cy overlapped vs {} cy serial (saved {} cy)",
            ov.overlapped_makespan_cycles,
            ov.serial_makespan_cycles,
            ov.saved_cycles()
        );
        let _ = writeln!(
            out,
            "cache: {} hits / {} misses / {} evictions, {} B served from cache",
            ov.cache_hits, ov.cache_misses, ov.cache_evictions, ov.cache_hit_bytes
        );
    }
    // Resilience section: only v2 documents carry pool/breaker counters or
    // a recorder summary, so v1 reports are unchanged byte-for-byte.
    if doc.has_v2_content() {
        let _ = writeln!(out, "\n-- resilience --");
        if doc.counters.keys().any(|k| k.starts_with("pool.")) {
            let _ = writeln!(
                out,
                "lane pool: {} checkouts ({} recycled, {} fresh, {} readmitted) | \
                 returned {} | dropped {} | quarantined {}",
                doc.counter("pool.checkouts"),
                doc.counter("pool.recycled_hits"),
                doc.counter("pool.fresh_builds"),
                doc.counter("pool.readmitted"),
                doc.counter("pool.returned"),
                doc.counter("pool.dropped_at_capacity"),
                doc.counter("pool.quarantined"),
            );
        }
        if doc.counters.keys().any(|k| k.starts_with("breaker.")) {
            let state = match doc.counter("breaker.state") {
                0 => "closed",
                1 => "open",
                _ => "half-open",
            };
            let _ = writeln!(
                out,
                "circuit breaker: state {state} | trips {} | probes {}",
                doc.counter("breaker.trips"),
                doc.counter("breaker.probes"),
            );
        }
        if let Some(rec) = &doc.recorder {
            let _ = writeln!(
                out,
                "flight recorder: {} events recorded, {} dropped (ring capacity {})",
                rec.recorded, rec.dropped, rec.capacity
            );
            for (kind, n) in &rec.by_kind {
                let _ = writeln!(out, "  {kind:<20} {n:>8}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_indexing_is_log2() {
        assert_eq!(CycleHistogram::bucket_index(0), 0);
        assert_eq!(CycleHistogram::bucket_index(1), 1);
        assert_eq!(CycleHistogram::bucket_index(2), 2);
        assert_eq!(CycleHistogram::bucket_index(3), 2);
        assert_eq!(CycleHistogram::bucket_index(4), 3);
        assert_eq!(CycleHistogram::bucket_index(1023), 10);
        assert_eq!(CycleHistogram::bucket_index(1024), 11);
        assert_eq!(CycleHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_bucket_ranges_tile_the_u64_line() {
        let (lo0, hi0) = CycleHistogram::bucket_range(0);
        assert_eq!((lo0, hi0), (0, 0));
        let mut expected_lo = 1u64;
        for b in 1..=63u8 {
            let (lo, hi) = CycleHistogram::bucket_range(b);
            assert_eq!(lo, expected_lo, "bucket {b}");
            assert_eq!(hi, lo * 2 - 1, "bucket {b}");
            // Every value in [lo, hi] maps back to bucket b.
            assert_eq!(CycleHistogram::bucket_index(lo), b);
            assert_eq!(CycleHistogram::bucket_index(hi), b);
            expected_lo = hi + 1;
        }
        assert_eq!(CycleHistogram::bucket_range(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = CycleHistogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            a.record(v);
        }
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 1011);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, 1000);
        assert_eq!(a.buckets[&0], 1);
        assert_eq!(a.buckets[&3], 2, "two fives in [4,7]");

        let mut b = CycleHistogram::new();
        b.record(7);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count, 7);
        assert_eq!(a.sum, 1011 + 2007);
        assert_eq!(a.max, 2000);
        assert_eq!(a.buckets[&3], 3, "7 joins the [4,7] bucket");

        let mut empty = CycleHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a, "merge into empty copies");
        let snapshot = a.clone();
        a.merge(&CycleHistogram::new());
        assert_eq!(a, snapshot, "merging empty is a no-op");
    }

    #[test]
    fn counter_merge_adds_and_unions() {
        let mut a = Telemetry::new();
        a.add("exec.blocks_retried", 2);
        a.add("exec.jobs", 10);
        let mut b = Telemetry::new();
        b.add("exec.blocks_retried", 3);
        b.add("exec.blocks_fell_back", 1);
        a.merge(b);
        assert_eq!(a.counter("exec.blocks_retried"), 5);
        assert_eq!(a.counter("exec.jobs"), 10);
        assert_eq!(a.counter("exec.blocks_fell_back"), 1);
        assert_eq!(a.counter("never.touched"), 0);
    }

    #[test]
    fn telemetry_merge_concatenates_spans_and_events() {
        let mut a = Telemetry::new();
        a.span("exec.decode_batch", 100, 0.5, 64);
        a.block_event(BlockEvent {
            job: 0,
            stream: StreamKind::Index,
            block: 0,
            lane: 0,
            cycles: 10,
            outcome: BlockOutcome::Ok,
        });
        let mut b = Telemetry::new();
        b.span("exec.retry", 50, 0.0, 0);
        b.block_event(BlockEvent {
            job: 1,
            stream: StreamKind::Value,
            block: 0,
            lane: 1,
            cycles: 20,
            outcome: BlockOutcome::Retried,
        });
        a.merge(b);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.block_events().len(), 2);
        assert_eq!(a.block_cycles().count, 2);
        assert_eq!(a.block_cycles().sum, 30);
    }
}
