//! Functional execution of recoding-enhanced SpMV (paper Figs. 6 and 7).
//!
//! The matrix lives in memory compressed; UDP lanes decode the column-index
//! and value blocks (running the real decoder programs on the simulator);
//! the CPU multiplies the recovered CSR. This module is the workspace's
//! end-to-end correctness proof: `RecodedSpmv::spmv` must equal the
//! uncompressed kernel bit-for-bit, because the pipeline is lossless.
//!
//! ## Fault tolerance
//!
//! A batch never dies on one bad block. Each failed job (lane trap or CRC
//! mismatch) is retried up to [`MAX_BLOCK_RETRIES`] times on a fresh lane —
//! transient faults clear, integrity failures do not — and a block that
//! still fails is re-fetched from the optional [`RawFallbackStore`] holding
//! the uncompressed stream bytes, with the extra memory traffic charged to
//! [`ExecStats`]. Only when both paths are exhausted does the call fail,
//! with [`ExecError::Unrecoverable`] naming the block.

use crate::arch::SystemConfig;
use crate::error::{ExecError, ExecResult};
use crate::overlap::OverlapStats;
use crate::recorder;
use crate::resilience::{
    BreakerState, BudgetTracker, CircuitBreaker, JobBudget, JobReport, JobState,
};
use crate::telemetry::{
    BlockEvent, BlockOutcome, MatrixMeta, StreamKind, SystemMeta, Telemetry, TraceDocument,
};
use recode_codec::block::{BlockStream, CompressedBlock};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_codec::telemetry::StageTelemetry;
use recode_codec::CodecError;
use recode_mem::traffic::TrafficSource;
use recode_sparse::spmv::{spmv_with_into, SpmvKernel};
use recode_sparse::Csr;
use recode_udp::accel::{AccelReport, BatchOutcome, FaultHook, JobEvent, JobEventSink};
use recode_udp::progs::DshDecoder;
use recode_udp::{Lane, UdpError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many times a failed block is re-decoded on a fresh lane before the
/// raw-store fallback kicks in.
pub const MAX_BLOCK_RETRIES: usize = 2;

/// Statistics from one UDP-decoded execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Accelerator-side report (cycles, throughput, utilization). Cycles
    /// spent on successful retry decodes *are* folded into the makespan and
    /// busy totals (retries run serially after the batch, extending the
    /// critical path), and utilization is recomputed accordingly; the extra
    /// amount is broken out in [`ExecStats::retry_cycles`].
    pub accel: AccelReport,
    /// Modeled wall-clock seconds to stream the compressed matrix from
    /// memory (the memory side of the pipeline), including any raw-store
    /// re-fetch traffic.
    pub mem_stream_seconds: f64,
    /// Modeled DMA seconds moving blocks into UDP local memory.
    pub dma_seconds: f64,
    /// Compressed bytes moved.
    pub compressed_bytes: usize,
    /// Retry decode attempts made for failed blocks.
    pub blocks_retried: usize,
    /// Blocks whose retries were exhausted and were served from the raw
    /// fallback store instead.
    pub blocks_fell_back: usize,
    /// Uncompressed bytes re-fetched through the fallback path.
    pub fallback_bytes: usize,
    /// Lane cycles spent on successful retry decodes, already included in
    /// `accel.makespan_cycles` / `accel.busy_cycles`.
    #[serde(default)]
    pub retry_cycles: u64,
    /// Scheduler backoff cycles charged by the [`JobBudget`] per retry
    /// attempt. Folded into `accel.makespan_cycles` only — backoff is
    /// waiting, not work, so busy cycles are untouched. Zero unless a
    /// budget with backoff was supplied.
    #[serde(default, skip_serializing_if = "serde_is_zero_u64")]
    pub backoff_cycles: u64,
    /// True when any block needed a retry or a fallback — the result is
    /// still bit-exact, but the run did not complete on the happy path.
    pub degraded: bool,
    /// True when the run never touched the accelerator: the circuit breaker
    /// bypassed it to the software decoder ([`RecodedSpmv::run_job`]).
    #[serde(default, skip_serializing_if = "serde_is_false")]
    pub software_decode: bool,
    /// Blocks that decoded cleanly on the first attempt. In-memory
    /// accounting only (not serialized):
    /// `blocks_ok + blocks_recovered + blocks_fell_back == accel.jobs`.
    #[serde(skip)]
    pub blocks_ok: usize,
    /// Blocks that failed initially but recovered via retry (each counted
    /// once, unlike [`ExecStats::blocks_retried`] which counts attempts).
    #[serde(skip)]
    pub blocks_recovered: usize,
    /// Pipelined-schedule and decoded-block-cache statistics. All-zero
    /// (`enabled == false`) on the plain batch path, populated by the
    /// [`crate::overlap::OverlapExecutor`].
    #[serde(default)]
    pub overlap: OverlapStats,
}

/// `skip_serializing_if` helper: keeps clean-run trace JSON byte-identical
/// to pre-resilience documents. (`dead_code` allowed: only the serde derive
/// references it, through the attribute string.)
#[allow(dead_code, clippy::trivially_copy_pass_by_ref)]
fn serde_is_zero_u64(v: &u64) -> bool {
    *v == 0
}

/// `skip_serializing_if` helper for the software-bypass flag.
#[allow(dead_code, clippy::trivially_copy_pass_by_ref)]
fn serde_is_false(v: &bool) -> bool {
    !*v
}

impl ExecStats {
    /// Compressed bytes per non-zero actually moved by this run, through the
    /// one shared [`recode_codec::metrics::bytes_per_nnz`] definition.
    pub fn bytes_per_nnz(&self, nnz: usize) -> f64 {
        recode_codec::metrics::bytes_per_nnz(self.compressed_bytes, nnz)
    }
}

/// Uncompressed stream bytes kept aside so a block whose decode cannot be
/// recovered is re-fetched from memory instead of failing the whole SpMV —
/// the paper's raw-CSR re-fetch degradation path.
#[derive(Debug, Clone, Default)]
pub struct RawFallbackStore {
    /// Column indices as little-endian `u32` words.
    pub index_bytes: Vec<u8>,
    /// Values as little-endian `f64` words.
    pub value_bytes: Vec<u8>,
}

impl RawFallbackStore {
    /// Serializes the fallback streams from an uncompressed matrix.
    pub fn from_csr(a: &Csr) -> Self {
        RawFallbackStore {
            index_bytes: a.col_idx().iter().flat_map(|c| c.to_le_bytes()).collect(),
            value_bytes: a.values().iter().flat_map(|v| v.to_le_bytes()).collect(),
        }
    }

    /// The uncompressed byte range block `block` of a stream covers, or
    /// `None` if the store is shorter than the block claims.
    pub(crate) fn block_range(bytes: &[u8], block: usize, block_bytes: usize) -> Option<&[u8]> {
        let start = block.checked_mul(block_bytes)?;
        if start >= bytes.len() && !(start == 0 && bytes.is_empty()) {
            return None;
        }
        let end = start.checked_add(block_bytes)?.min(bytes.len());
        Some(&bytes[start..end])
    }
}

/// A sparse matrix held in compressed form, executable through the
/// simulated heterogeneous system.
pub struct RecodedSpmv {
    compressed: CompressedMatrix,
    index_decoder: DshDecoder,
    value_decoder: DshDecoder,
    raw_store: Option<RawFallbackStore>,
    /// Software-codec stage telemetry, present on traced instances
    /// ([`RecodedSpmv::new_traced`]). Encode timings accumulate at
    /// compression; decode timings whenever the software path runs.
    stage_telemetry: Option<Arc<StageTelemetry>>,
}

/// Job classification for the interleaved decode batch.
enum Which<'a> {
    Index(&'a CompressedBlock),
    Value(&'a CompressedBlock),
}

/// Transport-structure check: block count and sequence positions. Per-block
/// CRCs are deliberately *not* checked here — a payload-corrupted block must
/// reach the per-job retry/fallback machinery, but a dropped, duplicated, or
/// reordered block (whose CRC is still valid) would otherwise reassemble
/// into a silently wrong matrix.
pub(crate) fn check_stream_structure(stream: &BlockStream) -> Result<(), UdpError> {
    let expected = stream.expected_blocks().map_err(UdpError::from)?;
    if stream.blocks.len() != expected {
        return Err(UdpError::from(CodecError::BlockCount {
            expected,
            actual: stream.blocks.len(),
        }));
    }
    for (k, b) in stream.blocks.iter().enumerate() {
        if b.seq as usize != k {
            return Err(UdpError::from(CodecError::BlockSequence {
                expected: k,
                found: b.seq as usize,
            })
            .with_block(k));
        }
    }
    Ok(())
}

impl RecodedSpmv {
    /// Compresses `a` for the heterogeneous system, keeping the raw stream
    /// bytes as the degradation fallback.
    ///
    /// # Errors
    /// Codec preconditions or decoder-construction failures.
    pub fn new(a: &Csr, config: MatrixCodecConfig) -> ExecResult<Self> {
        let compressed = CompressedMatrix::compress(a, config)?;
        Self::from_compressed_with_store(compressed, Some(RawFallbackStore::from_csr(a)))
    }

    /// Compresses `a` under a persisted [`crate::tune::TunedConfig`],
    /// after checking the config actually belongs to this matrix.
    ///
    /// The tuned codec (stage subset + block size) governs compression
    /// here; callers then run the tuned kernel via [`RecodedSpmv::spmv`]
    /// with [`crate::tune::TunedConfig::kernel`], or hand the recoded
    /// operand to an [`crate::overlap::OverlapExecutor`], whose tiled
    /// multiply consumes the same tuned codec stream.
    ///
    /// # Errors
    /// [`crate::tune::TuneError::DigestMismatch`] when the config was
    /// tuned for a different matrix — never a silent fallback — and
    /// [`crate::tune::TuneError::Exec`] for codec failures.
    pub fn new_tuned(
        a: &Csr,
        tuned: &crate::tune::TunedConfig,
    ) -> Result<Self, crate::tune::TuneError> {
        tuned.validate_for(a)?;
        Ok(Self::new(a, tuned.codec_config())?)
    }

    /// [`RecodedSpmv::new`] with codec-stage telemetry attached: per-stage
    /// encode timings are recorded during compression here, decode timings
    /// whenever [`RecodedSpmv::decompress_via_software`] runs, and the
    /// accumulated snapshot lands in the [`TraceDocument`] that
    /// [`RecodedSpmv::spmv_traced`] produces.
    ///
    /// # Errors
    /// As [`RecodedSpmv::new`].
    pub fn new_traced(a: &Csr, config: MatrixCodecConfig) -> ExecResult<Self> {
        let stage_telemetry = Arc::new(StageTelemetry::new());
        let compressed = CompressedMatrix::compress_with_telemetry(a, config, &stage_telemetry)?;
        let mut this =
            Self::from_compressed_with_store(compressed, Some(RawFallbackStore::from_csr(a)))?;
        this.stage_telemetry = Some(stage_telemetry);
        Ok(this)
    }

    /// Wraps an already-compressed matrix (no fallback store: unrecoverable
    /// blocks become hard errors).
    ///
    /// # Errors
    /// Decoder-construction failures (bad tables).
    pub fn from_compressed(compressed: CompressedMatrix) -> ExecResult<Self> {
        Self::from_compressed_with_store(compressed, None)
    }

    /// Wraps an already-compressed matrix with an explicit fallback store.
    ///
    /// # Errors
    /// Decoder-construction failures (bad tables).
    pub fn from_compressed_with_store(
        compressed: CompressedMatrix,
        raw_store: Option<RawFallbackStore>,
    ) -> ExecResult<Self> {
        let index_decoder =
            DshDecoder::new(compressed.config.index, compressed.index_table_lengths.as_deref())?;
        let value_decoder =
            DshDecoder::new(compressed.config.value, compressed.value_table_lengths.as_deref())?;
        Ok(RecodedSpmv {
            compressed,
            index_decoder,
            value_decoder,
            raw_store,
            stage_telemetry: None,
        })
    }

    /// The codec-stage telemetry attached by [`RecodedSpmv::new_traced`],
    /// if any.
    pub fn stage_telemetry(&self) -> Option<&Arc<StageTelemetry>> {
        self.stage_telemetry.as_ref()
    }

    /// The compressed representation.
    pub fn compressed(&self) -> &CompressedMatrix {
        &self.compressed
    }

    /// The lane decoder for the column-index stream.
    pub(crate) fn index_decoder(&self) -> &DshDecoder {
        &self.index_decoder
    }

    /// The lane decoder for the value stream.
    pub(crate) fn value_decoder(&self) -> &DshDecoder {
        &self.value_decoder
    }

    /// The raw fallback store, if one was kept at compression time.
    pub(crate) fn raw_store(&self) -> Option<&RawFallbackStore> {
        self.raw_store.as_ref()
    }

    /// Mutable access to the compressed representation — the fault-injection
    /// tests corrupt blocks through this.
    pub fn compressed_mut(&mut self) -> &mut CompressedMatrix {
        &mut self.compressed
    }

    /// Decodes the whole matrix through the UDP simulator and reassembles
    /// the CSR form, with accelerator statistics.
    ///
    /// # Errors
    /// [`ExecError::Unrecoverable`] if a block fails decoding, exhausts its
    /// retries, and no fallback store covers it; [`ExecError::Reassembly`]
    /// if the decoded streams do not form a valid matrix.
    pub fn decompress_via_udp(&self, sys: &SystemConfig) -> ExecResult<(Csr, ExecStats)> {
        self.decompress_via_udp_faulty(sys, None)
    }

    /// [`RecodedSpmv::decompress_via_udp`] with an optional fault-injection
    /// hook applied to the initial batch (retries run hook-free, modeling
    /// transient faults that clear on a second attempt).
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`].
    pub fn decompress_via_udp_faulty(
        &self,
        sys: &SystemConfig,
        hook: Option<&FaultHook>,
    ) -> ExecResult<(Csr, ExecStats)> {
        self.decompress_via_udp_traced(sys, hook, None)
    }

    /// [`RecodedSpmv::decompress_via_udp_faulty`] with an optional telemetry
    /// registry. When `tel` is `Some`, the run records per-phase spans
    /// (`exec.decode_batch`, `exec.retry`, `exec.fallback`,
    /// `exec.reassemble`, `exec.mem_stream`, `exec.dma`), per-block events
    /// with lane and outcome, dotted counters, and memory traffic by source;
    /// when `None`, no clocks are read and no events are collected.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`].
    pub fn decompress_via_udp_traced(
        &self,
        sys: &SystemConfig,
        hook: Option<&FaultHook>,
        tel: Option<&mut Telemetry>,
    ) -> ExecResult<(Csr, ExecStats)> {
        self.decompress_via_udp_budgeted(sys, hook, tel, None)
    }

    /// [`RecodedSpmv::decompress_via_udp_traced`] governed by a
    /// [`JobBudget`]. Budget limits are checked at every retry boundary —
    /// the job's natural preemption points — so an exhausted budget
    /// surfaces as [`ExecError::DeadlineExceeded`] naming what ran out,
    /// never as a hang. Per-retry backoff accumulates into
    /// [`ExecStats::backoff_cycles`] and stretches the modeled makespan
    /// without touching busy cycles. `budget: None` (or an unbounded
    /// budget) behaves exactly like the unbudgeted path.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`], plus
    /// [`ExecError::DeadlineExceeded`] when the budget runs out.
    pub fn decompress_via_udp_budgeted(
        &self,
        sys: &SystemConfig,
        hook: Option<&FaultHook>,
        tel: Option<&mut Telemetry>,
        budget: Option<&JobBudget>,
    ) -> ExecResult<(Csr, ExecStats)> {
        check_stream_structure(&self.compressed.index_stream)?;
        check_stream_structure(&self.compressed.value_stream)?;

        // Interleave index and value blocks, as the DMA engine would.
        let n_index = self.compressed.index_stream.blocks.len();
        let mut jobs: Vec<Which<'_>> =
            Vec::with_capacity(n_index + self.compressed.value_stream.blocks.len());
        jobs.extend(self.compressed.index_stream.blocks.iter().map(Which::Index));
        jobs.extend(self.compressed.value_stream.blocks.iter().map(Which::Value));

        let run = |lane: &mut Lane, job: &Which<'_>| match job {
            Which::Index(b) => self.index_decoder.decode_block(lane, b),
            Which::Value(b) => self.value_decoder.decode_block(lane, b),
        };
        let empty_hook = FaultHook::default();
        let pool_before = tel.is_some().then(|| recode_udp::pool::global().stats());
        let events: Mutex<Vec<JobEvent>> = Mutex::new(Vec::new());
        let sink_fn = |e: &JobEvent| {
            recorder::record(
                recorder::EventKind::BlockOutcome,
                recorder::Track::lane(e.lane),
                "block",
                e.cycles,
                0,
            );
            events.lock().expect("event sink poisoned").push(*e);
        };
        // The sink also fires for a recorder-only run (`--chrome-trace`
        // without `--trace`) so lane-track block events still materialize.
        let sink: Option<JobEventSink<'_>> =
            if tel.is_some() || recorder::is_enabled() { Some(&sink_fn) } else { None };
        let t_batch = tel.is_some().then(Instant::now);
        let outcome: BatchOutcome<UdpError> = {
            let _span = recorder::span(recorder::Track::MAIN, "exec.decode_batch");
            sys.udp.run_jobs_observed(&jobs, run, hook.unwrap_or(&empty_hook), sink)
        };
        let batch_ns = t_batch.map_or(0, |t| t.elapsed().as_nanos() as u64);

        let mut report = outcome.report;
        let mut tracker = budget.map(|b| BudgetTracker::new(*b));
        let mut blocks_ok = 0usize;
        let mut blocks_recovered = 0usize;
        let mut blocks_retried = 0usize;
        let mut blocks_fell_back = 0usize;
        let mut fallback_bytes = 0usize;
        let mut retry_cycles = 0u64;
        let mut retry_ns = 0u64;
        let mut fallback_ns = 0u64;
        // Per-job corrections for the event records: successful-retry cycles
        // or the fallback marker. Empty on a clean run.
        let mut recovered_jobs: BTreeMap<usize, (u64, BlockOutcome)> = BTreeMap::new();
        let mut outputs: Vec<Vec<u8>> = Vec::with_capacity(jobs.len());

        for (k, result) in outcome.results.into_iter().enumerate() {
            let first_err = match result {
                Ok(o) => {
                    blocks_ok += 1;
                    outputs.push(o.output);
                    continue;
                }
                Err(e) => e,
            };
            // Bounded retry on a fresh lane. Transient faults (injected
            // traps, late DMA) clear; CRC failures repeat deterministically
            // and fall through to the raw store.
            let mut recovered: Option<Vec<u8>> = None;
            let mut last_err = first_err;
            let t_retry = tel.is_some().then(Instant::now);
            // One pooled lane serves every retry attempt: `run` fully
            // resets lane state, so attempt N is as "fresh" as a new lane.
            let mut lane = recode_udp::pool::global().checkout();
            for attempt in 0..MAX_BLOCK_RETRIES {
                recorder::record(
                    recorder::EventKind::Retry,
                    recorder::Track::MAIN,
                    "exec.retry",
                    attempt as u64 + 1,
                    k as u64,
                );
                // Retry boundaries are the job's preemption points: the
                // budget is consulted before every attempt, and an
                // exhausted one ends the job in a typed terminal state.
                if let Some(t) = tracker.as_mut() {
                    if let Err(what) = t.admit_retry() {
                        return Err(ExecError::DeadlineExceeded {
                            budget: what.to_string(),
                            completed_blocks: blocks_ok + blocks_recovered + blocks_fell_back,
                            total_blocks: jobs.len(),
                        });
                    }
                }
                blocks_retried += 1;
                match run(&mut lane, &jobs[k]) {
                    Ok(o) => {
                        report.output_bytes += o.output.len() as u64;
                        report.opclass.merge(&o.opclass);
                        report.stage_cycles.merge(&o.stage_cycles);
                        retry_cycles += o.cycles;
                        if let Some(t) = tracker.as_mut() {
                            t.charge_retry_cycles(o.cycles);
                        }
                        recovered_jobs.insert(k, (o.cycles, BlockOutcome::Retried));
                        recovered = Some(o.output);
                        break;
                    }
                    Err(e) => last_err = e,
                }
            }
            if let Some(t) = t_retry {
                retry_ns += t.elapsed().as_nanos() as u64;
            }
            if let Some(bytes) = recovered {
                blocks_recovered += 1;
                outputs.push(bytes);
                continue;
            }
            // Retries exhausted: re-fetch the block's uncompressed range.
            let t_fallback = tel.is_some().then(Instant::now);
            let (store, block_bytes, pos) = if k < n_index {
                (
                    self.raw_store.as_ref().map(|s| s.index_bytes.as_slice()),
                    self.compressed.index_stream.block_bytes,
                    k,
                )
            } else {
                (
                    self.raw_store.as_ref().map(|s| s.value_bytes.as_slice()),
                    self.compressed.value_stream.block_bytes,
                    k - n_index,
                )
            };
            let raw = store.and_then(|b| RawFallbackStore::block_range(b, pos, block_bytes));
            if let Some(t) = t_fallback {
                fallback_ns += t.elapsed().as_nanos() as u64;
            }
            match raw {
                Some(raw) => {
                    recorder::record(
                        recorder::EventKind::Fallback,
                        recorder::Track::MAIN,
                        "exec.fallback",
                        raw.len() as u64,
                        k as u64,
                    );
                    blocks_fell_back += 1;
                    fallback_bytes += raw.len();
                    report.output_bytes += raw.len() as u64;
                    recovered_jobs.insert(k, (0, BlockOutcome::FellBack));
                    outputs.push(raw.to_vec());
                }
                None => {
                    return Err(ExecError::Unrecoverable {
                        block: last_err.block().or(Some(pos)),
                        lane: None,
                        source: last_err,
                    });
                }
            }
        }

        // Fold retry decode cycles into the batch totals: retries run
        // serially after the batch on one lane, so they extend the critical
        // path as well as the busy sum, and utilization must be recomputed.
        // Budget backoff is pure waiting: it stretches the makespan but is
        // never busy work, keeping budgeted and unbudgeted clean runs
        // cycle-identical when backoff is zero.
        let backoff_cycles = tracker.as_ref().map_or(0, BudgetTracker::backoff_cycles);
        if retry_cycles > 0 {
            report.makespan_cycles += retry_cycles;
            report.busy_cycles += retry_cycles;
        }
        report.makespan_cycles += backoff_cycles;
        if retry_cycles > 0 || backoff_cycles > 0 {
            report.refresh_utilization();
        }

        let t_reassemble = tel.is_some().then(Instant::now);
        let index_bytes: Vec<u8> = outputs[..n_index].concat();
        let value_bytes: Vec<u8> = outputs[n_index..].concat();
        if !index_bytes.len().is_multiple_of(4) {
            return Err(ExecError::Reassembly(format!(
                "index stream decoded to {} bytes, not 4-byte aligned",
                index_bytes.len()
            )));
        }
        if !value_bytes.len().is_multiple_of(8) {
            return Err(ExecError::Reassembly(format!(
                "value stream decoded to {} bytes, not 8-byte aligned",
                value_bytes.len()
            )));
        }
        let decoded_bytes = (index_bytes.len() + value_bytes.len()) as u64;
        let col_idx: Vec<u32> = index_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact")))
            .collect();
        let values: Vec<f64> = value_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact")))
            .collect();
        let a = Csr::try_from_parts(
            self.compressed.nrows,
            self.compressed.ncols,
            self.compressed.row_ptr.clone(),
            col_idx,
            values,
        )
        .map_err(|e| ExecError::Reassembly(format!("decoded matrix invalid: {e}")))?;
        let reassemble_ns = t_reassemble.map_or(0, |t| t.elapsed().as_nanos() as u64);

        let compressed_bytes = self.compressed.wire_bytes();
        // Fallback re-fetch is extra memory traffic over the same channel.
        let mem_stream_seconds = sys.mem.stream_seconds(compressed_bytes as u64)
            + sys.mem.stream_seconds(fallback_bytes as u64);
        let stats = ExecStats {
            accel: report,
            mem_stream_seconds,
            dma_seconds: sys.dma.transfer_seconds(jobs.len() as u64, compressed_bytes as u64),
            compressed_bytes,
            blocks_retried,
            blocks_fell_back,
            fallback_bytes,
            retry_cycles,
            backoff_cycles,
            degraded: blocks_retried > 0 || blocks_fell_back > 0,
            software_decode: false,
            blocks_ok,
            blocks_recovered,
            overlap: OverlapStats::default(),
        };

        if let Some(tel) = tel {
            let freq = sys.udp.freq_hz;
            let batch_modeled = (stats.accel.makespan_cycles - stats.retry_cycles) as f64 / freq;
            tel.span("exec.decode_batch", batch_ns, batch_modeled, stats.accel.output_bytes);
            if stats.blocks_retried > 0 {
                tel.span("exec.retry", retry_ns, stats.retry_cycles as f64 / freq, 0);
            }
            if stats.blocks_fell_back > 0 {
                tel.span("exec.fallback", fallback_ns, 0.0, stats.fallback_bytes as u64);
            }
            tel.span("exec.reassemble", reassemble_ns, 0.0, decoded_bytes);
            tel.span(
                "exec.mem_stream",
                0,
                stats.mem_stream_seconds,
                (compressed_bytes + fallback_bytes) as u64,
            );
            tel.span("exec.dma", 0, stats.dma_seconds, compressed_bytes as u64);

            tel.add("exec.jobs", stats.accel.jobs as u64);
            tel.add("exec.jobs_failed", stats.accel.jobs_failed as u64);
            tel.add("exec.blocks_retried", stats.blocks_retried as u64);
            tel.add("exec.blocks_fell_back", stats.blocks_fell_back as u64);
            tel.add("exec.fallback_bytes", stats.fallback_bytes as u64);
            tel.add("exec.retry_cycles", stats.retry_cycles);

            // Lane-pool traffic over this batch, as deltas of the
            // process-wide pool's monotonic counters. Parallel tests can
            // inflate these (the pool is shared), so they are reported, not
            // validated. Emitting any `pool.*` counter stamps the document
            // `recode-trace/v2`.
            // Saturating: `LanePool::reset` (chaos trial isolation) can zero
            // the counters mid-run in a shared process.
            if let Some(before) = pool_before {
                let after = recode_udp::pool::global().stats();
                tel.add("pool.checkouts", after.checkouts.saturating_sub(before.checkouts));
                tel.add(
                    "pool.recycled_hits",
                    after.recycled_hits.saturating_sub(before.recycled_hits),
                );
                tel.add(
                    "pool.fresh_builds",
                    after.fresh_builds.saturating_sub(before.fresh_builds),
                );
                tel.add("pool.returned", after.returned.saturating_sub(before.returned));
                tel.add(
                    "pool.dropped_at_capacity",
                    after.dropped_at_capacity.saturating_sub(before.dropped_at_capacity),
                );
                tel.add("pool.quarantined", after.quarantined.saturating_sub(before.quarantined));
                tel.add("pool.readmitted", after.readmitted.saturating_sub(before.readmitted));
            }

            tel.traffic.read(TrafficSource::CompressedStream, compressed_bytes as u64);
            tel.traffic.read(TrafficSource::FallbackRefetch, stats.fallback_bytes as u64);
            tel.traffic.read(TrafficSource::RowPtr, ((self.compressed.nrows + 1) * 8) as u64);

            let mut evs = events.into_inner().expect("event sink poisoned");
            evs.sort_by_key(|e| e.job);
            for e in evs {
                let (cycles, outcome) =
                    recovered_jobs.get(&e.job).copied().unwrap_or((e.cycles, BlockOutcome::Ok));
                let (stream, block) = if e.job < n_index {
                    (StreamKind::Index, e.job)
                } else {
                    (StreamKind::Value, e.job - n_index)
                };
                tel.block_event(BlockEvent {
                    job: e.job,
                    stream,
                    block,
                    lane: e.lane,
                    cycles,
                    outcome,
                });
            }
        }
        Ok((a, stats))
    }

    /// Full recoding-enhanced SpMV: UDP-decode, then multiply with `kernel`.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`]; panics on shape mismatch like
    /// the plain kernels do.
    pub fn spmv(
        &self,
        sys: &SystemConfig,
        kernel: SpmvKernel,
        x: &[f64],
    ) -> ExecResult<(Vec<f64>, ExecStats)> {
        self.spmv_faulty(sys, kernel, x, None)
    }

    /// [`RecodedSpmv::spmv`] with an optional fault-injection hook.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`].
    pub fn spmv_faulty(
        &self,
        sys: &SystemConfig,
        kernel: SpmvKernel,
        x: &[f64],
        hook: Option<&FaultHook>,
    ) -> ExecResult<(Vec<f64>, ExecStats)> {
        let (a, stats) = self.decompress_via_udp_faulty(sys, hook)?;
        let mut y = vec![0.0; a.nrows()];
        spmv_with_into(kernel, &a, x, &mut y);
        Ok((y, stats))
    }

    /// [`RecodedSpmv::spmv_faulty`] governed by a [`JobBudget`].
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp_budgeted`].
    pub fn spmv_budgeted(
        &self,
        sys: &SystemConfig,
        kernel: SpmvKernel,
        x: &[f64],
        hook: Option<&FaultHook>,
        budget: &JobBudget,
    ) -> ExecResult<(Vec<f64>, ExecStats)> {
        let (a, stats) = self.decompress_via_udp_budgeted(sys, hook, None, Some(budget))?;
        let mut y = vec![0.0; a.nrows()];
        spmv_with_into(kernel, &a, x, &mut y);
        Ok((y, stats))
    }

    /// Synthesized stats for a breaker-bypassed software decode: no
    /// accelerator cycles, the compressed stream still crosses memory, and
    /// the run is flagged `software_decode` + `degraded`.
    fn software_stats(&self, sys: &SystemConfig) -> ExecStats {
        let compressed_bytes = self.compressed.wire_bytes();
        ExecStats {
            accel: AccelReport::default(),
            mem_stream_seconds: sys.mem.stream_seconds(compressed_bytes as u64),
            dma_seconds: 0.0,
            compressed_bytes,
            blocks_retried: 0,
            blocks_fell_back: 0,
            fallback_bytes: 0,
            retry_cycles: 0,
            backoff_cycles: 0,
            degraded: true,
            software_decode: true,
            blocks_ok: 0,
            blocks_recovered: 0,
            overlap: OverlapStats::default(),
        }
    }

    /// One fully governed job: circuit-breaker admission, a budgeted
    /// accelerator run, degradation to the software decoder when the
    /// breaker is open, and a typed terminal [`JobState`] no matter what
    /// happened — [`JobReport`] is total over all outcomes.
    ///
    /// The degradation ladder, top to bottom: accelerator happy path →
    /// per-block retry → per-block raw-CSR re-fetch → (breaker open)
    /// whole-job software decode. Every rung is bit-exact; only the last
    /// gives up on the accelerator entirely.
    pub fn run_job(
        &self,
        sys: &SystemConfig,
        hook: Option<&FaultHook>,
        budget: &JobBudget,
        mut breaker: Option<&mut CircuitBreaker>,
        mut tel: Option<&mut Telemetry>,
    ) -> JobReport {
        let report =
            self.run_job_inner(sys, hook, budget, breaker.as_deref_mut(), tel.as_deref_mut());
        // Breaker posture after the job, as `breaker.*` counters (v2
        // content). `breaker.state` is a code: 0 closed, 1 open, 2 half-open.
        if let (Some(tel), Some(b)) = (tel, breaker.as_deref()) {
            tel.add("breaker.trips", b.trips());
            tel.add("breaker.probes", b.probes());
            tel.add(
                "breaker.state",
                match b.state() {
                    BreakerState::Closed => 0,
                    BreakerState::Open => 1,
                    BreakerState::HalfOpen => 2,
                },
            );
        }
        report
    }

    fn run_job_inner(
        &self,
        sys: &SystemConfig,
        hook: Option<&FaultHook>,
        budget: &JobBudget,
        mut breaker: Option<&mut CircuitBreaker>,
        tel: Option<&mut Telemetry>,
    ) -> JobReport {
        let admitted = breaker.as_deref_mut().is_none_or(CircuitBreaker::admit);
        if !admitted {
            // Open breaker: the accelerator is bypassed entirely and the
            // job is served by the software decoder — degraded, bit-exact.
            let breaker_state =
                breaker.as_deref().map_or(BreakerState::Closed, CircuitBreaker::state);
            return match self.decompress_via_software() {
                Ok(a) => JobReport {
                    state: JobState::Degraded,
                    matrix: Some(a),
                    stats: Some(self.software_stats(sys)),
                    error: None,
                    software_path: true,
                    breaker: breaker_state,
                },
                Err(e) => JobReport {
                    state: JobState::Rejected,
                    matrix: None,
                    stats: None,
                    error: Some(ExecError::Codec(e)),
                    software_path: true,
                    breaker: breaker_state,
                },
            };
        }
        match self.decompress_via_udp_budgeted(sys, hook, tel, Some(budget)) {
            Ok((a, stats)) => {
                if let Some(b) = breaker.as_deref_mut() {
                    b.record(stats.accel.jobs, stats.accel.jobs_failed);
                }
                let state = if stats.degraded { JobState::Degraded } else { JobState::Completed };
                JobReport {
                    state,
                    matrix: Some(a),
                    stats: Some(stats),
                    error: None,
                    software_path: false,
                    breaker: breaker.as_deref().map_or(BreakerState::Closed, CircuitBreaker::state),
                }
            }
            Err(e) => {
                if let Some(b) = breaker.as_deref_mut() {
                    // A run that died counts fully against the window.
                    let jobs = (self.compressed.index_stream.blocks.len()
                        + self.compressed.value_stream.blocks.len())
                    .max(1);
                    b.record(jobs, jobs);
                }
                let state = match &e {
                    ExecError::DeadlineExceeded { .. } => JobState::DeadlineExceeded,
                    _ => JobState::Rejected,
                };
                JobReport {
                    state,
                    matrix: None,
                    stats: None,
                    error: Some(e),
                    software_path: false,
                    breaker: breaker.as_deref().map_or(BreakerState::Closed, CircuitBreaker::state),
                }
            }
        }
    }

    /// [`RecodedSpmv::run_job`] plus a sealed [`TraceDocument`] when the
    /// job produced stats (every state but `Rejected`/`DeadlineExceeded`).
    /// The document carries the `pool.*` and — when a breaker was supplied —
    /// `breaker.*` counters, so it is always stamped `recode-trace/v2`.
    /// This is the `recode metrics` scrape path.
    pub fn run_job_traced(
        &self,
        sys: &SystemConfig,
        hook: Option<&FaultHook>,
        budget: &JobBudget,
        breaker: Option<&mut CircuitBreaker>,
        name: &str,
    ) -> (JobReport, Option<TraceDocument>) {
        let t_total = Instant::now();
        let mut tel = Telemetry::new();
        let report = self.run_job(sys, hook, budget, breaker, Some(&mut tel));
        let doc = match (&report.matrix, &report.stats) {
            (Some(a), Some(stats)) => {
                let matrix = MatrixMeta {
                    name: name.to_string(),
                    nrows: a.nrows(),
                    ncols: a.ncols(),
                    nnz: a.nnz(),
                    compressed_bytes: stats.compressed_bytes,
                    bytes_per_nnz: self.compressed.bytes_per_nnz(),
                };
                let system = SystemMeta {
                    memory: sys.mem.name.to_string(),
                    lanes: sys.udp.lanes,
                    freq_hz: sys.udp.freq_hz,
                };
                let codec_stages =
                    self.stage_telemetry.as_ref().map(|t| t.snapshot()).unwrap_or_default();
                Some(tel.into_document(
                    matrix,
                    system,
                    stats.clone(),
                    codec_stages,
                    &sys.mem,
                    t_total.elapsed().as_nanos() as u64,
                ))
            }
            _ => None,
        };
        (report, doc)
    }

    /// Fully traced SpMV: [`RecodedSpmv::spmv_faulty`] plus a sealed
    /// [`TraceDocument`] covering every phase — UDP decode with per-lane and
    /// per-opcode-class breakdowns, retry/fallback recovery, reassembly,
    /// modeled memory/DMA streaming, and the CPU multiply — along with
    /// per-block events, dotted counters, memory traffic by source, and the
    /// codec-stage snapshot (non-zero when built via
    /// [`RecodedSpmv::new_traced`]). `name` labels the matrix in the trace.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`].
    pub fn spmv_traced(
        &self,
        sys: &SystemConfig,
        kernel: SpmvKernel,
        x: &[f64],
        hook: Option<&FaultHook>,
        name: &str,
    ) -> ExecResult<(Vec<f64>, ExecStats, TraceDocument)> {
        let t_total = Instant::now();
        let mut tel = Telemetry::new();
        let (a, stats) = self.decompress_via_udp_traced(sys, hook, Some(&mut tel))?;

        let t_multiply = Instant::now();
        let mut y = vec![0.0; a.nrows()];
        spmv_with_into(kernel, &a, x, &mut y);
        let multiply_ns = t_multiply.elapsed().as_nanos() as u64;

        // The multiply streams the dense vectors through the memory
        // interface (the decoded matrix stays on-chip in the paper's tiled
        // flow, so only x and y are charged to DRAM).
        let vector_read = (a.ncols() * 8) as u64;
        let vector_write = (a.nrows() * 8) as u64;
        tel.traffic.read(TrafficSource::Vectors, vector_read);
        tel.traffic.write(TrafficSource::Vectors, vector_write);
        tel.span(
            "exec.cpu_multiply",
            multiply_ns,
            sys.mem.stream_seconds(vector_read + vector_write),
            vector_read + vector_write,
        );

        let matrix = MatrixMeta {
            name: name.to_string(),
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            compressed_bytes: stats.compressed_bytes,
            bytes_per_nnz: self.compressed.bytes_per_nnz(),
        };
        let system = SystemMeta {
            memory: sys.mem.name.to_string(),
            lanes: sys.udp.lanes,
            freq_hz: sys.udp.freq_hz,
        };
        let codec_stages = self.stage_telemetry.as_ref().map(|t| t.snapshot()).unwrap_or_default();
        let wall_ns_total = t_total.elapsed().as_nanos() as u64;
        let doc =
            tel.into_document(matrix, system, stats.clone(), codec_stages, &sys.mem, wall_ns_total);
        Ok((y, stats, doc))
    }

    /// Software-only decode path (reference), for differential testing.
    /// On a traced instance ([`RecodedSpmv::new_traced`]) the per-stage
    /// decode timings accumulate into the attached telemetry.
    ///
    /// # Errors
    /// Codec errors.
    pub fn decompress_via_software(&self) -> Result<Csr, CodecError> {
        match &self.stage_telemetry {
            Some(t) => self.compressed.decompress_with_telemetry(t),
            None => self.compressed.decompress(),
        }
    }

    /// **Streaming tiled SpMV** — the paper's Fig. 7 execution mode. The
    /// matrix is *never* materialized: index and value blocks are decoded
    /// one tile at a time on a UDP lane and multiplied immediately, so
    /// resident memory stays `O(block)` instead of `O(nnz)`. Rows that
    /// straddle tile boundaries accumulate across tiles, exactly like the
    /// paper's tiled loop.
    ///
    /// # Errors
    /// [`ExecError::Udp`] on lane traps or CRC failures (with block
    /// context), [`ExecError::Reassembly`] on stream misalignment.
    ///
    /// # Panics
    /// If `x.len() != ncols`.
    pub fn spmv_streaming(&self, x: &[f64]) -> ExecResult<(Vec<f64>, StreamingStats)> {
        assert_eq!(x.len(), self.compressed.ncols, "x length must equal ncols");
        check_stream_structure(&self.compressed.index_stream)?;
        check_stream_structure(&self.compressed.value_stream)?;
        let mut lane = recode_udp::pool::global().checkout();
        let mut y = vec![0.0f64; self.compressed.nrows];
        let row_ptr = &self.compressed.row_ptr;

        let mut stats = StreamingStats {
            compressed_bytes: self.compressed.wire_bytes(),
            bytes_per_nnz: self.compressed.bytes_per_nnz(),
            ..StreamingStats::default()
        };
        let mut row = 0usize; // current output row
        let mut k_global = 0usize; // nnz cursor
                                   // Value bytes decoded but not yet consumed (at most ~2 blocks).
        let mut val_buf: Vec<u8> = Vec::new();
        let mut val_blocks = self.compressed.value_stream.blocks.iter();

        for idx_block in &self.compressed.index_stream.blocks {
            let idx_out = self.index_decoder.decode_block(&mut lane, idx_block)?;
            stats.lane_cycles += idx_out.cycles;
            stats.blocks += 1;
            let tile_nnz = idx_out.output.len() / 4;
            // Pull value blocks until the tile's values are resident.
            while val_buf.len() < tile_nnz * 8 {
                let vb = val_blocks
                    .next()
                    .ok_or_else(|| ExecError::Reassembly("value stream ended early".into()))?;
                let v = self.value_decoder.decode_block(&mut lane, vb)?;
                stats.lane_cycles += v.cycles;
                stats.blocks += 1;
                val_buf.extend_from_slice(&v.output);
            }
            stats.peak_resident_bytes =
                stats.peak_resident_bytes.max(idx_out.output.len() + val_buf.len());

            // Multiply this tile, walking rows as the nnz cursor advances
            // (k_global < nnz = row_ptr[nrows], so a row with
            // row_ptr[row + 1] > k_global always exists; empty rows are
            // skipped by the same walk).
            for t in 0..tile_nnz {
                while row_ptr[row + 1] <= k_global {
                    row += 1;
                }
                let c = u32::from_le_bytes(
                    idx_out.output[t * 4..t * 4 + 4].try_into().expect("4-byte index"),
                ) as usize;
                let v =
                    f64::from_le_bytes(val_buf[t * 8..t * 8 + 8].try_into().expect("8-byte value"));
                y[row] += v * x[c];
                k_global += 1;
            }
            val_buf.drain(..tile_nnz * 8);
        }
        if k_global != self.compressed.nnz {
            return Err(ExecError::Reassembly(format!(
                "streamed {} non-zeros but the matrix has {}",
                k_global, self.compressed.nnz
            )));
        }
        Ok((y, stats))
    }
}

/// Statistics from a streaming tiled execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    /// Total UDP lane cycles across all decoded blocks.
    pub lane_cycles: u64,
    /// Blocks decoded (index + value).
    pub blocks: usize,
    /// Peak decoded bytes resident at once — the tiled loop's working set.
    pub peak_resident_bytes: usize,
    /// Compressed wire bytes streamed (both streams plus tables).
    #[serde(default)]
    pub compressed_bytes: usize,
    /// `compressed_bytes / nnz`, via the shared
    /// [`recode_codec::metrics::bytes_per_nnz`] definition.
    #[serde(default)]
    pub bytes_per_nnz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_sparse::prelude::*;

    fn test_matrix() -> Csr {
        generate(
            &GenSpec::Stencil2D {
                nx: 60,
                ny: 60,
                points: 9,
                values: ValueModel::QuantizedGaussian { levels: 48 },
            },
            17,
        )
    }

    #[test]
    fn udp_decode_equals_software_decode_equals_original() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let (via_udp, stats) = r.decompress_via_udp(&sys).unwrap();
        let via_sw = r.decompress_via_software().unwrap();
        assert_eq!(via_udp, a, "UDP-decoded matrix differs from original");
        assert_eq!(via_sw, a);
        assert!(stats.accel.makespan_cycles > 0);
        assert!(stats.mem_stream_seconds > 0.0);
        assert!(stats.dma_seconds > 0.0);
        assert!(stats.compressed_bytes < a.nnz() * 12);
        assert!(!stats.degraded, "clean decode must not be degraded");
        assert_eq!(stats.blocks_retried, 0);
        assert_eq!(stats.blocks_fell_back, 0);
    }

    #[test]
    fn recoded_spmv_matches_uncompressed_kernel_bit_for_bit() {
        let a = test_matrix();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let want = recode_sparse::spmv::spmv(&a, &x);
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        for kernel in [SpmvKernel::Serial, SpmvKernel::RowParallel] {
            let (y, _) = r.spmv(&sys, kernel, &x).unwrap();
            assert_eq!(y, want, "kernel {kernel:?}");
        }
    }

    #[test]
    fn cpu_snappy_config_also_round_trips() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::cpu_snappy()).unwrap();
        let (b, _) = r.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn injected_lane_trap_recovers_via_retry() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0).trap(1);
        let (b, stats) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        assert_eq!(b, a, "retried decode must stay bit-exact");
        assert!(stats.degraded);
        assert!(stats.blocks_retried >= 2, "retried {}", stats.blocks_retried);
        // Traps are transient: the hook does not apply to retries, so the
        // raw store is never needed.
        assert_eq!(stats.blocks_fell_back, 0);
        assert_eq!(stats.accel.jobs_failed, 2);
    }

    #[test]
    fn corrupt_block_falls_back_to_raw_store_bit_exact() {
        let a = test_matrix();
        let mut r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        // Flip a payload bit; CRC catches it on every decode attempt.
        r.compressed_mut().index_stream.blocks[0].payload[0] ^= 0x40;
        let (b, stats) = r.decompress_via_udp(&sys).unwrap();
        assert_eq!(b, a, "fallback decode must stay bit-exact");
        assert!(stats.degraded);
        assert!(stats.blocks_retried > 0);
        assert_eq!(stats.blocks_fell_back, 1);
        assert!(stats.fallback_bytes > 0);
    }

    #[test]
    fn corrupt_block_without_store_is_a_typed_error_naming_the_block() {
        let a = test_matrix();
        let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let mut r = RecodedSpmv::from_compressed(cm).unwrap();
        r.compressed_mut().value_stream.blocks[1].payload[0] ^= 0x40;
        let err = r.decompress_via_udp(&SystemConfig::ddr4()).unwrap_err();
        match &err {
            ExecError::Unrecoverable { block, source, .. } => {
                assert_eq!(*block, Some(1), "{err}");
                assert!(source.codec_error().is_some(), "{err}");
            }
            other => panic!("expected Unrecoverable, got {other}"),
        }
        assert!(err.to_string().contains("block 1"), "{err}");
    }

    #[test]
    fn injected_dma_stall_charges_cycles_without_degrading() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().stall(0, 100_000);
        let (b, stats) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        assert_eq!(b, a);
        assert_eq!(stats.accel.injected_stall_cycles, 100_000);
        assert!(!stats.degraded, "a stall slows the batch but decodes cleanly");
    }

    #[test]
    fn streaming_spmv_matches_full_decode_and_bounds_memory() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let (y, stats) = r.spmv_streaming(&x).unwrap();
        assert_eq!(y, recode_sparse::spmv::spmv(&a, &x), "tiled result must match");
        // Working set stays a few blocks, far below the 12 B/nnz matrix.
        assert!(stats.peak_resident_bytes < 64 * 1024, "{}", stats.peak_resident_bytes);
        assert!(stats.peak_resident_bytes < a.nnz() * 12 / 4);
        assert!(stats.blocks >= r.compressed().index_stream.len());
        assert!(stats.lane_cycles > 0);
    }

    #[test]
    fn streaming_spmv_surfaces_corruption_as_typed_error() {
        let a = test_matrix();
        let mut r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        r.compressed_mut().index_stream.blocks[2].payload[3] ^= 0x08;
        let x = vec![1.0; a.ncols()];
        let err = r.spmv_streaming(&x).unwrap_err();
        assert_eq!(err.block(), Some(2), "{err}");
        assert!(err.codec_error().is_some(), "{err}");
    }

    #[test]
    fn streaming_spmv_handles_empty_rows_and_empty_matrix() {
        let a = Csr::try_from_parts(4, 4, vec![0, 0, 2, 2, 3], vec![1, 3, 0], vec![2.0, 4.0, 8.0])
            .unwrap();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let x = [1.0, 10.0, 100.0, 1000.0];
        let (y, _) = r.spmv_streaming(&x).unwrap();
        assert_eq!(y, recode_sparse::spmv::spmv(&a, &x));
        let empty = Csr::try_from_parts(2, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        let r = RecodedSpmv::new(&empty, MatrixCodecConfig::udp_dsh()).unwrap();
        let (y, stats) = r.spmv_streaming(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![0.0, 0.0]);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn retry_cycles_are_folded_into_the_makespan() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let (_, clean) = r.decompress_via_udp(&sys).unwrap();
        assert_eq!(clean.retry_cycles, 0);
        let hook = FaultHook::new().trap(0).trap(1);
        let (_, faulty) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        assert!(faulty.retry_cycles > 0);
        // The trapped jobs cost nothing in the batch but their full decode
        // cycles on retry, so total busy work matches the clean run and the
        // serialized retries stretch the makespan past it.
        assert_eq!(faulty.accel.busy_cycles, clean.accel.busy_cycles);
        assert!(faulty.accel.makespan_cycles > clean.accel.makespan_cycles);
        // Utilization is recomputed over the folded totals.
        let expect = faulty.accel.busy_cycles as f64
            / (faulty.accel.makespan_cycles as f64 * faulty.accel.lanes as f64);
        assert!((faulty.accel.lane_utilization - expect).abs() < 1e-12);
    }

    #[test]
    fn traced_spmv_emits_a_consistent_document() {
        let a = test_matrix();
        let r = RecodedSpmv::new_traced(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let (y, stats, doc) = r.spmv_traced(&sys, SpmvKernel::Serial, &x, None, "stencil").unwrap();
        assert_eq!(y, recode_sparse::spmv::spmv(&a, &x), "tracing must not change results");
        let errs = doc.validate();
        assert!(errs.is_empty(), "trace invariants violated: {errs:?}");
        assert_eq!(doc.matrix.name, "stencil");
        assert_eq!(doc.matrix.nnz, a.nnz());
        assert_eq!(doc.block_events.len(), stats.accel.jobs);
        assert_eq!(doc.counter("exec.jobs"), stats.accel.jobs as u64);
        for name in [
            "exec.decode_batch",
            "exec.reassemble",
            "exec.mem_stream",
            "exec.dma",
            "exec.cpu_multiply",
        ] {
            assert!(doc.spans.iter().any(|s| s.name == name), "missing span {name}");
        }
        // Encode-stage codec telemetry was captured at compression time.
        assert!(doc.codec_stages.encode.delta.calls > 0);
        assert!(doc.codec_stages.encode.huffman.calls > 0);
        // Traffic covers the compressed stream, row pointers, and vectors.
        assert!(doc.mem_traffic.total_bytes > 0);
        assert!(doc.counter("mem.read.compressed_stream") == stats.compressed_bytes as u64);
        assert!(doc.counter("mem.read.row_ptr") > 0);
        assert!(doc.counter("mem.read.vectors") > 0);
        // A traced run and an untraced run model the same machine.
        let (y2, stats2) = r.spmv(&sys, SpmvKernel::Serial, &x).unwrap();
        assert_eq!(y, y2);
        assert_eq!(stats.accel.makespan_cycles, stats2.accel.makespan_cycles);
    }

    #[test]
    fn traced_run_classifies_block_outcomes() {
        use crate::telemetry::{BlockOutcome, StreamKind, Telemetry};
        let a = test_matrix();
        let mut r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        // Job 0 (index block 0) traps transiently; value block 0 is corrupt
        // and falls back to the raw store.
        r.compressed_mut().value_stream.blocks[0].payload[0] ^= 0x40;
        let n_index = r.compressed().index_stream.blocks.len();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0);
        let mut tel = Telemetry::new();
        let (b, stats) = r.decompress_via_udp_traced(&sys, Some(&hook), Some(&mut tel)).unwrap();
        assert_eq!(b, a);
        let evs = tel.block_events();
        assert_eq!(evs.len(), stats.accel.jobs);
        for (k, e) in evs.iter().enumerate() {
            assert_eq!(e.job, k, "events sorted by job");
            assert_eq!(e.lane, k % sys.udp.lanes);
        }
        assert_eq!(evs[0].outcome, BlockOutcome::Retried);
        assert_eq!(evs[0].stream, StreamKind::Index);
        assert!(evs[0].cycles > 0, "retried block reports its successful decode cycles");
        let fb = &evs[n_index];
        assert_eq!(fb.stream, StreamKind::Value);
        assert_eq!(fb.block, 0);
        assert_eq!(fb.outcome, BlockOutcome::FellBack);
        assert_eq!(fb.cycles, 0, "fallback block never decoded");
        let ok = evs.iter().filter(|e| e.outcome == BlockOutcome::Ok).count();
        assert_eq!(ok, evs.len() - 2);
        assert_eq!(tel.block_cycles().count, evs.len() as u64);
    }

    #[test]
    fn lane_utilization_is_high_for_many_blocks() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let (_, stats) = r.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
        // 60x60 9-pt has ~31k nnz -> ~20 blocks over 64 lanes; utilization
        // just needs to be sane, not high.
        assert!(stats.accel.lane_utilization > 0.0 && stats.accel.lane_utilization <= 1.0);
    }

    /// Drift lock: every executor path must derive bytes-per-nnz and lane
    /// utilization through the one shared helper each, so the streaming,
    /// batch, and pipelined stats can never silently diverge.
    #[test]
    fn streaming_batch_and_overlap_stats_share_one_metric_definition() {
        use crate::overlap::{OverlapConfig, OverlapExecutor};
        use recode_codec::metrics::bytes_per_nnz;
        use recode_udp::accel::lane_utilization;

        let a = test_matrix();
        let sys = SystemConfig::ddr4();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let cm = r.compressed();
        let x = vec![1.0; a.ncols()];

        // Streaming path: stats carry wire bytes and B/nnz directly.
        let (_, streaming) = r.spmv_streaming(&x).unwrap();
        assert_eq!(streaming.compressed_bytes, cm.wire_bytes());
        assert_eq!(streaming.bytes_per_nnz, cm.bytes_per_nnz());
        assert_eq!(
            streaming.bytes_per_nnz,
            bytes_per_nnz(streaming.compressed_bytes, a.nnz()),
            "StreamingStats must use the shared bytes_per_nnz helper"
        );

        // Batch path: ExecStats::bytes_per_nnz is the same helper, and the
        // report's utilization is the shared lane_utilization definition.
        let (_, batch) = r.spmv(&sys, SpmvKernel::Serial, &x).unwrap();
        assert_eq!(batch.compressed_bytes, cm.wire_bytes());
        assert_eq!(batch.bytes_per_nnz(a.nnz()), streaming.bytes_per_nnz);
        assert_eq!(
            batch.accel.lane_utilization,
            lane_utilization(
                batch.accel.busy_cycles,
                batch.accel.makespan_cycles,
                batch.accel.lanes
            ),
            "batch AccelReport must use the shared lane_utilization helper"
        );

        // Pipelined path: same two definitions again.
        let ex = OverlapExecutor::new(&r, OverlapConfig::default());
        let (_, ov) = ex.spmv(&sys, &x).unwrap();
        assert_eq!(ov.bytes_per_nnz(a.nnz()), bytes_per_nnz(ov.compressed_bytes, a.nnz()));
        assert_eq!(
            ov.accel.lane_utilization,
            lane_utilization(ov.accel.busy_cycles, ov.accel.makespan_cycles, ov.accel.lanes),
            "overlap AccelReport must use the shared lane_utilization helper"
        );

        // Degenerate inputs stay locked down too.
        assert_eq!(bytes_per_nnz(123, 0), 0.0);
        assert_eq!(lane_utilization(0, 0, 64), 1.0);
    }

    #[test]
    fn zero_deadline_with_faults_is_deadline_exceeded() {
        use crate::resilience::JobBudget;
        use std::time::Duration;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0);
        let budget = JobBudget::with_deadline(Duration::ZERO);
        let err =
            r.decompress_via_udp_budgeted(&sys, Some(&hook), None, Some(&budget)).unwrap_err();
        match &err {
            ExecError::DeadlineExceeded { budget, completed_blocks, total_blocks } => {
                assert_eq!(budget, "wall deadline");
                assert!(completed_blocks < total_blocks, "{err}");
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert!(err.to_string().contains("wall deadline"), "{err}");
    }

    #[test]
    fn retry_budget_exhaustion_names_the_budget() {
        use crate::resilience::JobBudget;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        // Two transient traps against a budget that admits only one retry.
        let hook = FaultHook::new().trap(0).trap(1);
        let budget = JobBudget { max_total_retries: Some(1), ..JobBudget::default() };
        let err =
            r.decompress_via_udp_budgeted(&sys, Some(&hook), None, Some(&budget)).unwrap_err();
        match &err {
            ExecError::DeadlineExceeded { budget, .. } => assert_eq!(budget, "retry budget"),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // The same faults under an unbounded budget recover fine.
        let (b, _) = r
            .decompress_via_udp_budgeted(&sys, Some(&hook), None, Some(&JobBudget::unbounded()))
            .unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn unbounded_budget_is_cycle_identical_to_the_unbudgeted_path() {
        use crate::resilience::JobBudget;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0).trap(1);
        let (b1, plain) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        let budget = JobBudget::unbounded();
        let (b2, budgeted) =
            r.decompress_via_udp_budgeted(&sys, Some(&hook), None, Some(&budget)).unwrap();
        assert_eq!(b1, b2);
        assert_eq!(budgeted.accel.makespan_cycles, plain.accel.makespan_cycles);
        assert_eq!(budgeted.accel.busy_cycles, plain.accel.busy_cycles);
        assert_eq!(budgeted.retry_cycles, plain.retry_cycles);
        assert_eq!(budgeted.blocks_retried, plain.blocks_retried);
        assert_eq!(budgeted.backoff_cycles, 0, "unbounded default has zero backoff");
    }

    #[test]
    fn backoff_stretches_makespan_but_never_busy_cycles() {
        use crate::resilience::JobBudget;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0).trap(1);
        let (_, plain) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        let budget = JobBudget { backoff_cycles_per_retry: 1_000, ..JobBudget::default() };
        let (_, backed) =
            r.decompress_via_udp_budgeted(&sys, Some(&hook), None, Some(&budget)).unwrap();
        // Two admitted retries -> 2000 backoff cycles, critical path only.
        assert_eq!(backed.backoff_cycles, 2_000);
        assert_eq!(
            backed.accel.makespan_cycles,
            plain.accel.makespan_cycles + 2_000,
            "backoff stretches the makespan"
        );
        assert_eq!(backed.accel.busy_cycles, plain.accel.busy_cycles, "lanes never spin backoff");
    }

    #[test]
    fn block_accounting_identity_holds_on_every_terminal_path() {
        use crate::resilience::JobBudget;
        let a = test_matrix();
        let sys = SystemConfig::ddr4();
        let check = |stats: &ExecStats, what: &str| {
            assert_eq!(
                stats.blocks_ok + stats.blocks_recovered + stats.blocks_fell_back,
                stats.accel.jobs,
                "accounting broken on {what}"
            );
        };
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let (_, clean) = r.decompress_via_udp(&sys).unwrap();
        check(&clean, "clean run");
        assert_eq!(clean.blocks_ok, clean.accel.jobs);
        let hook = FaultHook::new().trap(0).trap(1);
        let (_, retried) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        check(&retried, "retried run");
        assert_eq!(retried.blocks_recovered, 2);
        let mut r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        r.compressed_mut().index_stream.blocks[0].payload[0] ^= 0x40;
        let budget = JobBudget::unbounded();
        let (_, fell_back) =
            r.decompress_via_udp_budgeted(&sys, None, None, Some(&budget)).unwrap();
        check(&fell_back, "fallback run");
        assert_eq!(fell_back.blocks_fell_back, 1);
    }

    #[test]
    fn run_job_walks_the_breaker_ladder_bit_exact() {
        use crate::resilience::{BreakerConfig, BreakerState, CircuitBreaker, JobBudget, JobState};
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let budget = JobBudget::unbounded();

        // No breaker, clean run: Completed on the accelerator.
        let report = r.run_job(&sys, None, &budget, None, None);
        assert_eq!(report.state, JobState::Completed);
        assert!(!report.software_path);
        assert_eq!(report.matrix.as_ref(), Some(&a));

        // An already-open breaker bypasses to the software decoder.
        let config = BreakerConfig {
            window_runs: 4,
            error_rate_threshold: 0.5,
            min_window_jobs: 10,
            cooldown_runs: 2,
        };
        let mut b = CircuitBreaker::new(config);
        b.record(10, 10);
        assert_eq!(b.state(), BreakerState::Open);
        let report = r.run_job(&sys, None, &budget, Some(&mut b), None);
        assert_eq!(report.state, JobState::Degraded);
        assert!(report.software_path, "open breaker must bypass the accelerator");
        assert_eq!(report.matrix.as_ref(), Some(&a), "software bypass stays bit-exact");
        let stats = report.stats.expect("bypass synthesizes stats");
        assert!(stats.software_decode && stats.degraded);
        assert_eq!(stats.accel.jobs, 0, "no accelerator work on the bypass");

        // The next run is the half-open probe; it succeeds and re-closes.
        let report = r.run_job(&sys, None, &budget, Some(&mut b), None);
        assert_eq!(report.state, JobState::Completed);
        assert!(!report.software_path, "probe runs on the accelerator");
        assert_eq!(report.breaker, BreakerState::Closed, "clean probe closes the breaker");
    }

    #[test]
    fn run_job_records_a_dead_run_and_trips_the_breaker() {
        use crate::resilience::{BreakerConfig, BreakerState, CircuitBreaker, JobBudget, JobState};
        let a = test_matrix();
        let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let mut r = RecodedSpmv::from_compressed(cm).unwrap();
        // Corrupt with no fallback store: the run dies with a typed error.
        r.compressed_mut().index_stream.blocks[0].payload[0] ^= 0x40;
        let sys = SystemConfig::ddr4();
        let config = BreakerConfig {
            window_runs: 4,
            error_rate_threshold: 0.5,
            min_window_jobs: 10,
            cooldown_runs: 2,
        };
        let mut b = CircuitBreaker::new(config);
        let report = r.run_job(&sys, None, &JobBudget::unbounded(), Some(&mut b), None);
        assert_eq!(report.state, JobState::Rejected);
        assert!(report.error.is_some());
        assert!(report.matrix.is_none());
        assert_eq!(b.state(), BreakerState::Open, "a dead run counts fully against the window");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn run_job_surfaces_budget_exhaustion_as_deadline_exceeded() {
        use crate::resilience::{JobBudget, JobState};
        use std::time::Duration;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0);
        let budget = JobBudget::with_deadline(Duration::ZERO);
        let report = r.run_job(&sys, Some(&hook), &budget, None, None);
        assert_eq!(report.state, JobState::DeadlineExceeded);
        assert!(matches!(report.error, Some(ExecError::DeadlineExceeded { .. })));
    }
}
