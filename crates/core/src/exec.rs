//! Functional execution of recoding-enhanced SpMV (paper Figs. 6 and 7).
//!
//! The matrix lives in memory compressed; UDP lanes decode the column-index
//! and value blocks (running the real decoder programs on the simulator);
//! the CPU multiplies the recovered CSR. This module is the workspace's
//! end-to-end correctness proof: `RecodedSpmv::spmv` must equal the
//! uncompressed kernel bit-for-bit, because the pipeline is lossless.

use crate::arch::SystemConfig;
use recode_codec::block::CompressedBlock;
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_codec::CodecError;
use recode_sparse::spmv::{spmv_with_into, SpmvKernel};
use recode_sparse::Csr;
use recode_udp::accel::AccelReport;
use recode_udp::Lane;
use recode_udp::progs::DshDecoder;
use serde::{Deserialize, Serialize};

/// Statistics from one UDP-decoded execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecStats {
    /// Accelerator-side report (cycles, throughput, utilization).
    pub accel: AccelReport,
    /// Modeled wall-clock seconds to stream the compressed matrix from
    /// memory (the memory side of the pipeline).
    pub mem_stream_seconds: f64,
    /// Modeled DMA seconds moving blocks into UDP local memory.
    pub dma_seconds: f64,
    /// Compressed bytes moved.
    pub compressed_bytes: usize,
}

/// A sparse matrix held in compressed form, executable through the
/// simulated heterogeneous system.
pub struct RecodedSpmv {
    compressed: CompressedMatrix,
    index_decoder: DshDecoder,
    value_decoder: DshDecoder,
}

impl RecodedSpmv {
    /// Compresses `a` for the heterogeneous system.
    ///
    /// # Errors
    /// Codec preconditions or decoder-construction failures.
    pub fn new(a: &Csr, config: MatrixCodecConfig) -> Result<Self, String> {
        let compressed =
            CompressedMatrix::compress(a, config).map_err(|e| e.to_string())?;
        Self::from_compressed(compressed)
    }

    /// Wraps an already-compressed matrix.
    ///
    /// # Errors
    /// Decoder-construction failures (bad tables).
    pub fn from_compressed(compressed: CompressedMatrix) -> Result<Self, String> {
        let index_decoder =
            DshDecoder::new(compressed.config.index, compressed.index_table_lengths.as_deref())?;
        let value_decoder =
            DshDecoder::new(compressed.config.value, compressed.value_table_lengths.as_deref())?;
        Ok(RecodedSpmv { compressed, index_decoder, value_decoder })
    }

    /// The compressed representation.
    pub fn compressed(&self) -> &CompressedMatrix {
        &self.compressed
    }

    /// Decodes the whole matrix through the UDP simulator and reassembles
    /// the CSR form, with accelerator statistics.
    ///
    /// # Errors
    /// Lane traps or structural errors (both indicate bugs — the blocks come
    /// from our own encoder).
    pub fn decompress_via_udp(&self, sys: &SystemConfig) -> Result<(Csr, ExecStats), String> {
        // Interleave index and value blocks, as the DMA engine would.
        enum Which<'a> {
            Index(&'a CompressedBlock),
            Value(&'a CompressedBlock),
        }
        let mut jobs: Vec<Which<'_>> = Vec::with_capacity(
            self.compressed.index_stream.blocks.len()
                + self.compressed.value_stream.blocks.len(),
        );
        jobs.extend(self.compressed.index_stream.blocks.iter().map(Which::Index));
        jobs.extend(self.compressed.value_stream.blocks.iter().map(Which::Value));

        let (report, outputs) = sys
            .udp
            .run_jobs(&jobs, |lane, job| match job {
                Which::Index(b) => self.index_decoder.decode_block(lane, b),
                Which::Value(b) => self.value_decoder.decode_block(lane, b),
            })
            .map_err(|(k, e)| format!("block {k} trapped: {e}"))?;

        let n_index = self.compressed.index_stream.blocks.len();
        let index_bytes: Vec<u8> = outputs[..n_index].concat();
        let value_bytes: Vec<u8> = outputs[n_index..].concat();
        let col_idx: Vec<u32> = index_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact")))
            .collect();
        let values: Vec<f64> = value_bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact")))
            .collect();
        let a = Csr::try_from_parts(
            self.compressed.nrows,
            self.compressed.ncols,
            self.compressed.row_ptr.clone(),
            col_idx,
            values,
        )
        .map_err(|e| format!("decoded matrix invalid: {e}"))?;

        let compressed_bytes = self.compressed.wire_bytes();
        let stats = ExecStats {
            accel: report,
            mem_stream_seconds: sys.mem.stream_seconds(compressed_bytes as u64),
            dma_seconds: sys.dma.transfer_seconds(jobs.len() as u64, compressed_bytes as u64),
            compressed_bytes,
        };
        Ok((a, stats))
    }

    /// Full recoding-enhanced SpMV: UDP-decode, then multiply with `kernel`.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`]; panics on shape mismatch like
    /// the plain kernels do.
    pub fn spmv(
        &self,
        sys: &SystemConfig,
        kernel: SpmvKernel,
        x: &[f64],
    ) -> Result<(Vec<f64>, ExecStats), String> {
        let (a, stats) = self.decompress_via_udp(sys)?;
        let mut y = vec![0.0; a.nrows()];
        spmv_with_into(kernel, &a, x, &mut y);
        Ok((y, stats))
    }

    /// Software-only decode path (reference), for differential testing.
    ///
    /// # Errors
    /// Codec errors.
    pub fn decompress_via_software(&self) -> Result<Csr, CodecError> {
        self.compressed.decompress()
    }

    /// **Streaming tiled SpMV** — the paper's Fig. 7 execution mode. The
    /// matrix is *never* materialized: index and value blocks are decoded
    /// one tile at a time on a UDP lane and multiplied immediately, so
    /// resident memory stays `O(block)` instead of `O(nnz)`. Rows that
    /// straddle tile boundaries accumulate across tiles, exactly like the
    /// paper's tiled loop.
    ///
    /// # Errors
    /// Lane traps or stream misalignment (both indicate bugs for
    /// self-encoded inputs).
    ///
    /// # Panics
    /// If `x.len() != ncols`.
    pub fn spmv_streaming(&self, x: &[f64]) -> Result<(Vec<f64>, StreamingStats), String> {
        assert_eq!(x.len(), self.compressed.ncols, "x length must equal ncols");
        let mut lane = Lane::new();
        let mut y = vec![0.0f64; self.compressed.nrows];
        let row_ptr = &self.compressed.row_ptr;

        let mut stats = StreamingStats::default();
        let mut row = 0usize; // current output row
        let mut k_global = 0usize; // nnz cursor
        // Value bytes decoded but not yet consumed (at most ~2 blocks).
        let mut val_buf: Vec<u8> = Vec::new();
        let mut val_blocks = self.compressed.value_stream.blocks.iter();

        for idx_block in &self.compressed.index_stream.blocks {
            let idx_out = self
                .index_decoder
                .decode_block(&mut lane, idx_block)
                .map_err(|e| format!("index block trapped: {e}"))?;
            stats.lane_cycles += idx_out.cycles;
            stats.blocks += 1;
            let tile_nnz = idx_out.output.len() / 4;
            // Pull value blocks until the tile's values are resident.
            while val_buf.len() < tile_nnz * 8 {
                let vb = val_blocks.next().ok_or("value stream ended early")?;
                let v = self
                    .value_decoder
                    .decode_block(&mut lane, vb)
                    .map_err(|e| format!("value block trapped: {e}"))?;
                stats.lane_cycles += v.cycles;
                stats.blocks += 1;
                val_buf.extend_from_slice(&v.output);
            }
            stats.peak_resident_bytes = stats
                .peak_resident_bytes
                .max(idx_out.output.len() + val_buf.len());

            // Multiply this tile, walking rows as the nnz cursor advances
            // (k_global < nnz = row_ptr[nrows], so a row with
            // row_ptr[row + 1] > k_global always exists; empty rows are
            // skipped by the same walk).
            for t in 0..tile_nnz {
                while row_ptr[row + 1] <= k_global {
                    row += 1;
                }
                let c = u32::from_le_bytes(
                    idx_out.output[t * 4..t * 4 + 4].try_into().expect("4-byte index"),
                ) as usize;
                let v = f64::from_le_bytes(
                    val_buf[t * 8..t * 8 + 8].try_into().expect("8-byte value"),
                );
                y[row] += v * x[c];
                k_global += 1;
            }
            val_buf.drain(..tile_nnz * 8);
        }
        if k_global != self.compressed.nnz {
            return Err(format!(
                "streamed {} non-zeros but the matrix has {}",
                k_global, self.compressed.nnz
            ));
        }
        Ok((y, stats))
    }
}

/// Statistics from a streaming tiled execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    /// Total UDP lane cycles across all decoded blocks.
    pub lane_cycles: u64,
    /// Blocks decoded (index + value).
    pub blocks: usize,
    /// Peak decoded bytes resident at once — the tiled loop's working set.
    pub peak_resident_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_sparse::prelude::*;

    fn test_matrix() -> Csr {
        generate(
            &GenSpec::Stencil2D {
                nx: 60,
                ny: 60,
                points: 9,
                values: ValueModel::QuantizedGaussian { levels: 48 },
            },
            17,
        )
    }

    #[test]
    fn udp_decode_equals_software_decode_equals_original() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let (via_udp, stats) = r.decompress_via_udp(&sys).unwrap();
        let via_sw = r.decompress_via_software().unwrap();
        assert_eq!(via_udp, a, "UDP-decoded matrix differs from original");
        assert_eq!(via_sw, a);
        assert!(stats.accel.makespan_cycles > 0);
        assert!(stats.mem_stream_seconds > 0.0);
        assert!(stats.dma_seconds > 0.0);
        assert!(stats.compressed_bytes < a.nnz() * 12);
    }

    #[test]
    fn recoded_spmv_matches_uncompressed_kernel_bit_for_bit() {
        let a = test_matrix();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let want = recode_sparse::spmv::spmv(&a, &x);
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        for kernel in [SpmvKernel::Serial, SpmvKernel::RowParallel] {
            let (y, _) = r.spmv(&sys, kernel, &x).unwrap();
            assert_eq!(y, want, "kernel {kernel:?}");
        }
    }

    #[test]
    fn cpu_snappy_config_also_round_trips() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::cpu_snappy()).unwrap();
        let (b, _) = r.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn streaming_spmv_matches_full_decode_and_bounds_memory() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let (y, stats) = r.spmv_streaming(&x).unwrap();
        assert_eq!(y, recode_sparse::spmv::spmv(&a, &x), "tiled result must match");
        // Working set stays a few blocks, far below the 12 B/nnz matrix.
        assert!(stats.peak_resident_bytes < 64 * 1024, "{}", stats.peak_resident_bytes);
        assert!(stats.peak_resident_bytes < a.nnz() * 12 / 4);
        assert!(stats.blocks >= r.compressed().index_stream.len());
        assert!(stats.lane_cycles > 0);
    }

    #[test]
    fn streaming_spmv_handles_empty_rows_and_empty_matrix() {
        let a = Csr::try_from_parts(4, 4, vec![0, 0, 2, 2, 3], vec![1, 3, 0], vec![2.0, 4.0, 8.0])
            .unwrap();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let x = [1.0, 10.0, 100.0, 1000.0];
        let (y, _) = r.spmv_streaming(&x).unwrap();
        assert_eq!(y, recode_sparse::spmv::spmv(&a, &x));
        let empty = Csr::try_from_parts(2, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        let r = RecodedSpmv::new(&empty, MatrixCodecConfig::udp_dsh()).unwrap();
        let (y, stats) = r.spmv_streaming(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![0.0, 0.0]);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn lane_utilization_is_high_for_many_blocks() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let (_, stats) = r.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
        // 60x60 9-pt has ~31k nnz -> ~20 blocks over 64 lanes; utilization
        // just needs to be sane, not high.
        assert!(stats.accel.lane_utilization > 0.0 && stats.accel.lane_utilization <= 1.0);
    }
}
