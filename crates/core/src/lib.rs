//! # recode-core — the CPU–UDP heterogeneous architecture
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! * [`arch`] — system configurations (CPU-only, CPU+software-decomp,
//!   CPU+UDP) over `recode-mem` models;
//! * [`exec`] — *functional* recoding-enhanced SpMV: compressed blocks are
//!   decoded by real UDP programs on the lane simulator, reassembled, and
//!   multiplied — the Fig. 6/7 flow, verified bit-exact against the
//!   uncompressed kernel;
//! * [`overlap`] — the pipelined executor: UDP lanes decode tile *i+1*
//!   while CPU workers multiply tile *i* (modeled makespan overlaps decode
//!   with multiply), with a seeded-capacity decoded-block LRU cache so
//!   iterative solvers pay decode cost once;
//! * [`measure`] — measured recoding throughput: per-lane cycle counts from
//!   the UDP simulator (sampled blocks, extrapolated) and the calibrated
//!   CPU software rates;
//! * [`perfmodel`] — the analytic bandwidth-bound SpMV model behind
//!   Figs. 3, 14, 15;
//! * [`power`] — iso-performance memory-power savings (Figs. 16, 17);
//! * [`seven`] — synthetic stand-ins for the paper's 7 representative
//!   matrices (copter2, g7jac160, gas_sensor, m3dc1_a30, matrix-new_3,
//!   shipsec1, xenon1);
//! * [`corpus`] — the 369-matrix TAMU-substitute corpus;
//! * [`experiment`] — per-figure experiment runners with serializable
//!   results;
//! * [`report`] — plain-text tables matching the paper's figures;
//! * [`telemetry`] — the span/counter/histogram registry behind
//!   `recode spmv --trace`, sealed into a schema-stable [`TraceDocument`];
//! * [`recorder`] — the always-on flight recorder: a lock-light ring of
//!   typed runtime events (spans, block outcomes, breaker transitions,
//!   pool and cache traffic) exportable as a Chrome/Perfetto trace via
//!   [`chrometrace`];
//! * [`metrics`] — point-in-time [`metrics::MetricsSnapshot`] rendered as
//!   Prometheus text exposition;
//! * [`benchcmp`] — the BENCH_*.json regression comparator behind
//!   `recode bench-compare`;
//! * [`json`] — the dependency-free JSON writer/parser shared by the
//!   chaos, bench, trace-export, and metrics emitters;
//! * [`tune`] — the per-matrix auto-tuner: kernel × codec-stage × block
//!   search scored by deterministic modeled cycles, persisted as a
//!   digest-keyed `recode-tuned/v1` document.

pub mod arch;
pub mod benchcmp;
pub mod chaos;
pub mod chrometrace;
pub mod corpus;
pub mod error;
pub mod exec;
pub mod experiment;
pub mod json;
pub mod measure;
pub mod metrics;
pub mod overlap;
pub mod perfmodel;
pub mod power;
pub mod recorder;
pub mod report;
pub mod resilience;
pub mod seven;
pub mod telemetry;
pub mod tune;

pub use arch::SystemConfig;
pub use benchcmp::{compare_snapshots, CompareReport, MetricDelta, Verdict};
pub use chaos::{run_campaign, CampaignSummary, ChaosConfig, TrialOutcome};
pub use chrometrace::export_chrome_trace;
pub use error::{ExecError, ExecResult};
pub use exec::{ExecStats, RawFallbackStore, RecodedSpmv};
pub use metrics::MetricsSnapshot;
pub use overlap::{
    parse_recode_threads, CacheStats, ExecCache, OverlapConfig, OverlapExecutor, OverlapStats,
};
pub use perfmodel::SpmvPerfModel;
pub use power::PowerSavings;
pub use resilience::{
    BreakerConfig, BreakerState, BudgetTracker, CircuitBreaker, JobBudget, JobReport, JobState,
};
pub use tune::{
    matrix_digest, tune_matrix, CandidateScore, StageSubset, TuneError, TuneOptions, TuneOutcome,
    TunedConfig, TUNED_SCHEMA,
};

pub use telemetry::{
    render_report, BlockEvent, BlockOutcome, CycleHistogram, MatrixMeta, RecorderSummary, Span,
    StreamKind, SystemMeta, Telemetry, TraceDocument, TRACE_SCHEMA, TRACE_SCHEMA_V1,
};
