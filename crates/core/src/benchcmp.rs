//! Perf-regression gate: compares two bench-snapshot JSON documents.
//!
//! `recode bench-compare <old.json> <new.json>` (and the CI job wrapping
//! it) diff the `BENCH_*.json` baselines against a fresh run. Metrics are
//! flattened to dotted paths and classified by a name-based policy:
//!
//! * **Gated** metrics are deterministic model outputs (`*_cycles`,
//!   `bytes_per_nnz`, utilizations, saved fractions, opclass/stage shares).
//!   On identical code they reproduce exactly, so a >20 % shift beyond a
//!   small per-class noise floor fails the gate. Gates are
//!   direction-aware: an *improvement* (fewer cycles, higher utilization)
//!   never fails.
//! * **Informational** metrics are host wall-clock readings
//!   (`wall_ns`, `blocks_per_s`, `us_per_block`, …). Baselines are
//!   recorded on whatever machine blessed them, so CI only reports these —
//!   they never gate.
//!
//! A gated metric that disappears from the new snapshot is a regression
//! (renames must re-bless the baseline); brand-new metrics are
//! informational until blessed.

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// Relative change a gated metric may drift before failing the gate.
pub const GATE_THRESHOLD: f64 = 0.20;

/// Keys that never produce metrics (document framing, not measurements).
const SKIPPED_KEYS: &[&str] = &["schema", "smoke"];

/// How a metric's value relates to "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Fewer is better (cycles, bytes per non-zero).
    LowerIsBetter,
    /// More is better (utilization, saved fraction).
    HigherIsBetter,
    /// No better direction — any drift beyond threshold fails (shares).
    Symmetric,
}

/// Per-metric outcome of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Gated metric within threshold (or moved in the better direction by
    /// less than the threshold).
    Pass,
    /// Gated metric moved in the better direction beyond the threshold.
    Improved,
    /// Gated metric regressed beyond threshold + noise floor, or vanished.
    Regressed,
    /// Not gated: reported, never fails the comparison.
    Info,
}

/// One flattened metric compared across the two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path into the snapshot (`spmv.exec.makespan_cycles`).
    pub path: String,
    /// Baseline value (`None`: metric is new in this run).
    pub old: Option<f64>,
    /// Fresh value (`None`: metric vanished).
    pub new: Option<f64>,
    /// Signed relative change, `(new - old) / |old|`. Zero when either
    /// side is missing or the baseline is zero-ish.
    pub change: f64,
    /// Whether the gate policy applies to this metric.
    pub gated: bool,
    /// The outcome.
    pub verdict: Verdict,
}

/// Full comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Every compared metric, in path order.
    pub deltas: Vec<MetricDelta>,
}

impl CompareReport {
    /// True when any gated metric regressed — the CI-failing condition.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.verdict == Verdict::Regressed)
    }

    /// The regressed subset, for error reporting.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.verdict == Verdict::Regressed).collect()
    }

    /// Human-readable table; one line per metric, regressions flagged.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.deltas {
            let tag = match d.verdict {
                Verdict::Pass => "ok  ",
                Verdict::Improved => "good",
                Verdict::Regressed => "FAIL",
                Verdict::Info => "info",
            };
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.6}"));
            let _ = writeln!(
                out,
                "{tag}  {path:<56} {old:>16} -> {new:>16}  {pct:>+7.1}%",
                path = d.path,
                old = fmt(d.old),
                new = fmt(d.new),
                pct = d.change * 100.0,
            );
        }
        let n_reg = self.regressions().len();
        let n_gated = self.deltas.iter().filter(|d| d.gated).count();
        let _ = writeln!(
            out,
            "{} metrics compared, {} gated, {} regression(s) (threshold {:.0}%)",
            self.deltas.len(),
            n_gated,
            n_reg,
            GATE_THRESHOLD * 100.0
        );
        out
    }
}

/// Compares two bench-snapshot JSON texts. Errors only on unparseable
/// input; regressions are reported in the returned [`CompareReport`].
pub fn compare_snapshots(old_text: &str, new_text: &str) -> Result<CompareReport, String> {
    let old_doc = json::parse(old_text).map_err(|e| format!("old snapshot: {e}"))?;
    let new_doc = json::parse(new_text).map_err(|e| format!("new snapshot: {e}"))?;
    let mut old_metrics = BTreeMap::new();
    let mut new_metrics = BTreeMap::new();
    flatten(&old_doc, String::new(), &mut old_metrics);
    flatten(&new_doc, String::new(), &mut new_metrics);

    let mut paths: Vec<&String> = old_metrics.keys().collect();
    for p in new_metrics.keys() {
        if !old_metrics.contains_key(p) {
            paths.push(p);
        }
    }
    paths.sort();

    let deltas = paths
        .into_iter()
        .map(|path| {
            let old = old_metrics.get(path).copied();
            let new = new_metrics.get(path).copied();
            judge(path, old, new)
        })
        .collect();
    Ok(CompareReport { deltas })
}

/// Applies the gate policy to one metric pair.
fn judge(path: &str, old: Option<f64>, new: Option<f64>) -> MetricDelta {
    let policy = policy(path);
    let gated = policy.is_some();
    let change = match (old, new) {
        (Some(o), Some(n)) if o.abs() > f64::EPSILON => (n - o) / o.abs(),
        _ => 0.0,
    };
    let verdict = match (policy, old, new) {
        (None, _, _) => Verdict::Info,
        // New gated metric: informational until a baseline blesses it.
        (Some(_), None, _) => Verdict::Info,
        // Vanished gated metric: the baseline promises it exists.
        (Some(_), Some(_), None) => Verdict::Regressed,
        (Some((direction, noise)), Some(o), Some(n)) => {
            let worse = match direction {
                Direction::LowerIsBetter => change > 0.0,
                Direction::HigherIsBetter => change < 0.0,
                Direction::Symmetric => true,
            };
            if change.abs() > GATE_THRESHOLD && (n - o).abs() > noise {
                if worse {
                    Verdict::Regressed
                } else {
                    Verdict::Improved
                }
            } else {
                Verdict::Pass
            }
        }
    };
    MetricDelta { path: path.to_string(), old, new, change, gated, verdict }
}

/// Name-based classification. `Some((direction, absolute noise floor))`
/// gates the metric; `None` leaves it informational.
fn policy(path: &str) -> Option<(Direction, f64)> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    // Host wall-clock and throughput readings: machine-dependent, never
    // gated (checked first — `wall_ns` would otherwise look deterministic).
    let wall = [
        "wall_ns",
        "wall_ns_total",
        "blocks_per_s",
        "mb_per_s",
        "us_per_block",
        "geomean_us_per_block",
        "ns_per_event",
        "ns_per_block",
    ];
    if wall.contains(&leaf) || leaf.ends_with("_wall_ns") {
        return None;
    }
    if leaf == "cycles" || leaf.ends_with("_cycles") {
        return Some((Direction::LowerIsBetter, 100.0));
    }
    if leaf == "bytes_per_nnz"
        || leaf == "geomean_bytes_per_nnz"
        || leaf.ends_with("_bytes_per_nnz")
    {
        return Some((Direction::LowerIsBetter, 0.05));
    }
    if leaf.ends_with("lane_utilization") {
        return Some((Direction::HigherIsBetter, 0.02));
    }
    if leaf.ends_with("saved_fraction") {
        return Some((Direction::HigherIsBetter, 0.02));
    }
    if leaf.ends_with("_share") || path.contains(".opclass.") || path.contains(".stage_cycles.") {
        return Some((Direction::Symmetric, 0.02));
    }
    None
}

/// Flattens a JSON document into `dotted.path -> f64` metrics. Array
/// elements that are objects with a string `"name"` field key by that name;
/// other elements key by index. `schema` / `smoke` keys are framing, not
/// metrics.
fn flatten(value: &Json, prefix: String, out: &mut BTreeMap<String, f64>) {
    match value {
        Json::U64(v) => {
            out.insert(prefix, *v as f64);
        }
        Json::I64(v) => {
            out.insert(prefix, *v as f64);
        }
        Json::F64(v) => {
            out.insert(prefix, *v);
        }
        Json::Obj(entries) => {
            for (k, v) in entries {
                if SKIPPED_KEYS.contains(&k.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(v, path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let key = item
                    .get("name")
                    .and_then(Json::as_str)
                    .map_or_else(|| i.to_string(), str::to_string);
                let path = if prefix.is_empty() { key } else { format!("{prefix}.{key}") };
                flatten(item, path, out);
            }
        }
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
        "schema": "recode-bench/v1",
        "cases": [
            {"name": "dense_tile", "makespan_cycles": 1000, "bytes_per_nnz": 4.0,
             "lane_utilization": 0.9, "wall_ns": 5000},
            {"name": "stencil", "makespan_cycles": 2000, "bytes_per_nnz": 6.0,
             "lane_utilization": 0.8, "wall_ns": 9000}
        ],
        "geomean_bytes_per_nnz": 4.9
    }"#;

    #[test]
    fn identical_snapshots_pass() {
        let report = compare_snapshots(OLD, OLD).expect("parse");
        assert!(!report.has_regressions(), "{}", report.render());
        assert!(report.deltas.iter().any(|d| d.path == "cases.dense_tile.makespan_cycles"));
        // `schema` is framing, `wall_ns` is informational.
        assert!(!report.deltas.iter().any(|d| d.path == "schema"));
        let wall = report
            .deltas
            .iter()
            .find(|d| d.path == "cases.dense_tile.wall_ns")
            .expect("wall_ns reported");
        assert_eq!(wall.verdict, Verdict::Info);
    }

    #[test]
    fn a_25_percent_cycle_regression_fails_the_gate() {
        let new = OLD.replace("\"makespan_cycles\": 2000", "\"makespan_cycles\": 2500");
        let report = compare_snapshots(OLD, &new).expect("parse");
        assert!(report.has_regressions());
        let reg = report.regressions();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].path, "cases.stencil.makespan_cycles");
        assert!((reg[0].change - 0.25).abs() < 1e-12);
    }

    #[test]
    fn improvements_and_wall_clock_swings_do_not_fail() {
        // 50% fewer cycles (improvement) + 10x wall-clock swing (untracked).
        let new = OLD
            .replace("\"makespan_cycles\": 2000", "\"makespan_cycles\": 1000")
            .replace("\"wall_ns\": 9000", "\"wall_ns\": 90000");
        let report = compare_snapshots(OLD, &new).expect("parse");
        assert!(!report.has_regressions(), "{}", report.render());
        let imp = report
            .deltas
            .iter()
            .find(|d| d.path == "cases.stencil.makespan_cycles")
            .expect("present");
        assert_eq!(imp.verdict, Verdict::Improved);
    }

    #[test]
    fn small_drift_inside_noise_floor_passes() {
        // +150% relative but only 3 cycles absolute: below the 100-cycle
        // noise floor for cycle metrics.
        let old = r#"{"tiny_cycles": 2}"#;
        let new = r#"{"tiny_cycles": 5}"#;
        let report = compare_snapshots(old, new).expect("parse");
        assert!(!report.has_regressions(), "{}", report.render());
    }

    #[test]
    fn vanished_gated_metric_is_a_regression_and_new_metric_is_info() {
        let new = r#"{
            "schema": "recode-bench/v1",
            "cases": [
                {"name": "dense_tile", "makespan_cycles": 1000, "bytes_per_nnz": 4.0,
                 "lane_utilization": 0.9, "wall_ns": 5000}
            ],
            "geomean_bytes_per_nnz": 4.9,
            "fresh_cycles": 10
        }"#;
        let report = compare_snapshots(OLD, new).expect("parse");
        assert!(report.has_regressions());
        assert!(report.regressions().iter().any(|d| d.path == "cases.stencil.makespan_cycles"));
        let fresh = report.deltas.iter().find(|d| d.path == "fresh_cycles").expect("present");
        assert_eq!(fresh.verdict, Verdict::Info);
        assert!(fresh.old.is_none());
    }

    #[test]
    fn utilization_is_direction_aware() {
        let worse = OLD.replace("\"lane_utilization\": 0.8", "\"lane_utilization\": 0.5");
        let report = compare_snapshots(OLD, &worse).expect("parse");
        assert!(report.has_regressions());
        let better = OLD.replace("\"lane_utilization\": 0.8", "\"lane_utilization\": 0.99");
        let report = compare_snapshots(OLD, &better).expect("parse");
        assert!(!report.has_regressions(), "{}", report.render());
    }
}
