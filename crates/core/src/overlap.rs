//! **Overlapped decode/multiply execution with decoded-block caching** —
//! the paper's Fig. 7 pipeline taken one step further.
//!
//! The streaming executor in [`crate::exec`] decodes a tile, multiplies it,
//! then decodes the next: decode and multiply cycles *add*. On the real
//! machine the UDP lanes and the CPU cores are independent engines, so a
//! double-buffered schedule lets the lanes decode tile *i + 1* while the
//! CPU multiplies tile *i*; per stage the modeled cost is
//! `max(decode, multiply)` instead of their sum:
//!
//! ```text
//! lane:  [d0][d1   ][d2][d3   ]
//! cpu:       [m0][m1   ][m2][m3]
//! makespan = d0 + Σ max(d_i, m_{i-1}) + m_last
//! ```
//!
//! [`OverlapExecutor`] realizes both halves of that claim:
//!
//! * **modeled** — the per-tile decode cycles (from the lane simulator,
//!   stalls and retries included) and modeled CPU multiply cycles are
//!   combined by the pipelined-schedule formula above, and both the
//!   overlapped and the serial (sum) makespan are reported in
//!   [`OverlapStats`];
//! * **wall-clock** — a producer thread decodes blocks in stream order and
//!   feeds tiles through a bounded channel to a pool of CPU worker threads
//!   (`RECODE_THREADS`, default `available_parallelism`), whose partial row
//!   sums are merged back in tile order so the result is deterministic for
//!   a given tiling.
//!
//! An [`ExecCache`] (seeded-capacity LRU over decoded blocks) sits in front
//! of the lanes: iterative callers — [`OverlapExecutor::spmv_iter`],
//! [`OverlapExecutor::conjugate_gradient`],
//! [`OverlapExecutor::power_iteration`] — pay decode cost once and hit the
//! cache on every later iteration, with hits/misses/evictions folded into
//! [`ExecStats`] and the telemetry trace.
//!
//! The schedule composes with the fault layer of [`crate::exec`]: a block
//! that traps is retried on a fresh lane up to
//! [`crate::exec::MAX_BLOCK_RETRIES`] times and then served from the
//! [`crate::exec::RawFallbackStore`], *inside* its pipeline slot, so a
//! retried or fallback block can never land in the wrong output position.

use crate::arch::SystemConfig;
use crate::error::{ExecError, ExecResult};
use crate::exec::{
    check_stream_structure, ExecStats, RawFallbackStore, RecodedSpmv, MAX_BLOCK_RETRIES,
};
use crate::recorder;
use crate::resilience::{BudgetTracker, JobBudget};
use crate::telemetry::{
    BlockEvent, BlockOutcome, MatrixMeta, StreamKind, SystemMeta, Telemetry, TraceDocument,
};
use recode_mem::traffic::TrafficSource;
use recode_sparse::solve::{self, SolveResult};
use recode_udp::accel::{panic_payload_message, AccelReport, FaultHook, JobOutcome};
use recode_udp::{LaneError, UdpError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Key of a decoded block: which stream, which block position.
pub type CacheKey = (StreamKind, usize);

/// Lifetime counters of an [`ExecCache`]. Per-run numbers in
/// [`OverlapStats`] are deltas of two snapshots of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (the block was then decoded and inserted).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Decoded bytes served from the cache (decode work avoided).
    pub hit_bytes: u64,
}

struct CacheEntry {
    bytes: Arc<Vec<u8>>,
    stamp: u64,
}

/// Seeded-capacity LRU cache over decoded blocks, keyed by
/// `(stream, block)`. Capacity is counted in *blocks* (decoded blocks are
/// all ≤ the codec block size), and capacity 0 disables the cache
/// entirely — inserts are dropped and lookups are never attempted by the
/// executor, so the counters stay zero.
pub struct ExecCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, CacheEntry>,
    stats: CacheStats,
}

impl std::fmt::Debug for ExecCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ExecCache {
    /// Cache holding at most `capacity` decoded blocks (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        ExecCache { capacity, tick: 0, map: HashMap::new(), stats: CacheStats::default() }
    }

    /// Maximum resident blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.stamp = self.tick;
            self.stats.hits += 1;
            self.stats.hit_bytes += e.bytes.len() as u64;
            recorder::record(
                recorder::EventKind::CacheHit,
                recorder::Track::stage(0),
                "cache.hit",
                e.bytes.len() as u64,
                key.1 as u64,
            );
            Some(Arc::clone(&e.bytes))
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry when full.
    /// A no-op at capacity 0.
    pub fn insert(&mut self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                self.map.remove(&victim);
                self.stats.evictions += 1;
                recorder::record(
                    recorder::EventKind::CacheEvict,
                    recorder::Track::stage(0),
                    "cache.evict",
                    victim.1 as u64,
                    0,
                );
            }
        }
        self.map.insert(key, CacheEntry { bytes, stamp: self.tick });
    }
}

/// Knobs of the overlapped executor.
#[derive(Debug, Clone, Copy)]
pub struct OverlapConfig {
    /// Model the pipelined schedule (`max(decode, multiply)` per stage).
    /// When false the same tiled execution runs but stage costs add, as in
    /// [`RecodedSpmv::spmv_streaming`].
    pub overlap: bool,
    /// Decoded-block LRU capacity in blocks; 0 disables caching.
    pub cache_blocks: usize,
    /// CPU multiply workers; 0 means `RECODE_THREADS` or, failing that,
    /// `available_parallelism` (capped at 8).
    pub workers: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig { overlap: true, cache_blocks: 0, workers: 0 }
    }
}

/// Parses a `RECODE_THREADS` value into a worker count. Pure so both the
/// accept and the reject path are testable without mutating the process
/// environment (env-var mutation races under the parallel test harness).
///
/// # Errors
/// A human-readable message naming the variable and the offending value:
/// non-numeric garbage, or an explicit `0` (a zero-thread pool cannot make
/// progress, so it is rejected rather than silently remapped).
pub fn parse_recode_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!("RECODE_THREADS must be at least 1, got \"{trimmed}\"")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "RECODE_THREADS is not a thread count: \"{raw}\" (expected a positive integer)"
        )),
    }
}

impl OverlapConfig {
    /// Resolves `workers == 0` through `RECODE_THREADS` and the host. A
    /// garbage `RECODE_THREADS` value is *not* silently ignored: a warning
    /// naming the value goes to stderr and the host default is used.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        if let Ok(v) = std::env::var("RECODE_THREADS") {
            match parse_recode_threads(&v) {
                Ok(n) => return n,
                Err(msg) => eprintln!("warning: ignoring {msg}; using the host default"),
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get).min(8)
    }
}

/// Pipelined-schedule and cache statistics of one overlapped run, carried
/// inside [`ExecStats::overlap`]. All-zero (`enabled == false`) for the
/// plain batch path, so old traces deserialize unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct OverlapStats {
    /// True when the run modeled the pipelined schedule.
    pub enabled: bool,
    /// Pipeline stages executed (tiles = index blocks with non-zeros).
    pub stages: usize,
    /// CPU multiply workers used.
    pub workers: usize,
    /// Lane cycles spent decoding (stalls and successful retries included;
    /// cache hits cost zero).
    pub decode_cycles: u64,
    /// Modeled CPU multiply cycles across all tiles, in UDP-clock cycles.
    pub multiply_cycles: u64,
    /// Modeled makespan of the pipelined schedule:
    /// `d0 + Σ max(d_i, m_{i-1}) + m_last`.
    pub overlapped_makespan_cycles: u64,
    /// Modeled makespan with no overlap: `Σ d_i + Σ m_i`.
    pub serial_makespan_cycles: u64,
    /// Cache hits during this run.
    pub cache_hits: u64,
    /// Cache misses during this run.
    pub cache_misses: u64,
    /// Cache evictions during this run.
    pub cache_evictions: u64,
    /// Decoded bytes served from the cache during this run.
    pub cache_hit_bytes: u64,
}

impl OverlapStats {
    /// Cycles the pipelined schedule saves over the serial one.
    pub fn saved_cycles(&self) -> u64 {
        self.serial_makespan_cycles.saturating_sub(self.overlapped_makespan_cycles)
    }
}

/// One decoded block, as produced by the retry/fallback-aware decode step.
struct DecodedBlock {
    bytes: Arc<Vec<u8>>,
    /// Lane cycles of the successful first attempt (0 for hit/retry/fallback).
    cycles: u64,
    stall_cycles: u64,
    retries: usize,
    retry_cycles: u64,
    fell_back: bool,
    fallback_bytes: usize,
    /// Compressed payload bytes fetched (0 on a cache hit).
    wire_bytes: usize,
    cache_hit: bool,
    outcome: BlockOutcome,
}

impl DecodedBlock {
    /// Every lane cycle this block charged to the pipeline's decode side.
    fn decode_cost(&self) -> u64 {
        self.cycles + self.retry_cycles + self.stall_cycles
    }
}

/// Telemetry record of one decode job (cache hits decode nothing and are
/// therefore not jobs).
struct BlockRecord {
    job: usize,
    stream: StreamKind,
    block: usize,
    cycles: u64,
    outcome: BlockOutcome,
}

/// One tile of work handed from the decode side to the multiply side.
struct TileWork {
    tile: usize,
    k_start: usize,
    idx: Arc<Vec<u8>>,
    vals: Vec<u8>,
}

/// A worker's partial row sums for one tile.
struct TileResult {
    tile: usize,
    row_start: usize,
    partial: Vec<f64>,
}

/// Everything the producer (decode) side learns about a run.
#[derive(Default)]
struct ProducerOut {
    per_tile_decode: Vec<u64>,
    per_tile_nnz: Vec<usize>,
    records: Vec<BlockRecord>,
    jobs: usize,
    jobs_failed: usize,
    blocks_ok: usize,
    blocks_recovered: usize,
    blocks_retried: usize,
    blocks_fell_back: usize,
    fallback_bytes: usize,
    retry_cycles: u64,
    backoff_cycles: u64,
    stall_cycles: u64,
    fetched_bytes: usize,
    decoded_bytes: u64,
    cache_hit_blocks: usize,
}

/// The overlapped, cached executor over one [`RecodedSpmv`].
///
/// The executor borrows the compressed matrix and owns the decoded-block
/// cache, so a single executor reused across calls is what makes iterative
/// workloads cheap: iteration 1 decodes, iterations 2… hit the cache.
pub struct OverlapExecutor<'m> {
    recoded: &'m RecodedSpmv,
    config: OverlapConfig,
    cache: Mutex<ExecCache>,
}

impl<'m> OverlapExecutor<'m> {
    /// Executor over `recoded` with `config`.
    pub fn new(recoded: &'m RecodedSpmv, config: OverlapConfig) -> Self {
        OverlapExecutor { recoded, config, cache: Mutex::new(ExecCache::new(config.cache_blocks)) }
    }

    /// Executor over an operand recoded under a persisted tuned config,
    /// verifying the operand really carries the tuned codec stream.
    ///
    /// The overlap pipeline's tiled multiply is kernel-agnostic (each tile
    /// is reduced in CSR row order), so the tuned *kernel* choice applies
    /// to the batch path; what the tuned config contributes here is the
    /// codec stage subset and block size the decode lanes run.
    ///
    /// # Errors
    /// [`crate::tune::TuneError::CodecMismatch`] when `recoded` was
    /// compressed under a different codec config than `tuned` prescribes.
    pub fn from_tuned(
        recoded: &'m RecodedSpmv,
        tuned: &crate::tune::TunedConfig,
        config: OverlapConfig,
    ) -> Result<Self, crate::tune::TuneError> {
        if recoded.compressed().config != tuned.codec_config() {
            return Err(crate::tune::TuneError::CodecMismatch);
        }
        Ok(Self::new(recoded, config))
    }

    /// The configuration this executor runs with.
    pub fn config(&self) -> OverlapConfig {
        self.config
    }

    /// Lifetime cache counters (across every run of this executor).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache poisoned").stats()
    }

    /// Decoded blocks currently resident in the cache.
    pub fn cached_blocks(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Pipelined SpMV `y = A x`.
    ///
    /// # Errors
    /// As [`RecodedSpmv::decompress_via_udp`] — a block that fails decode,
    /// exhausts retries, and has no fallback coverage is
    /// [`ExecError::Unrecoverable`].
    ///
    /// # Panics
    /// If `x.len() != ncols`.
    pub fn spmv(&self, sys: &SystemConfig, x: &[f64]) -> ExecResult<(Vec<f64>, ExecStats)> {
        self.spmv_faulty(sys, x, None)
    }

    /// [`OverlapExecutor::spmv`] with an optional fault-injection hook.
    /// Job numbering matches the batch path (index blocks first, then value
    /// blocks), so the same hook means the same faults on either executor.
    ///
    /// # Errors
    /// As [`OverlapExecutor::spmv`].
    pub fn spmv_faulty(
        &self,
        sys: &SystemConfig,
        x: &[f64],
        hook: Option<&FaultHook>,
    ) -> ExecResult<(Vec<f64>, ExecStats)> {
        self.run(sys, x, hook, None, None)
    }

    /// [`OverlapExecutor::spmv_faulty`] governed by a [`JobBudget`]: the
    /// producer consults the budget at every retry boundary (the pipeline's
    /// preemption points), so an exhausted budget surfaces as
    /// [`ExecError::DeadlineExceeded`] instead of grinding through the
    /// remaining tiles. Backoff accumulates into
    /// [`ExecStats::backoff_cycles`] as a reported quantity; the modeled
    /// pipelined makespan keeps its `max(decode, multiply)` definition.
    ///
    /// # Errors
    /// As [`OverlapExecutor::spmv`], plus [`ExecError::DeadlineExceeded`].
    pub fn spmv_budgeted(
        &self,
        sys: &SystemConfig,
        x: &[f64],
        hook: Option<&FaultHook>,
        budget: &JobBudget,
    ) -> ExecResult<(Vec<f64>, ExecStats)> {
        self.run(sys, x, hook, None, Some(budget))
    }

    /// Fully traced pipelined SpMV: the run's spans (`exec.overlap`,
    /// `exec.mem_stream`, `exec.dma`), `pipeline.overlap.*` and `cache.*`
    /// counters, per-block events, and traffic by source sealed into a
    /// [`TraceDocument`].
    ///
    /// # Errors
    /// As [`OverlapExecutor::spmv`].
    pub fn spmv_traced(
        &self,
        sys: &SystemConfig,
        x: &[f64],
        hook: Option<&FaultHook>,
        name: &str,
    ) -> ExecResult<(Vec<f64>, ExecStats, TraceDocument)> {
        let t_total = Instant::now();
        let mut tel = Telemetry::new();
        let (y, stats) = self.run(sys, x, hook, Some(&mut tel), None)?;

        let cm = self.recoded.compressed();
        let vector_read = (cm.ncols * 8) as u64;
        let vector_write = (cm.nrows * 8) as u64;
        tel.traffic.read(TrafficSource::Vectors, vector_read);
        tel.traffic.write(TrafficSource::Vectors, vector_write);

        let matrix = MatrixMeta {
            name: name.to_string(),
            nrows: cm.nrows,
            ncols: cm.ncols,
            nnz: cm.nnz,
            compressed_bytes: stats.compressed_bytes,
            bytes_per_nnz: cm.bytes_per_nnz(),
        };
        let system = SystemMeta {
            memory: sys.mem.name.to_string(),
            lanes: sys.udp.lanes,
            freq_hz: sys.udp.freq_hz,
        };
        let codec_stages = self.recoded.stage_telemetry().map(|t| t.snapshot()).unwrap_or_default();
        let wall_ns_total = t_total.elapsed().as_nanos() as u64;
        let doc =
            tel.into_document(matrix, system, stats.clone(), codec_stages, &sys.mem, wall_ns_total);
        Ok((y, stats, doc))
    }

    /// Repeated SpMV `x ← normalize(A x)` for `iters` iterations — the
    /// access pattern of every iterative consumer. With a warm cache only
    /// iteration 1 pays decode cycles. Returns the final iterate and the
    /// per-iteration stats.
    ///
    /// # Errors
    /// As [`OverlapExecutor::spmv`].
    ///
    /// # Panics
    /// If the matrix is not square or `x0.len() != ncols`.
    pub fn spmv_iter(
        &self,
        sys: &SystemConfig,
        x0: &[f64],
        iters: usize,
    ) -> ExecResult<(Vec<f64>, Vec<ExecStats>)> {
        let cm = self.recoded.compressed();
        assert_eq!(cm.nrows, cm.ncols, "spmv_iter needs a square matrix");
        let mut x = x0.to_vec();
        let mut per_iter = Vec::with_capacity(iters);
        for _ in 0..iters {
            let (y, stats) = self.spmv(sys, &x)?;
            per_iter.push(stats);
            let norm = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            x = if norm > 0.0 { y.iter().map(|v| v / norm).collect() } else { y };
        }
        Ok((x, per_iter))
    }

    /// Conjugate gradients with every `A p` apply going through the
    /// pipelined, cached executor. Returns the solve outcome plus the
    /// per-apply stats.
    ///
    /// # Errors
    /// As [`OverlapExecutor::spmv`].
    pub fn conjugate_gradient(
        &self,
        sys: &SystemConfig,
        b: &[f64],
        tol: f64,
        max_iters: usize,
    ) -> ExecResult<(SolveResult, Vec<ExecStats>)> {
        let mut per_apply = Vec::new();
        let result = solve::conjugate_gradient_op(b, tol, max_iters, |x, y| {
            let (out, stats) = self.spmv(sys, x)?;
            y.copy_from_slice(&out);
            per_apply.push(stats);
            Ok::<(), ExecError>(())
        })?;
        Ok((result, per_apply))
    }

    /// Power iteration through the pipelined, cached executor. Returns the
    /// solve outcome, the eigenvalue estimate, and the per-apply stats.
    ///
    /// # Errors
    /// As [`OverlapExecutor::spmv`].
    ///
    /// # Panics
    /// If the matrix is not square or is empty.
    pub fn power_iteration(
        &self,
        sys: &SystemConfig,
        tol: f64,
        max_iters: usize,
    ) -> ExecResult<(SolveResult, f64, Vec<ExecStats>)> {
        let cm = self.recoded.compressed();
        assert_eq!(cm.nrows, cm.ncols, "power iteration needs a square matrix");
        let mut per_apply = Vec::new();
        let (result, eigenvalue) = solve::power_iteration_op(cm.nrows, tol, max_iters, |x, y| {
            let (out, stats) = self.spmv(sys, x)?;
            y.copy_from_slice(&out);
            per_apply.push(stats);
            Ok::<(), ExecError>(())
        })?;
        Ok((result, eigenvalue, per_apply))
    }

    /// Decodes one block through the same cache-then-retry-ladder path a
    /// pipelined run uses, returning the decoded length. Hidden: it exists
    /// so the allocation-regression suite can measure warm-cache hits
    /// without spinning up the worker threads `run` needs.
    #[doc(hidden)]
    pub fn decode_one_for_test(&self, stream: StreamKind, pos: usize) -> ExecResult<usize> {
        let hook = FaultHook::default();
        self.decode_one(stream, pos, usize::MAX, &hook, None).map(|d| d.bytes.len())
    }

    /// Decodes one block, consulting the cache first and falling through
    /// the retry/fallback ladder of the batch path on failure. `job` uses
    /// batch numbering (index blocks `0..n_index`, value blocks after).
    /// When a budget `tracker` is supplied it is consulted before every
    /// retry attempt and charged for successful ones.
    fn decode_one(
        &self,
        stream: StreamKind,
        pos: usize,
        job: usize,
        hook: &FaultHook,
        mut tracker: Option<&mut BudgetTracker>,
    ) -> ExecResult<DecodedBlock> {
        let cm = self.recoded.compressed();
        let (decoder, blk, block_bytes, raw_bytes) = match stream {
            StreamKind::Index => (
                self.recoded.index_decoder(),
                &cm.index_stream.blocks[pos],
                cm.index_stream.block_bytes,
                self.recoded.raw_store().map(|s| s.index_bytes.as_slice()),
            ),
            StreamKind::Value => (
                self.recoded.value_decoder(),
                &cm.value_stream.blocks[pos],
                cm.value_stream.block_bytes,
                self.recoded.raw_store().map(|s| s.value_bytes.as_slice()),
            ),
        };
        if self.config.cache_blocks > 0 {
            if let Some(bytes) = self.cache.lock().expect("cache poisoned").get((stream, pos)) {
                return Ok(DecodedBlock {
                    bytes,
                    cycles: 0,
                    stall_cycles: 0,
                    retries: 0,
                    retry_cycles: 0,
                    fell_back: false,
                    fallback_bytes: 0,
                    wire_bytes: 0,
                    cache_hit: true,
                    outcome: BlockOutcome::Ok,
                });
            }
        }

        let stall_cycles = hook.stall_cycles.get(&job).copied().unwrap_or(0);
        let wire_bytes = blk.payload.len();
        // Decode work happens on the producer (stage 0) track; cache hits
        // returned above never open this span.
        let _decode_span = recorder::span(recorder::Track::stage(0), "decode");
        let mut lane = recode_udp::pool::global().checkout();
        let first: Result<JobOutcome, UdpError> = if hook.trap_jobs.contains(&job) {
            Err(UdpError::from(LaneError::InjectedFault))
        } else {
            decoder.decode_block(&mut lane, blk)
        };

        let mut cycles = 0u64;
        let mut retries = 0usize;
        let mut retry_cycles = 0u64;
        let mut fell_back = false;
        let mut fallback_bytes = 0usize;
        let mut outcome = BlockOutcome::Ok;
        let decoded: Vec<u8> = match first {
            Ok(o) => {
                cycles = o.cycles;
                o.output
            }
            Err(first_err) => {
                // Bounded hook-free retry on a fresh lane, then the raw
                // store — the same ladder as the batch path.
                let mut recovered: Option<Vec<u8>> = None;
                let mut last_err = first_err;
                for _ in 0..MAX_BLOCK_RETRIES {
                    if let Some(t) = tracker.as_deref_mut() {
                        if let Err(what) = t.admit_retry() {
                            let total = cm.index_stream.blocks.len() + cm.value_stream.blocks.len();
                            return Err(ExecError::DeadlineExceeded {
                                budget: what.to_string(),
                                completed_blocks: job.min(total),
                                total_blocks: total,
                            });
                        }
                    }
                    retries += 1;
                    recorder::record(
                        recorder::EventKind::Retry,
                        recorder::Track::stage(0),
                        "exec.retry",
                        retries as u64,
                        job as u64,
                    );
                    match decoder.decode_block(&mut lane, blk) {
                        Ok(o) => {
                            retry_cycles = o.cycles;
                            if let Some(t) = tracker.as_deref_mut() {
                                t.charge_retry_cycles(o.cycles);
                            }
                            outcome = BlockOutcome::Retried;
                            recovered = Some(o.output);
                            break;
                        }
                        Err(e) => last_err = e,
                    }
                }
                if let Some(bytes) = recovered {
                    bytes
                } else {
                    let raw =
                        raw_bytes.and_then(|b| RawFallbackStore::block_range(b, pos, block_bytes));
                    match raw {
                        Some(raw) => {
                            recorder::record(
                                recorder::EventKind::Fallback,
                                recorder::Track::stage(0),
                                "exec.fallback",
                                raw.len() as u64,
                                job as u64,
                            );
                            fell_back = true;
                            fallback_bytes = raw.len();
                            outcome = BlockOutcome::FellBack;
                            raw.to_vec()
                        }
                        None => {
                            return Err(ExecError::Unrecoverable {
                                block: last_err.block().or(Some(pos)),
                                lane: None,
                                source: last_err,
                            });
                        }
                    }
                }
            }
        };
        let bytes = Arc::new(decoded);
        if self.config.cache_blocks > 0 {
            self.cache.lock().expect("cache poisoned").insert((stream, pos), Arc::clone(&bytes));
        }
        Ok(DecodedBlock {
            bytes,
            cycles,
            stall_cycles,
            retries,
            retry_cycles,
            fell_back,
            fallback_bytes,
            wire_bytes,
            cache_hit: false,
            outcome,
        })
    }

    /// The decode side of the pipeline: walks index blocks in order,
    /// pulling value blocks as each tile needs them, and hands assembled
    /// tiles to `emit`. Runs on the producer thread (or inline). `emit`
    /// returns `false` when the consumers are gone (every worker exited) —
    /// the producer then stops decoding immediately instead of filling a
    /// channel nobody drains.
    fn produce_tiles(
        &self,
        hook: &FaultHook,
        budget: Option<&JobBudget>,
        mut emit: impl FnMut(TileWork) -> bool,
    ) -> ExecResult<ProducerOut> {
        let cm = self.recoded.compressed();
        let n_index = cm.index_stream.blocks.len();
        let mut tracker = budget.map(|b| BudgetTracker::new(*b));
        let mut out = ProducerOut::default();
        let mut val_buf: Vec<u8> = Vec::new();
        let mut next_value = 0usize;
        let mut k_global = 0usize;

        let note = |out: &mut ProducerOut, d: &DecodedBlock, stream: StreamKind, pos: usize| {
            let job = match stream {
                StreamKind::Index => pos,
                StreamKind::Value => n_index + pos,
            };
            out.decoded_bytes += d.bytes.len() as u64;
            if d.cache_hit {
                out.cache_hit_blocks += 1;
                return;
            }
            out.jobs += 1;
            if d.outcome != BlockOutcome::Ok {
                out.jobs_failed += 1;
            }
            match d.outcome {
                BlockOutcome::Ok => out.blocks_ok += 1,
                BlockOutcome::Retried => out.blocks_recovered += 1,
                BlockOutcome::FellBack => {}
            }
            out.blocks_retried += d.retries;
            if d.fell_back {
                out.blocks_fell_back += 1;
                out.fallback_bytes += d.fallback_bytes;
            }
            out.retry_cycles += d.retry_cycles;
            out.stall_cycles += d.stall_cycles;
            out.fetched_bytes += d.wire_bytes;
            out.records.push(BlockRecord {
                job,
                stream,
                block: pos,
                cycles: if d.outcome == BlockOutcome::Retried { d.retry_cycles } else { d.cycles },
                outcome: d.outcome,
            });
        };

        for t in 0..n_index {
            let ib = self.decode_one(StreamKind::Index, t, t, hook, tracker.as_mut())?;
            let mut tile_cycles = ib.decode_cost();
            note(&mut out, &ib, StreamKind::Index, t);
            let tile_nnz = ib.bytes.len() / 4;
            while val_buf.len() < tile_nnz * 8 {
                let vpos = next_value;
                if vpos >= cm.value_stream.blocks.len() {
                    return Err(ExecError::Reassembly("value stream ended early".into()));
                }
                let vb = self.decode_one(
                    StreamKind::Value,
                    vpos,
                    n_index + vpos,
                    hook,
                    tracker.as_mut(),
                )?;
                next_value += 1;
                tile_cycles += vb.decode_cost();
                note(&mut out, &vb, StreamKind::Value, vpos);
                val_buf.extend_from_slice(&vb.bytes);
            }
            let vals: Vec<u8> = val_buf[..tile_nnz * 8].to_vec();
            val_buf.drain(..tile_nnz * 8);
            out.per_tile_decode.push(tile_cycles);
            out.per_tile_nnz.push(tile_nnz);
            if !emit(TileWork { tile: t, k_start: k_global, idx: Arc::clone(&ib.bytes), vals }) {
                // Every consumer is gone; `run` substitutes the real panic
                // message when one was captured.
                return Err(ExecError::WorkerPanic {
                    context: "tile channel closed: every multiply worker exited".into(),
                });
            }
            k_global += tile_nnz;
        }
        if k_global != cm.nnz {
            return Err(ExecError::Reassembly(format!(
                "streamed {} non-zeros but the matrix has {}",
                k_global, cm.nnz
            )));
        }
        out.backoff_cycles = tracker.as_ref().map_or(0, BudgetTracker::backoff_cycles);
        Ok(out)
    }

    /// The engine behind every entry point: decode (producer) and multiply
    /// (workers) run concurrently over a bounded channel; partial row sums
    /// merge back in tile order.
    ///
    /// ## Panic containment
    ///
    /// A panic anywhere in the pipeline — a multiply worker (including
    /// injected [`FaultHook::panic_tile`] faults) or the producer — is
    /// caught at the thread boundary and converted into
    /// [`ExecError::WorkerPanic`]; it can never strand the bounded tile
    /// channel with a blocked sender. Two pieces make that guarantee: the
    /// producer stops as soon as a send fails, and `run` drops its own
    /// handle on the tile receiver so dead workers actually close the
    /// channel.
    fn run(
        &self,
        sys: &SystemConfig,
        x: &[f64],
        hook: Option<&FaultHook>,
        tel: Option<&mut Telemetry>,
        budget: Option<&JobBudget>,
    ) -> ExecResult<(Vec<f64>, ExecStats)> {
        let cm = self.recoded.compressed();
        assert_eq!(x.len(), cm.ncols, "x length must equal ncols");
        check_stream_structure(&cm.index_stream)?;
        check_stream_structure(&cm.value_stream)?;
        let empty_hook = FaultHook::default();
        let hook = hook.unwrap_or(&empty_hook);
        let workers = self.config.effective_workers().max(1);
        let row_ptr: &[usize] = &cm.row_ptr;
        let cache_before = self.cache.lock().expect("cache poisoned").stats();

        let t_wall = Instant::now();
        let _overlap_span = recorder::span(recorder::Track::MAIN, "exec.overlap");
        let mut y = vec![0.0f64; cm.nrows];
        let (tile_tx, tile_rx) = mpsc::sync_channel::<TileWork>(workers + 1);
        let tile_rx = Arc::new(Mutex::new(tile_rx));
        let (res_tx, res_rx) = mpsc::channel::<TileResult>();
        // First contained worker panic, if any; checked after the scope.
        let worker_panic: Mutex<Option<String>> = Mutex::new(None);

        let produced = std::thread::scope(|s| {
            let producer = s.spawn(move || {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    // `send` fails only when every worker is gone; the
                    // producer then stops decoding instead of blocking.
                    self.produce_tiles(hook, budget, |tile| tile_tx.send(tile).is_ok())
                }));
                drop(tile_tx);
                // The scope waits for this closure, not the thread's TLS
                // destructors: publish recorder events before returning so
                // the caller's drain sees them.
                recorder::flush_thread();
                out
            });
            for w in 0..workers {
                let rx = Arc::clone(&tile_rx);
                let tx = res_tx.clone();
                let worker_panic = &worker_panic;
                s.spawn(move || {
                    loop {
                        let Ok(work) = rx.lock().unwrap_or_else(PoisonError::into_inner).recv()
                        else {
                            break;
                        };
                        let tile = work.tile;
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            assert!(
                                !hook.panic_tiles.contains(&tile),
                                "injected panic in tile {tile}"
                            );
                            let _span = recorder::span(recorder::Track::worker(w), "multiply_tile");
                            multiply_tile(row_ptr, x, &work)
                        }));
                        match result {
                            Ok((row_start, partial)) => {
                                if tx.send(TileResult { tile, row_start, partial }).is_err() {
                                    break;
                                }
                            }
                            Err(payload) => {
                                let msg = format!(
                                    "worker {w}, tile {tile}: {}",
                                    panic_payload_message(payload.as_ref())
                                );
                                worker_panic
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .get_or_insert(msg);
                                break;
                            }
                        }
                    }
                    // As with the producer: the scope orders this closure's
                    // end, not the TLS flush, so publish span events now.
                    recorder::flush_thread();
                });
            }
            drop(res_tx);
            // Drop run's own handle on the tile queue: once every worker
            // has exited, the producer's next send must fail fast rather
            // than block on a receiver nobody holds.
            drop(tile_rx);

            // Merge partials strictly in tile order, buffering out-of-order
            // arrivals, so straddling rows accumulate deterministically.
            let mut pending: BTreeMap<usize, TileResult> = BTreeMap::new();
            let mut next_tile = 0usize;
            for r in &res_rx {
                pending.insert(r.tile, r);
                while let Some(r) = pending.remove(&next_tile) {
                    for (i, v) in r.partial.iter().enumerate() {
                        y[r.row_start + i] += v;
                    }
                    next_tile += 1;
                }
            }
            match producer.join().expect("producer thread join failed") {
                Ok(res) => res,
                Err(payload) => Err(ExecError::WorkerPanic {
                    context: format!("producer: {}", panic_payload_message(payload.as_ref())),
                }),
            }
        });
        // A contained worker panic outranks whatever the producer saw: the
        // merged result is incomplete, and the generic channel-closed error
        // the producer reports is only a symptom.
        if let Some(context) = worker_panic.lock().unwrap_or_else(PoisonError::into_inner).take() {
            return Err(ExecError::WorkerPanic { context });
        }
        let produced = produced?;
        let wall_ns = t_wall.elapsed().as_nanos() as u64;

        // Modeled schedule: the lane decodes tile i+1 while the CPU
        // multiplies tile i.
        let bpnnz = cm.bytes_per_nnz();
        let per_tile_multiply: Vec<u64> = produced
            .per_tile_nnz
            .iter()
            .map(|&nnz| modeled_multiply_cycles(sys, bpnnz, nnz))
            .collect();
        let decode_cycles: u64 = produced.per_tile_decode.iter().sum();
        let multiply_cycles: u64 = per_tile_multiply.iter().sum();
        let stages = produced.per_tile_decode.len();
        let serial_makespan = decode_cycles + multiply_cycles;
        let overlapped_makespan = if stages == 0 {
            0
        } else {
            let mut total = produced.per_tile_decode[0];
            for i in 1..stages {
                total += produced.per_tile_decode[i].max(per_tile_multiply[i - 1]);
            }
            total + per_tile_multiply[stages - 1]
        };
        let makespan = if self.config.overlap { overlapped_makespan } else { serial_makespan };

        let cache_after = self.cache.lock().expect("cache poisoned").stats();
        let overlap = OverlapStats {
            enabled: self.config.overlap,
            stages,
            workers,
            decode_cycles,
            multiply_cycles,
            overlapped_makespan_cycles: overlapped_makespan,
            serial_makespan_cycles: serial_makespan,
            cache_hits: cache_after.hits - cache_before.hits,
            cache_misses: cache_after.misses - cache_before.misses,
            cache_evictions: cache_after.evictions - cache_before.evictions,
            cache_hit_bytes: cache_after.hit_bytes - cache_before.hit_bytes,
        };

        let mut report = AccelReport {
            jobs: produced.jobs,
            jobs_failed: produced.jobs_failed,
            lanes: sys.udp.lanes,
            makespan_cycles: makespan,
            busy_cycles: decode_cycles,
            injected_stall_cycles: produced.stall_cycles,
            output_bytes: produced.decoded_bytes,
            freq_hz: sys.udp.freq_hz,
            ..AccelReport::default()
        };
        report.refresh_utilization();

        let stats = ExecStats {
            accel: report,
            mem_stream_seconds: sys
                .mem
                .stream_seconds((produced.fetched_bytes + produced.fallback_bytes) as u64),
            dma_seconds: sys
                .dma
                .transfer_seconds(produced.jobs as u64, produced.fetched_bytes as u64),
            compressed_bytes: produced.fetched_bytes,
            blocks_retried: produced.blocks_retried,
            blocks_fell_back: produced.blocks_fell_back,
            fallback_bytes: produced.fallback_bytes,
            retry_cycles: produced.retry_cycles,
            backoff_cycles: produced.backoff_cycles,
            degraded: produced.blocks_retried > 0 || produced.blocks_fell_back > 0,
            software_decode: false,
            blocks_ok: produced.blocks_ok,
            blocks_recovered: produced.blocks_recovered,
            overlap,
        };

        if let Some(tel) = tel {
            let freq = sys.udp.freq_hz;
            tel.span("exec.overlap", wall_ns, makespan as f64 / freq, produced.decoded_bytes);
            tel.span(
                "exec.mem_stream",
                0,
                stats.mem_stream_seconds,
                (produced.fetched_bytes + produced.fallback_bytes) as u64,
            );
            tel.span("exec.dma", 0, stats.dma_seconds, produced.fetched_bytes as u64);

            tel.add("exec.jobs", stats.accel.jobs as u64);
            tel.add("exec.jobs_failed", stats.accel.jobs_failed as u64);
            tel.add("exec.blocks_retried", stats.blocks_retried as u64);
            tel.add("exec.blocks_fell_back", stats.blocks_fell_back as u64);
            tel.add("exec.fallback_bytes", stats.fallback_bytes as u64);
            tel.add("exec.retry_cycles", stats.retry_cycles);

            tel.add("pipeline.overlap.stages", overlap.stages as u64);
            tel.add("pipeline.overlap.decode_cycles", overlap.decode_cycles);
            tel.add("pipeline.overlap.multiply_cycles", overlap.multiply_cycles);
            tel.add("pipeline.overlap.makespan_cycles", overlap.overlapped_makespan_cycles);
            tel.add("pipeline.overlap.serial_cycles", overlap.serial_makespan_cycles);
            tel.add("pipeline.overlap.saved_cycles", overlap.saved_cycles());
            tel.add("cache.hits", overlap.cache_hits);
            tel.add("cache.misses", overlap.cache_misses);
            tel.add("cache.evictions", overlap.cache_evictions);
            tel.add("cache.hit_bytes", overlap.cache_hit_bytes);

            tel.traffic.read(TrafficSource::CompressedStream, produced.fetched_bytes as u64);
            tel.traffic.read(TrafficSource::FallbackRefetch, produced.fallback_bytes as u64);
            tel.traffic.read(TrafficSource::RowPtr, ((cm.nrows + 1) * 8) as u64);
            tel.traffic.read(TrafficSource::DecodedCache, overlap.cache_hit_bytes);

            let mut records = produced.records;
            records.sort_by_key(|r| r.job);
            for r in records {
                tel.block_event(BlockEvent {
                    job: r.job,
                    stream: r.stream,
                    block: r.block,
                    lane: r.job % sys.udp.lanes,
                    cycles: r.cycles,
                    outcome: r.outcome,
                });
            }
        }
        Ok((y, stats))
    }
}

/// Multiplies one tile: walks rows as the nnz cursor advances (exactly the
/// streaming loop) but accumulates into a tile-local partial vector rooted
/// at the tile's first row, so tiles can run on any worker.
fn multiply_tile(row_ptr: &[usize], x: &[f64], work: &TileWork) -> (usize, Vec<f64>) {
    let tile_nnz = work.idx.len() / 4;
    if tile_nnz == 0 {
        return (0, Vec::new());
    }
    // First row whose span contains k_start (empty rows skip past).
    let row_start = row_ptr.partition_point(|&p| p <= work.k_start) - 1;
    let mut row = row_start;
    let mut partial: Vec<f64> = Vec::new();
    for t in 0..tile_nnz {
        let k = work.k_start + t;
        while row_ptr[row + 1] <= k {
            row += 1;
        }
        if partial.len() < row - row_start + 1 {
            partial.resize(row - row_start + 1, 0.0);
        }
        let c = u32::from_le_bytes(work.idx[t * 4..t * 4 + 4].try_into().expect("4-byte index"))
            as usize;
        let v = f64::from_le_bytes(work.vals[t * 8..t * 8 + 8].try_into().expect("8-byte value"));
        partial[row - row_start] += v * x[c];
    }
    (row_start, partial)
}

/// Modeled CPU cycles (in UDP-clock cycles, so they compose with lane
/// decode cycles) to multiply a tile of `nnz` non-zeros: `2·nnz` flops at
/// the bandwidth-bound SpMV rate of [`recode_mem::cpu::CpuModel`].
fn modeled_multiply_cycles(sys: &SystemConfig, bytes_per_nnz: f64, nnz: usize) -> u64 {
    if nnz == 0 {
        return 0;
    }
    let flops = 2.0 * nnz as f64;
    let rate = sys.cpu.spmv_flops(&sys.mem, bytes_per_nnz);
    ((flops / rate) * sys.udp.freq_hz).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_codec::pipeline::MatrixCodecConfig;
    use recode_sparse::prelude::*;
    use recode_sparse::spmv::SpmvKernel;

    fn test_matrix() -> Csr {
        generate(
            &GenSpec::Stencil2D {
                nx: 60,
                ny: 60,
                points: 9,
                values: ValueModel::QuantizedGaussian { levels: 48 },
            },
            17,
        )
    }

    fn max_rel_err(got: &[f64], want: &[f64]) -> f64 {
        got.iter()
            .zip(want)
            .map(|(g, w)| {
                let scale = w.abs().max(1.0);
                (g - w).abs() / scale
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn overlapped_spmv_matches_reference_within_tolerance() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let want = recode_sparse::spmv::spmv(&a, &x);
        for overlap in [true, false] {
            for cache_blocks in [0usize, 64] {
                let ex =
                    OverlapExecutor::new(&r, OverlapConfig { overlap, cache_blocks, workers: 3 });
                let (y, stats) = ex.spmv(&sys, &x).unwrap();
                assert!(max_rel_err(&y, &want) < 1e-10, "overlap={overlap} cache={cache_blocks}");
                assert_eq!(stats.overlap.enabled, overlap);
                assert!(stats.overlap.stages > 0);
                assert!(!stats.degraded);
            }
        }
    }

    #[test]
    fn overlapped_makespan_beats_the_serial_sum() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let ex = OverlapExecutor::new(&r, OverlapConfig::default());
        let (_, stats) = ex.spmv(&sys, &x).unwrap();
        let ov = stats.overlap;
        assert!(ov.stages >= 2, "need at least two tiles to overlap: {}", ov.stages);
        assert!(
            ov.overlapped_makespan_cycles < ov.serial_makespan_cycles,
            "overlapped {} must beat serial {}",
            ov.overlapped_makespan_cycles,
            ov.serial_makespan_cycles
        );
        // The schedule can never beat either engine's own critical path.
        assert!(ov.overlapped_makespan_cycles >= ov.decode_cycles);
        assert!(ov.overlapped_makespan_cycles >= ov.multiply_cycles);
        assert_eq!(stats.accel.makespan_cycles, ov.overlapped_makespan_cycles);
    }

    #[test]
    fn warm_cache_pays_at_least_five_times_fewer_decode_cycles() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x0 = vec![1.0; a.ncols()];
        let ex = OverlapExecutor::new(
            &r,
            OverlapConfig { overlap: true, cache_blocks: 4096, workers: 2 },
        );
        let (_, per_iter) = ex.spmv_iter(&sys, &x0, 10).unwrap();
        assert_eq!(per_iter.len(), 10);
        let cold = per_iter[0].overlap.decode_cycles;
        let warm: u64 = per_iter[1..].iter().map(|s| s.overlap.decode_cycles).sum();
        assert!(cold > 0);
        assert_eq!(warm, 0, "a fully warm cache decodes nothing");
        // The acceptance bar: iteration 1 spends >= 5x the decode cycles of
        // any later iteration (trivially true at 0, asserted robustly).
        let max_warm = per_iter[1..].iter().map(|s| s.overlap.decode_cycles).max().unwrap();
        assert!(cold >= 5 * max_warm.max(1) || max_warm == 0);
        assert!(per_iter[1].overlap.cache_hits > 0);
        assert_eq!(per_iter[1].overlap.cache_misses, 0);
    }

    #[test]
    fn lru_evicts_and_recovers_under_tiny_capacity() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        // Fewer slots than blocks: every run re-decodes, evicting as it goes.
        let ex =
            OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 2, workers: 1 });
        let (_, s1) = ex.spmv(&sys, &x).unwrap();
        let (_, s2) = ex.spmv(&sys, &x).unwrap();
        assert!(s1.overlap.cache_evictions > 0, "capacity 2 must evict");
        assert!(s2.overlap.cache_misses > 0, "thrashing cache cannot serve everything");
        assert!(ex.cached_blocks() <= 2);
        let want = recode_sparse::spmv::spmv(&a, &x);
        let (y, _) = ex.spmv(&sys, &x).unwrap();
        assert!(max_rel_err(&y, &want) < 1e-10);
    }

    #[test]
    fn faults_inside_the_pipeline_keep_blocks_in_position() {
        let a = test_matrix();
        let mut r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        // Value block 1 is corrupt (falls back); job 0 traps transiently.
        r.compressed_mut().value_stream.blocks[1].payload[0] ^= 0x40;
        let sys = SystemConfig::ddr4();
        let hook = FaultHook::new().trap(0).stall(2, 50_000);
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let want = recode_sparse::spmv::spmv(&a, &x);
        let ex = OverlapExecutor::new(
            &r,
            OverlapConfig { overlap: true, cache_blocks: 128, workers: 4 },
        );
        let (y, stats) = ex.spmv_faulty(&sys, &x, Some(&hook)).unwrap();
        assert!(max_rel_err(&y, &want) < 1e-10, "recovered blocks must land in place");
        assert!(stats.degraded);
        assert!(stats.blocks_retried > 0);
        assert_eq!(stats.blocks_fell_back, 1);
        assert!(stats.fallback_bytes > 0);
        assert_eq!(stats.accel.injected_stall_cycles, 50_000);
        // Second run: the cache holds recovered bytes, so nothing degrades.
        let (y2, s2) = ex.spmv_faulty(&sys, &x, Some(&hook)).unwrap();
        assert!(max_rel_err(&y2, &want) < 1e-10);
        assert!(!s2.degraded, "cached blocks skip the fault path entirely");
        assert_eq!(s2.overlap.cache_misses, 0);
    }

    #[test]
    fn unrecoverable_block_is_a_typed_error_not_a_hang() {
        let a = test_matrix();
        let cm =
            recode_codec::pipeline::CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh())
                .unwrap();
        let mut r = RecodedSpmv::from_compressed(cm).unwrap(); // no raw store
        r.compressed_mut().index_stream.blocks[1].payload[0] ^= 0x10;
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let ex = OverlapExecutor::new(&r, OverlapConfig::default());
        let err = ex.spmv(&sys, &x).unwrap_err();
        match err {
            ExecError::Unrecoverable { block, .. } => assert_eq!(block, Some(1)),
            other => panic!("expected Unrecoverable, got {other}"),
        }
    }

    #[test]
    fn traced_overlap_run_seals_a_valid_document() {
        let a = test_matrix();
        let r = RecodedSpmv::new_traced(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let ex = OverlapExecutor::new(
            &r,
            OverlapConfig { overlap: true, cache_blocks: 512, workers: 2 },
        );
        let (_, stats, doc) = ex.spmv_traced(&sys, &x, None, "stencil-overlap").unwrap();
        let errs = doc.validate();
        assert!(errs.is_empty(), "trace invariants violated: {errs:?}");
        assert!(doc.spans.iter().any(|s| s.name == "exec.overlap"));
        assert_eq!(doc.counter("pipeline.overlap.stages"), stats.overlap.stages as u64);
        assert_eq!(doc.counter("cache.misses"), stats.overlap.cache_misses);
        assert_eq!(doc.block_events.len(), stats.accel.jobs);
        // Warm run: hits appear in the counters and the traffic ledger.
        let (_, stats2, doc2) = ex.spmv_traced(&sys, &x, None, "stencil-overlap").unwrap();
        assert!(doc2.validate().is_empty(), "{:?}", doc2.validate());
        assert!(stats2.overlap.cache_hits > 0);
        assert_eq!(doc2.counter("cache.hits"), stats2.overlap.cache_hits);
        assert_eq!(doc2.counter("mem.read.decoded_cache"), stats2.overlap.cache_hit_bytes);
        assert_eq!(doc2.block_events.len(), 0, "cache hits are not decode jobs");
    }

    #[test]
    fn solvers_run_through_the_cached_executor() {
        // SPD 1D Laplacian, same as the solver unit tests.
        let n = 200usize;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let b = vec![1.0; n];
        let ex = OverlapExecutor::new(
            &r,
            OverlapConfig { overlap: true, cache_blocks: 1024, workers: 2 },
        );
        let (result, per_apply) = ex.conjugate_gradient(&sys, &b, 1e-10, 1000).unwrap();
        assert!(result.converged, "residual {}", result.residual);
        let reference =
            recode_sparse::solve::conjugate_gradient(&a, &b, SpmvKernel::Serial, 1e-10, 1000);
        assert!(max_rel_err(&result.x, &reference.x) < 1e-6);
        assert!(per_apply.len() >= 2);
        // Applies after the first decode nothing.
        assert_eq!(per_apply[1].overlap.decode_cycles, 0);
        assert!(per_apply[0].overlap.decode_cycles > 0);

        // Power iteration on the 1D Laplacian converges slowly (tight
        // spectral gap); just drive a bounded number of cached applies and
        // check the eigenvalue estimate lands in the spectrum.
        let (pr, eigenvalue, _) = ex.power_iteration(&sys, 1e-6, 300).unwrap();
        assert!(pr.iterations > 0);
        assert!(eigenvalue > 0.0 && eigenvalue <= 4.0 + 1e-9, "eigenvalue {eigenvalue}");
    }

    #[test]
    fn empty_matrix_runs_cleanly() {
        let empty = Csr::try_from_parts(2, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        let r = RecodedSpmv::new(&empty, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let ex = OverlapExecutor::new(&r, OverlapConfig::default());
        let (y, stats) = ex.spmv(&sys, &[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![0.0, 0.0]);
        assert_eq!(stats.overlap.stages, 0);
        assert_eq!(stats.accel.makespan_cycles, 0);
    }

    #[test]
    fn cache_capacity_zero_disables_lookups_entirely() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let ex = OverlapExecutor::new(&r, OverlapConfig::default());
        let (_, stats) = ex.spmv(&sys, &x).unwrap();
        assert_eq!(stats.overlap.cache_hits, 0);
        assert_eq!(stats.overlap.cache_misses, 0);
        assert_eq!(ex.cache_stats(), CacheStats::default());
    }

    #[test]
    fn exec_cache_lru_evicts_least_recent() {
        let mut c = ExecCache::new(2);
        let k = |i: usize| (StreamKind::Index, i);
        c.insert(k(0), Arc::new(vec![0u8; 4]));
        c.insert(k(1), Arc::new(vec![1u8; 4]));
        assert!(c.get(k(0)).is_some()); // 0 is now most recent
        c.insert(k(2), Arc::new(vec![2u8; 4])); // evicts 1
        assert!(c.get(k(0)).is_some());
        assert!(c.get(k(1)).is_none());
        assert!(c.get(k(2)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 17) as f64 * 0.25 - 2.0).collect();
        let one =
            OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 0, workers: 1 });
        let many =
            OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 0, workers: 6 });
        let (y1, _) = one.spmv(&sys, &x).unwrap();
        let (y2, _) = many.spmv(&sys, &x).unwrap();
        assert_eq!(y1, y2, "tile-ordered merge must be worker-count invariant");
    }

    #[test]
    fn injected_worker_panic_is_contained_as_a_typed_error() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let hook = FaultHook::new().panic_tile(0);
        let ex =
            OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 0, workers: 3 });
        let err = ex.spmv_faulty(&sys, &x, Some(&hook)).unwrap_err();
        match &err {
            ExecError::WorkerPanic { context } => {
                assert!(context.contains("tile 0"), "{context}");
                assert!(context.contains("injected panic"), "{context}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
        // The pipeline is not wedged: the same executor runs cleanly after.
        let want = recode_sparse::spmv::spmv(&a, &x);
        let (y, _) = ex.spmv(&sys, &x).unwrap();
        assert!(max_rel_err(&y, &want) < 1e-10);
    }

    #[test]
    fn every_worker_panicking_still_terminates_with_a_typed_error() {
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        // Panic on every tile: all workers die, and the producer must not
        // block forever on the bounded tile channel.
        let mut hook = FaultHook::new();
        let tiles = r.compressed().index_stream.blocks.len();
        for t in 0..tiles.max(8) {
            hook = hook.panic_tile(t);
        }
        let ex =
            OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 0, workers: 2 });
        let err = ex.spmv_faulty(&sys, &x, Some(&hook)).unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanic { .. }), "{err}");
    }

    #[test]
    fn overlap_budget_exhaustion_is_deadline_exceeded() {
        use crate::resilience::JobBudget;
        use std::time::Duration;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let hook = FaultHook::new().trap(0);
        let ex = OverlapExecutor::new(&r, OverlapConfig::default());
        let budget = JobBudget::with_deadline(Duration::ZERO);
        let err = ex.spmv_budgeted(&sys, &x, Some(&hook), &budget).unwrap_err();
        match &err {
            ExecError::DeadlineExceeded { budget, .. } => assert_eq!(budget, "wall deadline"),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // Unbounded budget with the same faults recovers bit-exact.
        let want = recode_sparse::spmv::spmv(&a, &x);
        let (y, stats) = ex.spmv_budgeted(&sys, &x, Some(&hook), &JobBudget::unbounded()).unwrap();
        assert!(max_rel_err(&y, &want) < 1e-10);
        assert!(stats.degraded);
        assert_eq!(
            stats.blocks_ok + stats.blocks_recovered + stats.blocks_fell_back,
            stats.accel.jobs,
            "overlap accounting identity"
        );
    }

    #[test]
    fn overlap_backoff_is_reported_but_never_folded_into_the_makespan() {
        use crate::resilience::JobBudget;
        let a = test_matrix();
        let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
        let sys = SystemConfig::ddr4();
        let x = vec![1.0; a.ncols()];
        let hook = FaultHook::new().trap(0);
        let ex =
            OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 0, workers: 2 });
        let budget = JobBudget { backoff_cycles_per_retry: 1_000, ..JobBudget::default() };
        let (_, stats) = ex.spmv_budgeted(&sys, &x, Some(&hook), &budget).unwrap();
        assert_eq!(stats.backoff_cycles, 1_000, "one retry, one backoff charge");
        // The overlap schedule invariant pins makespan to the overlapped
        // schedule, so backoff stays a reported stat here.
        assert_eq!(stats.accel.makespan_cycles, stats.overlap.overlapped_makespan_cycles);
    }

    #[test]
    fn recode_threads_parser_accepts_counts_and_rejects_garbage() {
        assert_eq!(parse_recode_threads("4"), Ok(4));
        assert_eq!(parse_recode_threads("  8  "), Ok(8), "whitespace is trimmed");
        let err = parse_recode_threads("0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_recode_threads("banana").unwrap_err();
        assert!(err.contains("not a thread count"), "{err}");
        assert!(err.contains("banana"), "the garbage value is echoed: {err}");
        assert!(parse_recode_threads("-3").is_err());
        assert!(parse_recode_threads("").is_err());
    }
}
