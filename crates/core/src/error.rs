//! Typed errors for the heterogeneous execution layer.
//!
//! [`ExecError`] is the top of the error chain: codec failures
//! ([`recode_codec::CodecError`]) and accelerator failures
//! ([`recode_udp::UdpError`], which itself wraps codec and lane errors with
//! block/lane context) both convert into it losslessly, so a checksum
//! mismatch detected deep inside a lane job surfaces at the SpMV API with
//! its block index and lane id still attached.

use recode_codec::CodecError;
use recode_udp::UdpError;
use std::fmt;

/// Result alias for heterogeneous-execution operations.
pub type ExecResult<T> = std::result::Result<T, ExecError>;

/// Errors raised by recoding-enhanced SpMV execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A codec operation failed outside the accelerator (compression,
    /// software decode, table serialization).
    Codec(CodecError),
    /// The accelerator stack failed (decoder compilation, lane trap, block
    /// integrity) — carries block/lane context when the failure has one.
    Udp(UdpError),
    /// A block failed decoding, exhausted its retries, and no raw fallback
    /// store was available to re-fetch it from.
    Unrecoverable {
        /// Stream-position of the block that could not be recovered.
        block: Option<usize>,
        /// Lane the final attempt ran on, when known.
        lane: Option<usize>,
        /// The last error observed for the block.
        source: UdpError,
    },
    /// Decoded streams do not reassemble into a valid matrix (wrong length,
    /// misaligned words, invalid CSR structure).
    Reassembly(String),
    /// The job's [`JobBudget`](crate::resilience::JobBudget) ran out before
    /// the work completed (deadline, cycle cap, or retry cap).
    DeadlineExceeded {
        /// What ran out, in human terms ("wall deadline", "cycle budget",
        /// "retry budget").
        budget: String,
        /// Blocks that had fully decoded when the budget expired.
        completed_blocks: usize,
        /// Total blocks the job was asked to decode.
        total_blocks: usize,
    },
    /// A worker thread in the overlap executor panicked; the panic was
    /// contained at the scope boundary and converted into this error
    /// instead of hanging the bounded tile channel.
    WorkerPanic {
        /// Which worker and what it reported.
        context: String,
    },
}

impl ExecError {
    /// The wrapped codec error, if any (searches through the UDP layer).
    pub fn codec_error(&self) -> Option<&CodecError> {
        match self {
            ExecError::Codec(e) => Some(e),
            ExecError::Udp(e) | ExecError::Unrecoverable { source: e, .. } => e.codec_error(),
            ExecError::Reassembly(_)
            | ExecError::DeadlineExceeded { .. }
            | ExecError::WorkerPanic { .. } => None,
        }
    }

    /// The block index attached to this error, if any.
    pub fn block(&self) -> Option<usize> {
        match self {
            ExecError::Udp(e) => e.block(),
            ExecError::Unrecoverable { block, .. } => *block,
            _ => None,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Codec(e) => write!(f, "codec error: {e}"),
            ExecError::Udp(e) => write!(f, "accelerator error: {e}"),
            ExecError::Unrecoverable { block, lane, source } => {
                write!(f, "unrecoverable")?;
                if let Some(b) = block {
                    write!(f, " block {b}")?;
                }
                if let Some(l) = lane {
                    write!(f, " (lane {l})")?;
                }
                write!(f, ": retries exhausted and no raw fallback store: {source}")
            }
            ExecError::Reassembly(msg) => write!(f, "reassembly error: {msg}"),
            ExecError::DeadlineExceeded { budget, completed_blocks, total_blocks } => {
                write!(f, "job {budget} exhausted after {completed_blocks}/{total_blocks} blocks")
            }
            ExecError::WorkerPanic { context } => {
                write!(f, "overlap worker panicked: {context}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Codec(e) => Some(e),
            ExecError::Udp(e) | ExecError::Unrecoverable { source: e, .. } => Some(e),
            ExecError::Reassembly(_)
            | ExecError::DeadlineExceeded { .. }
            | ExecError::WorkerPanic { .. } => None,
        }
    }
}

impl From<CodecError> for ExecError {
    fn from(e: CodecError) -> Self {
        ExecError::Codec(e)
    }
}

impl From<UdpError> for ExecError {
    fn from(e: UdpError) -> Self {
        ExecError::Udp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_error_round_trips_through_both_layers() {
        let inner = CodecError::ChecksumMismatch { stored: 0xDEAD, computed: 0xBEEF };
        let udp = UdpError::from(inner.clone()).with_block(9);
        let exec = ExecError::from(udp);
        assert_eq!(exec.codec_error(), Some(&inner));
        assert_eq!(exec.block(), Some(9));
        let msg = exec.to_string();
        assert!(msg.contains("block 9"), "{msg}");
        assert!(msg.contains("checksum mismatch"), "{msg}");
    }

    #[test]
    fn unrecoverable_names_block_and_lane() {
        let source = UdpError::from(CodecError::ChecksumMismatch { stored: 1, computed: 2 });
        let e = ExecError::Unrecoverable { block: Some(3), lane: Some(5), source };
        let msg = e.to_string();
        assert!(msg.contains("block 3"), "{msg}");
        assert!(msg.contains("lane 5"), "{msg}");
        assert_eq!(e.block(), Some(3));
        assert!(e.codec_error().is_some());
    }
}
