//! Seeded chaos campaigns over the resilient execution stack.
//!
//! A campaign runs hundreds of independent trials. Each trial derives a
//! *plan* from the campaign seed — which executor arm to drive, which fault
//! to inject, where to inject it, and what [`JobBudget`] governs the job —
//! runs the job under a watchdog, and classifies the result into a
//! [`TrialOutcome`]. The campaign then asserts the resilience contract in
//! aggregate:
//!
//! * **no hangs** — every trial finishes inside its hard watchdog timeout;
//! * **no escaped panics** — injected panics are contained at thread
//!   boundaries and surface as typed errors;
//! * **typed terminal state** — every trial ends Completed / Degraded /
//!   DeadlineExceeded / Rejected, never anything else;
//! * **block accounting** — whenever a run produces [`ExecStats`],
//!   `blocks_ok + blocks_recovered + blocks_fell_back == accel.jobs`;
//! * **trace validity** — every [`TraceDocument`] produced under fault
//!   passes [`TraceDocument::validate`];
//! * **bit-exactness** — a trial that reports Completed or Degraded
//!   produced exactly the reference result.
//!
//! Faults are injected at four points: **lane dispatch** (trap / stall /
//! panic hooks in the accelerator batch loop), the **compressed stream**
//! (every [`FaultKind`] the transport injector knows), **overlap stage
//! boundaries** (a multiply worker panics mid-pipeline), and **pool
//! recycling** (lanes are driven to quarantine before the run, so checkout
//! paths cross the probation machinery).
//!
//! All randomness is [`SplitMix64`]: a campaign is fully determined by
//! `(seed, trials)`, and a failing trial reproduces from its logged seed.

use crate::arch::SystemConfig;
use crate::error::ExecError;
use crate::exec::{ExecStats, RawFallbackStore, RecodedSpmv};
use crate::json::Json;
use crate::overlap::{OverlapConfig, OverlapExecutor};
use crate::resilience::{CircuitBreaker, JobBudget, JobState};
#[cfg(doc)]
use crate::telemetry::TraceDocument;
use recode_codec::faults::{FaultInjector, FaultKind, SplitMix64};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_sparse::prelude::{generate, GenSpec, ValueModel};
use recode_sparse::spmv::SpmvKernel;
use recode_sparse::Csr;
use recode_udp::accel::FaultHook;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Trials to run. The acceptance bar for a full campaign is ≥ 500.
    pub trials: usize,
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Hard per-trial wall-clock limit. A trial that misses it is recorded
    /// as [`TrialOutcome::Hung`] — a contract violation, never retried.
    pub trial_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { trials: 500, seed: 0xC0FFEE, trial_timeout: Duration::from_secs(30) }
    }
}

/// Typed terminal classification of one trial. The first four mirror
/// [`JobState`]; the last two are contract violations the watchdog detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Happy path, bit-exact.
    Completed,
    /// Off the happy path (retry / fallback / software bypass), bit-exact.
    Degraded,
    /// The job budget ran out; surfaced as a typed error.
    DeadlineExceeded,
    /// A typed, non-budget failure (unrecoverable stream, contained panic).
    Rejected,
    /// VIOLATION: the trial missed its watchdog deadline.
    Hung,
    /// VIOLATION: a panic escaped the execution stack into the harness.
    PanicEscaped,
}

impl TrialOutcome {
    fn label(self) -> &'static str {
        match self {
            TrialOutcome::Completed => "completed",
            TrialOutcome::Degraded => "degraded",
            TrialOutcome::DeadlineExceeded => "deadline-exceeded",
            TrialOutcome::Rejected => "rejected",
            TrialOutcome::Hung => "hung",
            TrialOutcome::PanicEscaped => "panic-escaped",
        }
    }
}

impl std::fmt::Display for TrialOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which executor a trial drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    /// `RecodedSpmv::run_job` — budget + campaign-wide circuit breaker.
    BatchJob,
    /// `OverlapExecutor::spmv_budgeted` — pipelined decode/multiply.
    Overlap,
    /// `RecodedSpmv::spmv_traced` — full telemetry, document validated.
    Traced,
}

/// What kind of lane-dispatch fault a plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneFault {
    Trap,
    Stall,
    Panic,
}

/// Where a trial injects its fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Injection {
    /// Clean baseline run.
    None,
    /// `FaultHook` on the accelerator job loop.
    LaneDispatch(LaneFault),
    /// A [`FaultKind`] applied to one compressed stream.
    StreamCorrupt(FaultKind, bool /* value stream */),
    /// An injected panic in an overlap multiply worker (overlap arm only).
    StageBoundary,
    /// Lanes driven to quarantine before the run, so the trial's checkouts
    /// cross the pool's probation/readmission machinery.
    PoolRecycle,
}

impl Injection {
    fn point_label(self) -> &'static str {
        match self {
            Injection::None => "none",
            Injection::LaneDispatch(_) => "lane-dispatch",
            Injection::StreamCorrupt(..) => "stream-corrupt",
            Injection::StageBoundary => "stage-boundary",
            Injection::PoolRecycle => "pool-recycle",
        }
    }

    fn fault_label(self) -> String {
        match self {
            Injection::None => "clean".into(),
            Injection::LaneDispatch(LaneFault::Trap) => "lane-trap".into(),
            Injection::LaneDispatch(LaneFault::Stall) => "lane-stall".into(),
            Injection::LaneDispatch(LaneFault::Panic) => "lane-panic".into(),
            Injection::StreamCorrupt(kind, _) => kind.to_string(),
            Injection::StageBoundary => "worker-panic".into(),
            Injection::PoolRecycle => "pool-quarantine".into(),
        }
    }
}

/// Everything one trial needs, derived deterministically from the seed.
#[derive(Debug, Clone)]
struct TrialPlan {
    seed: u64,
    arm: Arm,
    injection: Injection,
    budget: JobBudget,
}

/// Shared, immutable campaign fixtures.
struct Ctx {
    a: Csr,
    cm: CompressedMatrix,
    store: RawFallbackStore,
    sys: SystemConfig,
    x: Vec<f64>,
    y_ref: Vec<f64>,
    breaker: Mutex<CircuitBreaker>,
}

/// What one trial reports back to the campaign.
struct TrialResult {
    outcome: TrialOutcome,
    /// Accounting identity held (vacuously true when no stats were made).
    accounted: bool,
    /// TraceDocument validated (vacuously true off the traced arm).
    trace_ok: bool,
    /// Result was bit-exact when one was produced.
    bit_exact: bool,
    /// The trial saw a panic that the stack contained into a typed error.
    panic_contained: bool,
}

/// Aggregate result of a campaign, deterministic in `(seed, trials)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Trials run.
    pub trials: usize,
    /// The master seed, echoed for reproduction.
    pub seed: u64,
    /// Trials per terminal outcome, by label.
    pub by_outcome: BTreeMap<String, usize>,
    /// Trials per injected fault, by label.
    pub by_fault: BTreeMap<String, usize>,
    /// Trials per injection point, by label.
    pub by_injection: BTreeMap<String, usize>,
    /// Trials that missed the watchdog deadline (must be 0).
    pub hung: usize,
    /// Panics that escaped into the harness (must be 0).
    pub panics_escaped: usize,
    /// Panics injected and contained into typed errors.
    pub panics_contained: usize,
    /// Trials whose `ExecStats` violated block accounting (must be 0).
    pub accounting_failures: usize,
    /// Trials whose `TraceDocument` failed validation (must be 0).
    pub trace_failures: usize,
    /// Trials that produced a result that was not bit-exact (must be 0).
    pub bitexact_failures: usize,
}

impl CampaignSummary {
    /// The resilience contract in one predicate: no hangs, no escaped
    /// panics, perfect accounting, valid traces, bit-exact results.
    pub fn healthy(&self) -> bool {
        self.hung == 0
            && self.panics_escaped == 0
            && self.accounting_failures == 0
            && self.trace_failures == 0
            && self.bitexact_failures == 0
    }

    /// Count for one outcome label (0 when absent).
    pub fn outcome(&self, label: &str) -> usize {
        self.by_outcome.get(label).copied().unwrap_or(0)
    }

    /// Human-readable campaign report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "chaos campaign: {} trials, seed {:#x} — {}",
            self.trials,
            self.seed,
            if self.healthy() { "HEALTHY" } else { "CONTRACT VIOLATED" }
        );
        for (title, counts) in [
            ("outcomes:", &self.by_outcome),
            ("faults:", &self.by_fault),
            ("injection points:", &self.by_injection),
        ] {
            s.push_str(title);
            s.push('\n');
            for (k, v) in counts {
                let _ = writeln!(s, "  {k:<18} {v}");
            }
        }
        let _ = writeln!(
            s,
            "violations: hung {}, escaped panics {}, accounting {}, trace {}, bit-exact {} \
             (contained panics: {})",
            self.hung,
            self.panics_escaped,
            self.accounting_failures,
            self.trace_failures,
            self.bitexact_failures,
            self.panics_contained,
        );
        s
    }

    /// The summary as a [`Json`] tree (the shared dependency-free writer —
    /// the CI artifact upload and offline builds both rely on it).
    pub fn to_json_value(&self) -> Json {
        fn map(m: &BTreeMap<String, usize>) -> Json {
            Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::U64(*v as u64))).collect())
        }
        Json::obj()
            .set("trials", Json::U64(self.trials as u64))
            .set("seed", Json::U64(self.seed))
            .set("healthy", Json::Bool(self.healthy()))
            .set("by_outcome", map(&self.by_outcome))
            .set("by_fault", map(&self.by_fault))
            .set("by_injection", map(&self.by_injection))
            .set("hung", Json::U64(self.hung as u64))
            .set("panics_escaped", Json::U64(self.panics_escaped as u64))
            .set("panics_contained", Json::U64(self.panics_contained as u64))
            .set("accounting_failures", Json::U64(self.accounting_failures as u64))
            .set("trace_failures", Json::U64(self.trace_failures as u64))
            .set("bitexact_failures", Json::U64(self.bitexact_failures as u64))
    }

    /// Compact JSON serialization of [`CampaignSummary::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Rebuilds a summary from [`CampaignSummary::to_json`] output.
    ///
    /// # Errors
    /// A description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = crate::json::parse(text)?;
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let map = |key: &str| -> Result<BTreeMap<String, usize>, String> {
            doc.get(key)
                .and_then(Json::entries)
                .ok_or_else(|| format!("missing or non-object field `{key}`"))?
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|v| (k.clone(), v as usize))
                        .ok_or_else(|| format!("non-integer count `{key}.{k}`"))
                })
                .collect()
        };
        Ok(CampaignSummary {
            trials: num("trials")?,
            seed: doc.get("seed").and_then(Json::as_u64).ok_or("missing field `seed`")?,
            by_outcome: map("by_outcome")?,
            by_fault: map("by_fault")?,
            by_injection: map("by_injection")?,
            hung: num("hung")?,
            panics_escaped: num("panics_escaped")?,
            panics_contained: num("panics_contained")?,
            accounting_failures: num("accounting_failures")?,
            trace_failures: num("trace_failures")?,
            bitexact_failures: num("bitexact_failures")?,
        })
    }
}

/// The campaign's fixed workload: small enough that a trial is a few
/// milliseconds, large enough for double-digit block counts on both streams.
fn campaign_matrix() -> Csr {
    generate(
        &GenSpec::Stencil2D {
            nx: 24,
            ny: 24,
            points: 5,
            values: ValueModel::QuantizedGaussian { levels: 16 },
        },
        11,
    )
}

/// Derives trial `k`'s plan from its dedicated seed.
fn plan_trial(seed: u64) -> TrialPlan {
    let mut rng = SplitMix64::new(seed);
    let arm = [Arm::BatchJob, Arm::Overlap, Arm::Traced][rng.below(3)];
    let injection = match rng.below(10) {
        0 => Injection::None,
        1 => Injection::LaneDispatch(LaneFault::Trap),
        2 => Injection::LaneDispatch(LaneFault::Stall),
        3 => Injection::LaneDispatch(LaneFault::Panic),
        4..=7 => {
            let kind = FaultKind::ALL[rng.below(FaultKind::ALL.len())];
            Injection::StreamCorrupt(kind, rng.below(2) == 1)
        }
        8 => {
            if arm == Arm::Overlap {
                Injection::StageBoundary
            } else {
                Injection::LaneDispatch(LaneFault::Panic)
            }
        }
        _ => Injection::PoolRecycle,
    };
    // The traced arm runs unbudgeted (spmv_traced has no budget seam); the
    // other arms draw one of four budgets, two of which bite under faults.
    let budget = if arm == Arm::Traced {
        JobBudget::unbounded()
    } else {
        match rng.below(4) {
            0 => JobBudget::unbounded(),
            1 => JobBudget { max_total_retries: Some(1), ..JobBudget::default() },
            2 => JobBudget {
                max_retry_cycles: Some(1),
                backoff_cycles_per_retry: 64,
                ..JobBudget::default()
            },
            _ => JobBudget::with_deadline(Duration::ZERO),
        }
    };
    TrialPlan { seed, arm, injection, budget }
}

/// Drives a few pool lanes to quarantine so the trial's own checkouts cross
/// the probation/readmission machinery.
fn poison_pool() {
    let pool = recode_udp::pool::global();
    let threshold = pool.config().quarantine_threshold.max(1);
    for _ in 0..3 {
        let mut lane = pool.checkout();
        for _ in 0..threshold {
            lane.note_trap();
        }
    }
}

/// Accounting identity over one run's stats.
fn accounted(stats: &ExecStats) -> bool {
    stats.blocks_ok + stats.blocks_recovered + stats.blocks_fell_back == stats.accel.jobs
}

/// Injected panics are *supposed* to fire and be contained; keep their
/// default-hook backtraces out of the campaign output. Installed once,
/// process-wide; every other panic still reports through the prior hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.contains("injected panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Runs one trial body (inside the watchdog thread).
fn run_trial(ctx: &Ctx, plan: &TrialPlan) -> TrialResult {
    recode_udp::pool::global().reset();

    let mut r = RecodedSpmv::from_compressed_with_store(ctx.cm.clone(), Some(ctx.store.clone()))
        .expect("campaign matrix decoders must build");

    let mut hook = FaultHook::new();
    crate::recorder::record(
        crate::recorder::EventKind::ChaosInjection,
        crate::recorder::Track::MAIN,
        plan.injection.point_label(),
        plan.seed & 0xffff_ffff,
        0,
    );
    match plan.injection {
        Injection::None => {}
        Injection::LaneDispatch(LaneFault::Trap) => hook = hook.trap(0).trap(1),
        Injection::LaneDispatch(LaneFault::Stall) => hook = hook.stall(0, 50_000),
        Injection::LaneDispatch(LaneFault::Panic) => hook = hook.panic_job(0),
        Injection::StreamCorrupt(kind, value_stream) => {
            let mut injector = FaultInjector::new(plan.seed);
            let stream = if value_stream {
                &mut r.compressed_mut().value_stream
            } else {
                &mut r.compressed_mut().index_stream
            };
            let _ = injector.inject(stream, kind);
        }
        Injection::StageBoundary => hook = hook.panic_tile(0),
        Injection::PoolRecycle => poison_pool(),
    }
    let hook = if hook.is_empty() { None } else { Some(&hook) };

    let mut result = TrialResult {
        outcome: TrialOutcome::Rejected,
        accounted: true,
        trace_ok: true,
        bit_exact: true,
        panic_contained: false,
    };

    match plan.arm {
        Arm::BatchJob => {
            let mut breaker = ctx.breaker.lock().unwrap_or_else(PoisonError::into_inner);
            let report = r.run_job(&ctx.sys, hook, &plan.budget, Some(&mut breaker), None);
            result.outcome = match report.state {
                JobState::Completed => TrialOutcome::Completed,
                JobState::Degraded => TrialOutcome::Degraded,
                JobState::DeadlineExceeded => TrialOutcome::DeadlineExceeded,
                JobState::Rejected => TrialOutcome::Rejected,
            };
            if let Some(stats) = &report.stats {
                // The software bypass never touches the accelerator, so its
                // all-zero accounting is vacuously correct.
                if !stats.software_decode {
                    result.accounted = accounted(stats);
                }
            }
            if let Some(m) = &report.matrix {
                result.bit_exact = *m == ctx.a;
            }
        }
        Arm::Overlap => {
            let ex = OverlapExecutor::new(
                &r,
                OverlapConfig { overlap: true, cache_blocks: 0, workers: 2 },
            );
            match ex.spmv_budgeted(&ctx.sys, &ctx.x, hook, &plan.budget) {
                Ok((y, stats)) => {
                    result.outcome = if stats.degraded {
                        TrialOutcome::Degraded
                    } else {
                        TrialOutcome::Completed
                    };
                    result.accounted = accounted(&stats);
                    result.bit_exact = y == ctx.y_ref;
                }
                Err(ExecError::DeadlineExceeded { .. }) => {
                    result.outcome = TrialOutcome::DeadlineExceeded;
                }
                Err(_) => result.outcome = TrialOutcome::Rejected,
            }
        }
        Arm::Traced => match r.spmv_traced(&ctx.sys, SpmvKernel::Serial, &ctx.x, hook, "chaos") {
            Ok((y, stats, doc)) => {
                result.outcome =
                    if stats.degraded { TrialOutcome::Degraded } else { TrialOutcome::Completed };
                result.accounted = accounted(&stats);
                result.trace_ok = doc.validate().is_empty();
                result.bit_exact = y == ctx.y_ref;
            }
            Err(ExecError::DeadlineExceeded { .. }) => {
                result.outcome = TrialOutcome::DeadlineExceeded;
            }
            Err(_) => result.outcome = TrialOutcome::Rejected,
        },
    }
    // A panic-injecting trial that reached this point (instead of escaping
    // to the watchdog's catch_unwind) was contained by the stack.
    result.panic_contained = matches!(
        plan.injection,
        Injection::LaneDispatch(LaneFault::Panic) | Injection::StageBoundary
    );
    result
}

/// Runs a full campaign. Deterministic in `config.{seed, trials}` — trial
/// outcomes never depend on thread scheduling or pool state, only on the
/// per-trial seed.
pub fn run_campaign(config: &ChaosConfig) -> CampaignSummary {
    silence_injected_panics();
    let a = campaign_matrix();
    let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh())
        .expect("campaign matrix must compress");
    let store = RawFallbackStore::from_csr(&a);
    let sys = SystemConfig::ddr4();
    let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 29) % 13) as f64 - 6.0).collect();
    let y_ref = recode_sparse::spmv::spmv(&a, &x);
    let ctx = Arc::new(Ctx {
        a,
        cm,
        store,
        sys,
        x,
        y_ref,
        breaker: Mutex::new(CircuitBreaker::new(crate::resilience::BreakerConfig::default())),
    });

    let mut master = SplitMix64::new(config.seed);
    let mut summary = CampaignSummary {
        trials: config.trials,
        seed: config.seed,
        by_outcome: BTreeMap::new(),
        by_fault: BTreeMap::new(),
        by_injection: BTreeMap::new(),
        hung: 0,
        panics_escaped: 0,
        panics_contained: 0,
        accounting_failures: 0,
        trace_failures: 0,
        bitexact_failures: 0,
    };

    for _ in 0..config.trials {
        let plan = plan_trial(master.next_u64());
        let (tx, rx) = mpsc::channel();
        let thread_ctx = Arc::clone(&ctx);
        let thread_plan = plan.clone();
        // One watchdogged thread per trial: a hung trial is recorded and
        // left behind (its thread is leaked, never joined) so the campaign
        // itself cannot hang.
        std::thread::spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(|| run_trial(&thread_ctx, &thread_plan)));
            // The campaign observes completion through the channel, never
            // by joining, so ring any recorder events before signalling.
            crate::recorder::flush_thread();
            let _ = tx.send(r);
        });
        let result = match rx.recv_timeout(config.trial_timeout) {
            Ok(Ok(result)) => result,
            Ok(Err(_panic)) => TrialResult {
                outcome: TrialOutcome::PanicEscaped,
                accounted: true,
                trace_ok: true,
                bit_exact: true,
                panic_contained: false,
            },
            Err(_) => TrialResult {
                outcome: TrialOutcome::Hung,
                accounted: true,
                trace_ok: true,
                bit_exact: true,
                panic_contained: false,
            },
        };

        *summary.by_outcome.entry(result.outcome.label().to_string()).or_insert(0) += 1;
        *summary.by_fault.entry(plan.injection.fault_label()).or_insert(0) += 1;
        *summary.by_injection.entry(plan.injection.point_label().to_string()).or_insert(0) += 1;
        match result.outcome {
            TrialOutcome::Hung => summary.hung += 1,
            TrialOutcome::PanicEscaped => summary.panics_escaped += 1,
            _ => {}
        }
        if result.panic_contained {
            summary.panics_contained += 1;
        }
        if !result.accounted {
            summary.accounting_failures += 1;
        }
        if !result.trace_ok {
            summary.trace_failures += 1;
        }
        if !result.bit_exact {
            summary.bitexact_failures += 1;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_is_healthy_and_covers_every_point() {
        let config =
            ChaosConfig { trials: 60, seed: 0xDEAD_BEEF, trial_timeout: Duration::from_secs(30) };
        let summary = run_campaign(&config);
        assert!(summary.healthy(), "{}", summary.render());
        assert_eq!(summary.by_outcome.values().sum::<usize>(), 60);
        for point in ["lane-dispatch", "stream-corrupt", "pool-recycle"] {
            assert!(
                summary.by_injection.contains_key(point),
                "60 trials never hit {point}:\n{}",
                summary.render()
            );
        }
    }

    #[test]
    fn summary_json_is_well_formed_without_serde() {
        let config = ChaosConfig { trials: 4, seed: 1, trial_timeout: Duration::from_secs(30) };
        let s = run_campaign(&config);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"trials\":4"));
        assert!(json.contains("\"healthy\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn summary_round_trips_through_the_shared_json_writer() {
        let config =
            ChaosConfig { trials: 6, seed: 0xA11CE, trial_timeout: Duration::from_secs(30) };
        let first = run_campaign(&config);
        let back = CampaignSummary::from_json(&first.to_json()).expect("own JSON parses back");
        assert_eq!(back, first, "summary must survive the JSON round trip");
        // And same-seed equality still holds across serialization.
        let second = run_campaign(&config);
        assert_eq!(
            CampaignSummary::from_json(&second.to_json()).expect("parses"),
            back,
            "same seed, same summary, same JSON"
        );
        assert!(CampaignSummary::from_json("{\"trials\":1}").is_err(), "missing fields rejected");
    }
}
