//! The paper's recoding programs, as real UDP software.
//!
//! §V-A: *"the decompression process contains these three transformations,
//! run in the reverse order — huffman decode, snappy decode, inverse delta —
//! that run as a series of steps in a single lane of the UDP."*
//!
//! * [`delta`] — inverse zigzag delta, written in UDP assembly;
//! * [`snappy`] — Snappy decode built around a 256-way tag dispatch (the
//!   paper's flagship multi-way-dispatch example: the operation is *in* the
//!   tag byte);
//! * [`huffman`] — canonical Huffman decode *compiled per matrix* from the
//!   trained table into a two-level peek-dispatch structure, then packed by
//!   EffCLiP. This is the programmability story: new tables mean new
//!   programs, not new hardware.
//!
//! [`DshDecoder`] chains the stages on one lane per block and is validated
//! bit-for-bit against `recode-codec`'s software decoders.

pub mod delta;
pub mod huffman;
pub mod snappy;

use crate::accel::{JobOutcome, StageCycles};
use crate::error::UdpError;
use crate::lane::{Lane, OpClassCycles, RunConfig};
use crate::machine::Image;
use recode_codec::block::CompressedBlock;
use recode_codec::pipeline::PipelineConfig;

/// The per-stage images needed to decode one stream's blocks, mirroring a
/// [`PipelineConfig`].
#[derive(Debug, Clone)]
pub struct DshDecoder {
    /// Stage config this decoder implements.
    pub config: PipelineConfig,
    /// Huffman image (present iff `config.huffman`); compiled per matrix.
    pub huffman: Option<Image>,
    /// Snappy image (present iff `config.snappy`); table-independent.
    pub snappy: Option<Image>,
    /// Inverse-delta image (present iff `config.delta`); table-independent.
    pub delta: Option<Image>,
}

impl DshDecoder {
    /// Builds the decoder set for `config`, compiling the Huffman stage
    /// from the given code lengths (required iff the config enables it).
    ///
    /// # Errors
    /// Program-construction failures (invalid table lengths).
    pub fn new(config: PipelineConfig, huffman_lengths: Option<&[u8]>) -> Result<Self, UdpError> {
        let huffman = if config.huffman {
            let lengths = huffman_lengths.ok_or_else(|| {
                UdpError::Table("config enables huffman but no table provided".into())
            })?;
            Some(huffman::compile(lengths)?)
        } else {
            None
        };
        let snappy = if config.snappy { Some(snappy::build()?) } else { None };
        let delta = if config.delta { Some(delta::build()?) } else { None };
        let decoder = DshDecoder { config, huffman, snappy, delta };
        // Admission gate: a stage image the static verifier rejects never
        // reaches a lane (compiled Huffman programs are table-dependent, so
        // this is a real check, not a formality).
        for img in [&decoder.huffman, &decoder.snappy, &decoder.delta].into_iter().flatten() {
            img.verify_report.gate()?;
        }
        Ok(decoder)
    }

    /// Decodes one compressed block on `lane`, running the enabled stages
    /// in reverse pipeline order. Returns the decoded bytes and the *total*
    /// lane cycles across stages.
    ///
    /// The block's CRC32c framing checksum is verified before any lane
    /// cycles are spent — a corrupt block surfaces as
    /// [`UdpError::Codec`] with the block's stream position attached, not
    /// as a wrong decode. Lane traps surface as [`UdpError::Trap`] with
    /// the same context.
    ///
    /// # Errors
    /// Checksum mismatches and lane traps (corrupt blocks never panic).
    pub fn decode_block(
        &self,
        lane: &mut Lane,
        block: &CompressedBlock,
    ) -> Result<JobOutcome, UdpError> {
        let seq = block.seq as usize;
        block.verify_checksum().map_err(|e| UdpError::from(e).with_block(seq))?;
        // The stage chain ping-pongs through the lane's two spare buffers so
        // a warm lane runs the whole chain with a single allocation (the
        // owned output `Vec`). On a trap the buffers' capacity is dropped
        // with them — acceptable, traps are the cold path.
        let mut cur = std::mem::take(&mut lane.io_a);
        let mut nxt = std::mem::take(&mut lane.io_b);
        let cfg = RunConfig::default();
        let mut cycles = 0u64;
        let mut opclass = OpClassCycles::default();
        let mut stage_cycles = StageCycles::default();
        // Any stage trap is charged to the lane's health record (the retry
        // ladder re-runs the block on a *different* lane precisely because a
        // trap may be lane-attributable); a clean chain clears the streak.
        // CRC failures above are the data's fault and stay health-neutral.
        // Stage 1: Huffman (bit stream in, bytes out).
        let mut bits: usize;
        if let Some(img) = &self.huffman {
            let r = match lane.run_into(img, &block.payload, block.bit_len, cfg, &mut cur) {
                Ok(r) => r,
                Err(e) => {
                    lane.note_trap();
                    return Err(UdpError::from(e).with_block(seq));
                }
            };
            cycles += r.cycles;
            stage_cycles.huffman = r.cycles;
            opclass.merge(&r.opclass);
            bits = cur.len() * 8;
        } else {
            cur.clear();
            cur.extend_from_slice(&block.payload);
            bits = block.bit_len;
        }
        // Stage 2: Snappy.
        if let Some(img) = &self.snappy {
            let r = match lane.run_into(img, &cur, bits, cfg, &mut nxt) {
                Ok(r) => r,
                Err(e) => {
                    lane.note_trap();
                    return Err(UdpError::from(e).with_block(seq));
                }
            };
            cycles += r.cycles;
            stage_cycles.snappy = r.cycles;
            opclass.merge(&r.opclass);
            std::mem::swap(&mut cur, &mut nxt);
            bits = cur.len() * 8;
        }
        // Stage 3: inverse delta.
        if let Some(img) = &self.delta {
            let r = match lane.run_into(img, &cur, bits, cfg, &mut nxt) {
                Ok(r) => r,
                Err(e) => {
                    lane.note_trap();
                    return Err(UdpError::from(e).with_block(seq));
                }
            };
            cycles += r.cycles;
            stage_cycles.delta = r.cycles;
            opclass.merge(&r.opclass);
            std::mem::swap(&mut cur, &mut nxt);
        }
        let _ = bits;
        let output = cur.clone();
        lane.io_a = cur;
        lane.io_b = nxt;
        lane.note_success();
        Ok(JobOutcome { cycles, opclass, stage_cycles, output })
    }

    /// Total code-memory bytes across the stage images (for reports).
    pub fn code_bytes(&self) -> usize {
        [&self.huffman, &self.snappy, &self.delta]
            .into_iter()
            .flatten()
            .map(Image::code_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recode_codec::pipeline::Pipeline;

    /// End-to-end: software-encode a stream, UDP-decode every block, compare.
    fn round_trip_via_udp(config: PipelineConfig, data: &[u8]) {
        let pipe = Pipeline::train(config, data).unwrap();
        let stream = pipe.encode_stream(data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        let mut lane = Lane::new();
        let mut out = Vec::new();
        let mut total_cycles = 0u64;
        for block in &stream.blocks {
            let o = decoder.decode_block(&mut lane, block).unwrap();
            total_cycles += o.cycles;
            out.extend_from_slice(&o.output);
        }
        assert_eq!(out, data, "UDP decode must equal the encoder input");
        assert!(total_cycles > 0 || data.is_empty());
    }

    fn banded_index_stream(n: usize) -> Vec<u8> {
        // Tridiagonal-ish column indices as LE u32 words.
        let mut out = Vec::with_capacity(n * 4);
        for i in 0..n {
            let base = (i / 3) as u32;
            let col = base + (i % 3) as u32;
            out.extend_from_slice(&col.to_le_bytes());
        }
        out
    }

    #[test]
    fn udp_decodes_full_dsh_pipeline() {
        round_trip_via_udp(PipelineConfig::dsh_udp(), &banded_index_stream(6000));
    }

    #[test]
    fn udp_decodes_snappy_huffman_value_stream() {
        // Repeated doubles, like FEM values.
        let vals = [1.5f64, -0.25, 1.5, 3.0];
        let data: Vec<u8> = (0..3000).flat_map(|i| vals[i % 4].to_le_bytes()).collect();
        round_trip_via_udp(PipelineConfig::sh_udp(), &data);
    }

    #[test]
    fn udp_decodes_delta_snappy_without_huffman() {
        round_trip_via_udp(PipelineConfig::ds_udp(), &banded_index_stream(4000));
    }

    #[test]
    fn udp_decodes_snappy_only_cpu_config() {
        let data: Vec<u8> = (0..50_000u32).flat_map(|i| ((i * 31) % 251).to_le_bytes()).collect();
        round_trip_via_udp(PipelineConfig::snappy_cpu(), &data);
    }

    #[test]
    fn empty_stream_is_fine() {
        round_trip_via_udp(PipelineConfig::dsh_udp(), &[]);
    }

    #[test]
    fn corrupt_block_traps_instead_of_panicking() {
        let data = banded_index_stream(4000);
        let config = PipelineConfig::dsh_udp();
        let pipe = Pipeline::train(config, &data).unwrap();
        let mut stream = pipe.encode_stream(&data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        let block = &mut stream.blocks[0];
        for i in 0..block.payload.len().min(32) {
            block.payload[i] ^= 0xA5;
        }
        let mut lane = Lane::new();
        // The framing CRC catches the corruption before any lane cycle runs.
        let err = decoder.decode_block(&mut lane, &stream.blocks[0]).unwrap_err();
        assert!(err.codec_error().is_some(), "expected checksum failure, got {err}");
        assert_eq!(err.block(), Some(0));
    }

    #[test]
    fn corrupt_block_that_is_resealed_traps_in_the_lane() {
        // If an attacker (or fault) rewrites the CRC to match the corrupt
        // payload, integrity checking cannot help — but the lane still
        // traps or produces bounded output instead of panicking.
        let data = banded_index_stream(4000);
        let config = PipelineConfig::dsh_udp();
        let pipe = Pipeline::train(config, &data).unwrap();
        let mut stream = pipe.encode_stream(&data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        let block = &mut stream.blocks[0];
        for i in 0..block.payload.len().min(32) {
            block.payload[i] ^= 0xA5;
        }
        block.reseal();
        let mut lane = Lane::new();
        let _ = decoder.decode_block(&mut lane, &stream.blocks[0]);
    }

    #[test]
    fn stage_and_opclass_attribution_sum_to_job_cycles() {
        let data = banded_index_stream(4000);
        let config = PipelineConfig::dsh_udp();
        let pipe = Pipeline::train(config, &data).unwrap();
        let stream = pipe.encode_stream(&data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        let mut lane = Lane::new();
        let o = decoder.decode_block(&mut lane, &stream.blocks[0]).unwrap();
        assert_eq!(o.stage_cycles.total(), o.cycles);
        assert_eq!(o.opclass.total(), o.cycles);
        // The full DSH config runs all three stages.
        assert!(o.stage_cycles.huffman > 0);
        assert!(o.stage_cycles.snappy > 0);
        assert!(o.stage_cycles.delta > 0);
    }

    #[test]
    fn shipped_programs_verify_clean() {
        // ISSUE 4 acceptance: every shipped prog must carry no Error *or*
        // Warn findings — the verifier holds our own programs to the same
        // bar it holds user programs.
        let data = banded_index_stream(2000);
        let config = PipelineConfig::dsh_udp();
        let pipe = Pipeline::train(config, &data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        for (name, img) in
            [("huffman", &decoder.huffman), ("snappy", &decoder.snappy), ("delta", &decoder.delta)]
        {
            let img = img.as_ref().unwrap();
            assert!(
                img.verify_report.is_clean(),
                "shipped `{name}` program has findings:\n{}",
                img.verify_report
            );
        }
    }

    #[test]
    fn code_bytes_reports_nonzero_footprint() {
        let data = banded_index_stream(1000);
        let config = PipelineConfig::dsh_udp();
        let pipe = Pipeline::train(config, &data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        assert!(decoder.code_bytes() > 1000);
    }
}
