//! Per-matrix compiled Huffman decoders.
//!
//! The paper generates a Huffman tree per matrix; the UDP consumes it as a
//! *program*: this compiler turns canonical code lengths into a two-level
//! multi-way dispatch structure —
//!
//! * a **primary 256-entry `dispatch.peek 8` group**: every 8-bit window
//!   resolves either to an emit handler (codes ≤ 8 bits, which skip their
//!   code length and store the symbol) or to a secondary dispatch (the
//!   window is a prefix of longer codes);
//! * **secondary `dispatch.peek k` groups** (k ≤ 7, since codes are capped
//!   at 15 bits) per long-code prefix.
//!
//! EffCLiP then packs the hundreds of handler blocks densely. Because the
//! codec's tables are Kraft-complete (add-one smoothing covers all 256 byte
//! values), every window in both levels is mapped; there are no reachable
//! holes on valid streams.
//!
//! Register roles: `r2` output cursor · `r3` remaining-bits · `r4` symbol.

use crate::error::UdpError;
use crate::isa::{Action, Block, Cond, Transition, Width};
use crate::machine::{assemble, Image};
use crate::program::ProgramBuilder;
use recode_codec::huffman::HuffmanTable;

/// Default primary dispatch width in bits.
const PRIMARY_BITS: u8 = 8;

/// Compiles the decode image with the default 8-bit primary dispatch.
///
/// # Errors
/// Invalid lengths (Kraft violation, >15 bits) or placement failures.
pub fn compile(lengths: &[u8]) -> Result<Image, UdpError> {
    compile_with_width(lengths, PRIMARY_BITS)
}

/// Compiles with an explicit primary dispatch width (4..=12 bits) — the
/// knob behind the dispatch-width ablation: wider dispatch resolves more
/// codes in one hop but costs exponentially more code-memory slots.
///
/// # Errors
/// Invalid width/lengths or placement failures.
pub fn compile_with_width(lengths: &[u8], primary_bits: u8) -> Result<Image, UdpError> {
    if !(4..=12).contains(&primary_bits) {
        return Err(UdpError::Table(format!(
            "primary dispatch width {primary_bits} outside 4..=12"
        )));
    }
    let table =
        HuffmanTable::from_lengths(lengths.to_vec()).map_err(|e| UdpError::Table(e.to_string()))?;
    let mut pb = ProgramBuilder::new("udp-huffman-decode");

    let done = pb.block(Block {
        actions: vec![Action::Sub { rd: 15, rs: 2, rt: 14 }],
        transition: Transition::Halt,
    });
    let loop_head = pb.reserve();

    // Emit handler: consume `skip` bits, output `sym`, continue.
    let emit = |pb: &mut ProgramBuilder, skip: u8, sym: u8| {
        let mut actions = Vec::with_capacity(4);
        if skip > 0 {
            actions.push(Action::SkipSym { bits: skip });
        }
        actions.extend([
            Action::LoadImm { rd: 4, imm: sym as i16 },
            Action::StoreInc { rs: 4, base: 2, width: Width::B1 },
        ]);
        pb.block(Block { actions, transition: Transition::Jump(loop_head) })
    };

    // Partition symbols by code length.
    let mut primary_entries: Vec<(u32, u32)> = Vec::new();
    // Long codes grouped by their first 8 bits.
    let mut by_prefix: std::collections::BTreeMap<u32, Vec<(u8, u8, u16)>> =
        std::collections::BTreeMap::new();
    for s in 0..256usize {
        let l = table.lengths[s];
        if l == 0 {
            continue;
        }
        let c = table.codes[s] as u32;
        if l <= primary_bits {
            // All 8-bit windows whose top `l` bits equal the code.
            let lo = c << (primary_bits - l);
            let hi = lo + (1 << (primary_bits - l));
            for w in lo..hi {
                let h = emit(&mut pb, l, s as u8);
                primary_entries.push((w, h));
            }
        } else {
            let prefix = c >> (l - primary_bits);
            by_prefix.entry(prefix).or_default().push((s as u8, l, table.codes[s]));
        }
    }

    // Secondary groups.
    for (prefix, syms) in by_prefix {
        let max_ext = syms.iter().map(|&(_, l, _)| l - primary_bits).max().expect("non-empty");
        let mut secondary_entries: Vec<(u32, u32)> = Vec::new();
        for &(sym, l, code) in &syms {
            let ext_len = l - primary_bits;
            let ext = (code as u32) & ((1 << ext_len) - 1);
            let lo = ext << (max_ext - ext_len);
            let hi = lo + (1 << (max_ext - ext_len));
            for v in lo..hi {
                let h = emit(&mut pb, ext_len, sym);
                secondary_entries.push((v, h));
            }
        }
        let sec_group = pb.group(secondary_entries);
        // Primary handler for this prefix: consume the 8 prefix bits, then
        // peek-dispatch the extension.
        let h = pb.block(Block {
            actions: vec![Action::SkipSym { bits: primary_bits }],
            transition: Transition::DispatchPeek { bits: max_ext, group: sec_group },
        });
        primary_entries.push((prefix, h));
    }

    let primary = pb.group(primary_entries);
    let dispatch_blk = pb.block(Block {
        actions: vec![],
        transition: Transition::DispatchPeek { bits: primary_bits, group: primary },
    });
    pb.define(
        loop_head,
        Block {
            actions: vec![Action::InRem { rd: 3 }],
            transition: Transition::Branch {
                cond: Cond::Eq,
                rs: 3,
                rt: 0,
                taken: done,
                fallthrough: dispatch_blk,
            },
        },
    );
    let init = pb.block(Block {
        actions: vec![Action::Mov { rd: 2, rs: 14 }],
        transition: Transition::Jump(loop_head),
    });
    pb.entry(init);

    let program = pb.build()?;
    assemble(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{Lane, RunConfig};
    use recode_codec::huffman::{decode, encode};

    fn smoothed_table(data: &[u8]) -> HuffmanTable {
        let mut hist = [1u64; 256];
        for &b in data {
            hist[b as usize] += 1;
        }
        HuffmanTable::from_histogram(&hist)
    }

    fn round_trip(data: &[u8]) -> u64 {
        let t = smoothed_table(data);
        let (bytes, bits) = encode(data, &t).unwrap();
        let image = compile(&t.lengths).unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &bytes, bits, RunConfig::default()).unwrap();
        assert_eq!(r.output, data, "UDP huffman decode mismatch");
        // Cross-check against the software decoder too.
        assert_eq!(decode(&bytes, bits, &t, data.len()).unwrap(), data);
        r.cycles
    }

    #[test]
    fn decodes_skewed_data() {
        let data: Vec<u8> = (0..4000).map(|i| if i % 11 == 0 { 200 } else { 3 }).collect();
        round_trip(&data);
    }

    #[test]
    fn decodes_uniform_bytes_with_8bit_codes() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 256) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn decodes_data_requiring_long_codes() {
        // Exponentially skewed histogram drives some codes past 8 bits,
        // exercising the secondary dispatch level.
        let mut data = Vec::new();
        for s in 0..40u8 {
            let reps = 1usize << (s.min(16) as usize / 3);
            data.extend(std::iter::repeat_n(s, reps));
        }
        let t = smoothed_table(&data);
        let max_len = t.lengths.iter().copied().max().unwrap();
        assert!(max_len > 8, "test needs long codes, got max {max_len}");
        round_trip(&data);
    }

    #[test]
    fn empty_stream() {
        round_trip(&[]);
    }

    #[test]
    fn single_byte() {
        round_trip(&[0x42]);
    }

    #[test]
    fn cycles_per_symbol_is_small_constant() {
        let data: Vec<u8> = (0..4096).map(|i| ((i * 7) % 40) as u8).collect();
        let cycles = round_trip(&data);
        let per_sym = cycles as f64 / data.len() as f64;
        assert!(
            per_sym < 12.0,
            "multi-way dispatch should decode in ~8 cycles/symbol, got {per_sym:.1}"
        );
    }

    #[test]
    fn alternate_dispatch_widths_decode_identically() {
        let data: Vec<u8> = (0..3000).map(|i| ((i * 13) % 97) as u8).collect();
        let t = smoothed_table(&data);
        let (bytes, bits) = encode(&data, &t).unwrap();
        for width in [4u8, 6, 10, 12] {
            let image = compile_with_width(&t.lengths, width).unwrap();
            let mut lane = Lane::new();
            let r = lane.run(&image, &bytes, bits, RunConfig::default()).unwrap();
            assert_eq!(r.output, data, "width {width}");
        }
        assert!(compile_with_width(&t.lengths, 3).is_err());
        assert!(compile_with_width(&t.lengths, 13).is_err());
    }

    #[test]
    fn wider_dispatch_costs_code_memory() {
        let data: Vec<u8> = (0..3000).map(|i| ((i * 7) % 61) as u8).collect();
        let t = smoothed_table(&data);
        let narrow = compile_with_width(&t.lengths, 6).unwrap();
        let wide = compile_with_width(&t.lengths, 12).unwrap();
        assert!(
            wide.code_bytes() > narrow.code_bytes(),
            "wide {} vs narrow {}",
            wide.code_bytes(),
            narrow.code_bytes()
        );
    }

    #[test]
    fn rejects_invalid_lengths() {
        let mut bad = vec![0u8; 256];
        bad[0] = 16;
        assert!(compile(&bad).is_err());
        let mut overfull = vec![0u8; 256];
        overfull[0] = 1;
        overfull[1] = 1;
        overfull[2] = 1;
        assert!(compile(&overfull).is_err());
    }
}
