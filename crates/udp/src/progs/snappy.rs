//! Snappy decode as a UDP program.
//!
//! This is the paper's flagship multi-way-dispatch workload: the element
//! format is tag-value pairs, "with the corresponding operation to decode
//! the value stored in the tag field" (§III-E). The program reads each tag
//! byte and dispatches through a **256-entry group** — every tag value gets
//! its own handler block with the literal length / copy length / offset
//! split baked in at program-construction time, so there is no branch tree
//! and no prediction, just `base + tag`.
//!
//! Copy loops move 8 bytes per iteration when length and offset allow
//! (overlapping copies fall back to the byte loop, preserving Snappy's
//! run-extension semantics).
//!
//! Register roles: `r1` tag · `r2` output cursor · `r3` remaining-bits ·
//! `r4` length · `r5` offset · `r6` data · `r7` copy-source cursor ·
//! `r9` constant 0x80 · `r12` constant 4 · `r13` constant 8.

use crate::error::UdpError;
use crate::isa::{Action, Block, Cond, Transition, Width};
use crate::machine::{assemble, Image};
use crate::program::ProgramBuilder;

/// Builds the (table-independent) Snappy decode image.
///
/// # Errors
/// Construction/placement failures (a bug, not a data condition).
pub fn build() -> Result<Image, UdpError> {
    let mut pb = ProgramBuilder::new("udp-snappy-decode");

    // done: r15 = out length; halt.
    let done = pb.block(Block {
        actions: vec![Action::Sub { rd: 15, rs: 2, rt: 14 }],
        transition: Transition::Halt,
    });

    // Forward declarations.
    let main = pb.reserve();
    let lit_loop = pb.reserve();
    let lit_tail_head = pb.reserve();
    let bc_loop = pb.reserve();
    let bc_tail_head = pb.reserve();

    // ---- literal copy: r4 bytes from input to output ----
    let lit_wide = pb.block(Block {
        actions: vec![
            Action::InSymLe { rd: 6, bytes: 8 },
            Action::StoreInc { rs: 6, base: 2, width: Width::B8 },
            Action::AddI { rd: 4, rs: 4, imm: -8 },
        ],
        transition: Transition::Jump(lit_loop),
    });
    pb.define(
        lit_loop,
        Block {
            actions: vec![],
            transition: Transition::Branch {
                cond: Cond::Ltu,
                rs: 4,
                rt: 13,
                taken: lit_tail_head,
                fallthrough: lit_wide,
            },
        },
    );
    let lit_tail_body = pb.block(Block {
        actions: vec![
            Action::InSymLe { rd: 6, bytes: 1 },
            Action::StoreInc { rs: 6, base: 2, width: Width::B1 },
            Action::AddI { rd: 4, rs: 4, imm: -1 },
        ],
        transition: Transition::Jump(lit_tail_head),
    });
    pb.define(
        lit_tail_head,
        Block {
            actions: vec![],
            transition: Transition::Branch {
                cond: Cond::Eq,
                rs: 4,
                rt: 0,
                taken: main,
                fallthrough: lit_tail_body,
            },
        },
    );

    // ---- back copy: r4 bytes from distance r5 ----
    // Three tiers: 8-byte chunks (len >= 8, offset >= 8), 4-byte chunks
    // (len >= 4, offset >= 4 — common for delta-coded index streams whose
    // period is one 4-byte word), then the byte loop for short overlaps.
    let bc_four_loop = pb.reserve();
    let bc_init = pb.block(Block {
        actions: vec![Action::Sub { rd: 7, rs: 2, rt: 5 }],
        transition: Transition::Jump(bc_loop),
    });
    let bc_wide = pb.block(Block {
        actions: vec![
            Action::LoadInc { rd: 6, base: 7, width: Width::B8 },
            Action::StoreInc { rs: 6, base: 2, width: Width::B8 },
            Action::AddI { rd: 4, rs: 4, imm: -8 },
        ],
        transition: Transition::Jump(bc_loop),
    });
    // Overlap guard: 8-byte path only when offset >= 8.
    let bc_check_off = pb.block(Block {
        actions: vec![],
        transition: Transition::Branch {
            cond: Cond::Ltu,
            rs: 5,
            rt: 13,
            taken: bc_four_loop,
            fallthrough: bc_wide,
        },
    });
    pb.define(
        bc_loop,
        Block {
            actions: vec![],
            transition: Transition::Branch {
                cond: Cond::Ltu,
                rs: 4,
                rt: 13,
                taken: bc_four_loop,
                fallthrough: bc_check_off,
            },
        },
    );
    // 4-byte tier.
    let bc_wide4 = pb.block(Block {
        actions: vec![
            Action::LoadInc { rd: 6, base: 7, width: Width::B4 },
            Action::StoreInc { rs: 6, base: 2, width: Width::B4 },
            Action::AddI { rd: 4, rs: 4, imm: -4 },
        ],
        transition: Transition::Jump(bc_four_loop),
    });
    let bc_four_checkoff = pb.block(Block {
        actions: vec![],
        transition: Transition::Branch {
            cond: Cond::Ltu,
            rs: 5,
            rt: 12,
            taken: bc_tail_head,
            fallthrough: bc_wide4,
        },
    });
    pb.define(
        bc_four_loop,
        Block {
            actions: vec![],
            transition: Transition::Branch {
                cond: Cond::Ltu,
                rs: 4,
                rt: 12,
                taken: bc_tail_head,
                fallthrough: bc_four_checkoff,
            },
        },
    );
    let bc_tail_body = pb.block(Block {
        actions: vec![
            Action::LoadInc { rd: 6, base: 7, width: Width::B1 },
            Action::StoreInc { rs: 6, base: 2, width: Width::B1 },
            Action::AddI { rd: 4, rs: 4, imm: -1 },
        ],
        transition: Transition::Jump(bc_tail_head),
    });
    pb.define(
        bc_tail_head,
        Block {
            actions: vec![],
            transition: Transition::Branch {
                cond: Cond::Eq,
                rs: 4,
                rt: 0,
                taken: main,
                fallthrough: bc_tail_body,
            },
        },
    );

    // ---- 256 tag handlers ----
    let mut handlers = Vec::with_capacity(256);
    for tag in 0..=255u32 {
        let handler = match tag & 0b11 {
            0 => {
                // Literal.
                let len_code = tag >> 2;
                if len_code < 60 {
                    pb.block(Block {
                        actions: vec![Action::LoadImm { rd: 4, imm: (len_code + 1) as i16 }],
                        transition: Transition::Jump(lit_loop),
                    })
                } else {
                    let nbytes = (len_code - 59) as u8;
                    pb.block(Block {
                        actions: vec![
                            Action::InSymLe { rd: 4, bytes: nbytes },
                            Action::AddI { rd: 4, rs: 4, imm: 1 },
                        ],
                        transition: Transition::Jump(lit_loop),
                    })
                }
            }
            1 => {
                // Copy, 1-byte offset: len 4..11, offset high bits in tag.
                let len = ((tag >> 2) & 0x7) + 4;
                let off_hi = (tag >> 5) << 8;
                pb.block(Block {
                    actions: vec![
                        Action::LoadImm { rd: 4, imm: len as i16 },
                        Action::LoadImm { rd: 5, imm: off_hi as i16 },
                        Action::InSymLe { rd: 6, bytes: 1 },
                        Action::Or { rd: 5, rs: 5, rt: 6 },
                    ],
                    transition: Transition::Jump(bc_init),
                })
            }
            2 => {
                // Copy, 2-byte offset: len 1..64.
                pb.block(Block {
                    actions: vec![
                        Action::LoadImm { rd: 4, imm: ((tag >> 2) + 1) as i16 },
                        Action::InSymLe { rd: 5, bytes: 2 },
                    ],
                    transition: Transition::Jump(bc_init),
                })
            }
            _ => {
                // Copy, 4-byte offset.
                pb.block(Block {
                    actions: vec![
                        Action::LoadImm { rd: 4, imm: ((tag >> 2) + 1) as i16 },
                        Action::InSymLe { rd: 5, bytes: 4 },
                    ],
                    transition: Transition::Jump(bc_init),
                })
            }
        };
        handlers.push((tag, handler));
    }
    let tags = pb.group(handlers);

    // ---- main loop: element per iteration ----
    let gettag = pb.block(Block {
        actions: vec![Action::InSymLe { rd: 1, bytes: 1 }],
        transition: Transition::DispatchReg { rs: 1, group: tags },
    });
    pb.define(
        main,
        Block {
            actions: vec![Action::InRem { rd: 3 }],
            transition: Transition::Branch {
                cond: Cond::Eq,
                rs: 3,
                rt: 0,
                taken: done,
                fallthrough: gettag,
            },
        },
    );

    // ---- varint preamble skip ----
    // Guarded per byte: a truncated preamble (every byte with the
    // continuation bit set) must fall through to main's empty-stream exit,
    // not run the stream unit dry.
    let varint = pb.reserve();
    let to_main = pb.block(Block { actions: vec![], transition: Transition::Jump(main) });
    let varint_body = pb.block(Block {
        actions: vec![Action::InSymLe { rd: 6, bytes: 1 }, Action::And { rd: 7, rs: 6, rt: 9 }],
        transition: Transition::Branch {
            cond: Cond::Ne,
            rs: 7,
            rt: 0,
            taken: varint,
            fallthrough: to_main,
        },
    });
    pb.define(
        varint,
        Block {
            actions: vec![Action::InRem { rd: 3 }],
            transition: Transition::Branch {
                cond: Cond::Eq,
                rs: 3,
                rt: 0,
                taken: to_main,
                fallthrough: varint_body,
            },
        },
    );

    // ---- init ----
    let init = pb.block(Block {
        actions: vec![
            Action::Mov { rd: 2, rs: 14 },
            Action::LoadImm { rd: 13, imm: 8 },
            Action::LoadImm { rd: 12, imm: 4 },
            Action::LoadImm { rd: 9, imm: 128 },
        ],
        transition: Transition::Jump(varint),
    });
    pb.entry(init);

    let program = pb.build()?;
    assemble(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{Lane, RunConfig};
    use recode_codec::snappy;

    fn udp_decode(compressed: &[u8]) -> Vec<u8> {
        let image = build().unwrap();
        let mut lane = Lane::new();
        lane.run(&image, compressed, compressed.len() * 8, RunConfig::default()).unwrap().output
    }

    fn check(data: &[u8]) {
        let c = snappy::compress(data);
        assert_eq!(udp_decode(&c), data, "UDP snappy decode mismatch ({} bytes)", data.len());
    }

    #[test]
    fn literals_only() {
        check(b"");
        check(b"x");
        check(b"The quick brown fox jumps over the lazy dog");
    }

    #[test]
    fn runs_and_overlapping_copies() {
        check(&vec![7u8; 3000]);
        let periodic: Vec<u8> = (0..2000).map(|i| (i % 3) as u8).collect();
        check(&periodic);
        let periodic5: Vec<u8> = (0..2000).map(|i| (i % 5) as u8).collect();
        check(&periodic5);
    }

    #[test]
    fn far_copies_and_long_literals() {
        // > 60-byte literal forces the extended-length handlers.
        let mut data: Vec<u8> =
            (0..1000u32).flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes()).collect();
        let head = data[..200].to_vec();
        data.extend_from_slice(&head);
        check(&data);
    }

    #[test]
    fn delta_like_small_words_match_host_decoder() {
        let mut data = Vec::new();
        for i in 0..2048u32 {
            data.extend_from_slice(&(if i % 7 == 0 { 9u32 } else { 2 }).to_le_bytes());
        }
        let c = snappy::compress(&data);
        assert_eq!(udp_decode(&c), snappy::decompress(&c).unwrap());
    }

    #[test]
    fn full_8kb_block_throughput_is_plausible() {
        // The paper's single-lane geomean is 21.7 us per 8 KB block for the
        // whole DSH pipeline; the snappy stage alone must be well under that.
        let data: Vec<u8> = (0..2048u32).flat_map(|i| ((i / 5) % 300).to_le_bytes()).collect();
        assert_eq!(data.len(), 8192);
        let c = snappy::compress(&data);
        let image = build().unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &c, c.len() * 8, RunConfig::default()).unwrap();
        assert_eq!(r.output, data);
        let us = r.cycles as f64 / 1.6e9 * 1e6;
        assert!(us < 25.0, "snappy stage took {us:.1} us for one 8 KB block");
    }
}
