//! Inverse zigzag delta, written in UDP assembly (see `crate::asm` for the
//! grammar). Input: 4-byte little-endian words — the first absolute, the
//! rest zigzagged differences (`recode_codec::delta`). Output: the restored
//! little-endian `u32` index stream.

use crate::asm::assemble_text;
use crate::error::UdpError;
use crate::machine::{assemble, Image};

/// The program source. Register roles:
/// `r1` previous index · `r2` output cursor · `r3` remaining-bits ·
/// `r4` current word · `r5`/`r6` zigzag temporaries · `r11` constant 1.
pub const SOURCE: &str = "\
; inverse zigzag delta over 4-byte LE words
.entry init
init:
    mov r2, r14
    limm r11, 1
    inrem r3
    beq r3, r0, done
first:
    insymle r1, 4
    storewi r1, r2       ; 4-byte store truncates to u32 naturally
    jump loop
loop:
    inrem r3
    beq r3, r0, done
body:
    insymle r4, 4
    and r5, r4, r11      ; sign bit
    shri r6, r4, 1       ; magnitude
    sub r5, r0, r5       ; 0 or all-ones
    xor r6, r6, r5       ; signed delta (two's complement)
    add r1, r1, r6       ; prev += delta (wrapping; valid streams stay in range)
    storewi r1, r2
    jump loop
done:
    sub r15, r2, r14
    halt
";

/// Assembles the inverse-delta image (table-independent; build once, reuse
/// across blocks and matrices).
///
/// # Errors
/// Assembly/placement failures (a bug, not a data condition).
pub fn build() -> Result<Image, UdpError> {
    let program =
        assemble_text("udp-delta-decode", SOURCE).map_err(|e| UdpError::Program(e.to_string()))?;
    assemble(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{Lane, RunConfig};
    use recode_codec::delta;

    fn run(input: &[u8]) -> Vec<u8> {
        let image = build().unwrap();
        let mut lane = Lane::new();
        lane.run(&image, input, input.len() * 8, RunConfig::default()).unwrap().output
    }

    #[test]
    fn decodes_banded_indices() {
        let idx: Vec<u32> = (0..2048u32).map(|i| (i / 3) * 2 + (i % 3)).collect();
        let enc = delta::encode_u32(&idx).unwrap();
        let out = run(&enc);
        assert_eq!(out, delta::decode_bytes(&enc).unwrap());
        let words: Vec<u32> =
            out.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(words, idx);
    }

    #[test]
    fn decodes_descending_and_large_jumps() {
        let idx = vec![1_000_000u32, 5, 2_000_000, 0, 123, 122, 121];
        let enc = delta::encode_u32(&idx).unwrap();
        let words: Vec<u32> =
            run(&enc).chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(words, idx);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(run(&[]).is_empty());
    }

    #[test]
    fn single_word() {
        let enc = delta::encode_u32(&[42]).unwrap();
        assert_eq!(run(&enc), 42u32.to_le_bytes());
    }

    #[test]
    fn cycle_cost_is_linear_and_modest() {
        let idx: Vec<u32> = (0..2048u32).collect();
        let enc = delta::encode_u32(&idx).unwrap();
        let image = build().unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &enc, enc.len() * 8, RunConfig::default()).unwrap();
        let cyc_per_byte = r.cycles as f64 / (idx.len() * 4) as f64;
        assert!(
            cyc_per_byte < 5.0,
            "delta decode should cost a few cycles/byte, got {cyc_per_byte:.2}"
        );
    }
}
