//! Typed error hierarchy for the UDP crate.
//!
//! Everything the accelerator stack can fail on — program construction,
//! EffCLiP placement, machine encoding, Huffman table compilation, lane
//! traps, and codec-level block integrity — funnels into [`UdpError`], with
//! block index and lane id context attached where the failure has one.
//! `Result<_, String>` does not appear on any public API: callers can match
//! on the failure class and recover (retry a trapped block, re-fetch a
//! corrupt one) instead of parsing prose.

use crate::lane::LaneError;
use recode_codec::CodecError;
use std::fmt;

/// Result alias for UDP operations.
pub type UdpResult<T> = std::result::Result<T, UdpError>;

/// Errors raised by the UDP accelerator stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpError {
    /// Program construction or structural validation failed.
    Program(String),
    /// EffCLiP placement failed or a placement violated its constraints.
    Placement(String),
    /// A field does not fit its machine-encoding slot.
    Encoding(String),
    /// A Huffman decoder could not be compiled from its table.
    Table(String),
    /// A lane trapped while executing a job.
    Trap {
        /// Stream-position of the block being decoded, when known.
        block: Option<usize>,
        /// Lane the job ran on, when known.
        lane: Option<usize>,
        /// The underlying trap.
        source: LaneError,
    },
    /// Block-integrity or decode failure from the codec layer.
    Codec {
        /// Stream-position of the offending block, when known.
        block: Option<usize>,
        /// The underlying codec error.
        source: CodecError,
    },
    /// The static verifier rejected the program (one or more `Error`
    /// findings in its [`VerifyReport`](crate::verify::VerifyReport)).
    Verify {
        /// Program name.
        program: String,
        /// Number of `Error`-severity findings.
        errors: usize,
        /// Rendered report (findings with block/slot/line context).
        details: String,
    },
}

impl UdpError {
    /// Attaches a block index to trap/codec errors (no-op for the rest).
    pub fn with_block(self, block: usize) -> Self {
        match self {
            UdpError::Trap { lane, source, .. } => {
                UdpError::Trap { block: Some(block), lane, source }
            }
            UdpError::Codec { source, .. } => UdpError::Codec { block: Some(block), source },
            other => other,
        }
    }

    /// Attaches a lane id to trap errors (no-op for the rest).
    pub fn with_lane(self, lane: usize) -> Self {
        match self {
            UdpError::Trap { block, source, .. } => {
                UdpError::Trap { block, lane: Some(lane), source }
            }
            other => other,
        }
    }

    /// The wrapped codec error, if this is a codec failure.
    pub fn codec_error(&self) -> Option<&CodecError> {
        match self {
            UdpError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }

    /// The wrapped lane trap, if this is a trap.
    pub fn lane_error(&self) -> Option<&LaneError> {
        match self {
            UdpError::Trap { source, .. } => Some(source),
            _ => None,
        }
    }

    /// The block index attached to this error, if any.
    pub fn block(&self) -> Option<usize> {
        match self {
            UdpError::Trap { block, .. } | UdpError::Codec { block, .. } => *block,
            _ => None,
        }
    }
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Program(msg) => write!(f, "program error: {msg}"),
            UdpError::Placement(msg) => write!(f, "placement error: {msg}"),
            UdpError::Encoding(msg) => write!(f, "encoding error: {msg}"),
            UdpError::Table(msg) => write!(f, "huffman table error: {msg}"),
            UdpError::Trap { block, lane, source } => match (block, lane) {
                (Some(b), Some(l)) => write!(f, "lane {l} trapped on block {b}: {source}"),
                (Some(b), None) => write!(f, "lane trapped on block {b}: {source}"),
                (None, Some(l)) => write!(f, "lane {l} trapped: {source}"),
                (None, None) => write!(f, "lane trapped: {source}"),
            },
            UdpError::Codec { block, source } => match block {
                Some(b) => write!(f, "block {b}: {source}"),
                None => write!(f, "codec error: {source}"),
            },
            UdpError::Verify { program, errors, details } => {
                write!(
                    f,
                    "program `{program}` rejected by the static verifier \
                     ({errors} error finding(s)):\n{details}"
                )
            }
        }
    }
}

impl std::error::Error for UdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UdpError::Trap { source, .. } => Some(source),
            UdpError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<LaneError> for UdpError {
    fn from(source: LaneError) -> Self {
        UdpError::Trap { block: None, lane: None, source }
    }
}

impl From<CodecError> for UdpError {
    fn from(source: CodecError) -> Self {
        UdpError::Codec { block: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_block_and_lane_context() {
        let e = UdpError::from(LaneError::CycleLimit { limit: 99 }).with_block(7).with_lane(3);
        let msg = e.to_string();
        assert!(msg.contains("lane 3"), "{msg}");
        assert!(msg.contains("block 7"), "{msg}");
        assert!(msg.contains("99"), "{msg}");
    }

    #[test]
    fn codec_error_round_trips_with_context() {
        let inner = CodecError::ChecksumMismatch { stored: 1, computed: 2 };
        let e = UdpError::from(inner.clone()).with_block(4);
        assert_eq!(e.codec_error(), Some(&inner));
        assert_eq!(e.block(), Some(4));
        let msg = e.to_string();
        assert!(msg.contains("block 4"), "{msg}");
        assert!(msg.contains("checksum mismatch"), "{msg}");
    }

    #[test]
    fn context_is_a_no_op_on_structural_errors() {
        let e = UdpError::Program("bad".into()).with_block(1).with_lane(2);
        assert_eq!(e, UdpError::Program("bad".into()));
        assert_eq!(e.block(), None);
    }
}
