//! Symbolic UDP programs and the builder API.
//!
//! A [`Program`] is the pre-placement form: blocks refer to each other by
//! [`BlockId`] and to dispatch groups by [`GroupId`]. The EffCLiP placer
//! (`crate::effclip`) assigns concrete code addresses; the machine encoder
//! (`crate::machine`) then produces the binary image the lane executes.
//!
//! Placement-facing validity rules (enforced by [`Program::validate`]):
//!
//! * a block may appear in at most one dispatch-group slot, and at most once;
//! * a group member must not end in a `Branch` and must not be any branch's
//!   fall-through target (its address is already pinned to `base + offset`;
//!   a fall-through constraint would over-determine it);
//! * every block is the fall-through target of at most one branch, and
//!   fall-through edges are acyclic (they form chains the placer lays out
//!   contiguously).

use crate::error::UdpError;
use crate::isa::{Block, BlockId, GroupId, Transition};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A complete symbolic program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Diagnostic name (shows up in errors and reports).
    pub name: String,
    /// All code blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Dispatch groups: each a sparse set of `(offset, block)` slots.
    pub groups: Vec<Vec<(u32, BlockId)>>,
    /// Execution starts here.
    pub entry: BlockId,
}

impl Program {
    /// Number of code blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Full structural validation (see module docs for the rules).
    ///
    /// # Errors
    /// [`UdpError::Program`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), UdpError> {
        self.validate_str().map_err(UdpError::Program)
    }

    fn validate_str(&self) -> Result<(), String> {
        let n = self.blocks.len() as u32;
        if self.entry >= n {
            return Err(format!("entry block {} out of range ({n} blocks)", self.entry));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate().map_err(|e| format!("block {i}: {e}"))?;
            match b.transition {
                Transition::Jump(t) if t >= n => {
                    return Err(format!("block {i}: jump target {t} out of range"));
                }
                Transition::Branch { taken, fallthrough, .. }
                    if (taken >= n || fallthrough >= n) =>
                {
                    return Err(format!("block {i}: branch target out of range"));
                }
                Transition::DispatchSym { group, .. }
                | Transition::DispatchPeek { group, .. }
                | Transition::DispatchReg { group, .. }
                    if group as usize >= self.groups.len() =>
                {
                    return Err(format!("block {i}: group {group} out of range"));
                }
                _ => {}
            }
        }

        // Group membership rules.
        let mut member_of: HashMap<BlockId, GroupId> = HashMap::new();
        for (gi, entries) in self.groups.iter().enumerate() {
            let mut seen_offsets: HashMap<u32, BlockId> = HashMap::new();
            for &(off, bid) in entries {
                if bid >= n {
                    return Err(format!("group {gi}: member {bid} out of range"));
                }
                if let Some(prev) = seen_offsets.insert(off, bid) {
                    return Err(format!(
                        "group {gi}: offset {off} assigned to both blocks {prev} and {bid}"
                    ));
                }
                if member_of.insert(bid, gi as GroupId).is_some() {
                    return Err(format!("block {bid} appears in more than one group slot"));
                }
                if matches!(self.blocks[bid as usize].transition, Transition::Branch { .. }) {
                    return Err(format!(
                        "group {gi}: member {bid} ends in a branch (fall-through would \
                         over-constrain its placement)"
                    ));
                }
            }
        }

        // Fall-through chain rules.
        let mut fall_pred: HashMap<BlockId, BlockId> = HashMap::new();
        for (i, b) in self.blocks.iter().enumerate() {
            if let Transition::Branch { fallthrough, .. } = b.transition {
                if let Some(prev) = fall_pred.insert(fallthrough, i as BlockId) {
                    return Err(format!(
                        "block {fallthrough} is the fall-through of both {prev} and {i}"
                    ));
                }
                if member_of.contains_key(&fallthrough) {
                    return Err(format!(
                        "block {fallthrough} is both a group member and a fall-through target"
                    ));
                }
            }
        }
        // Acyclicity: walk each chain; total steps bounded by n.
        for start in self.blocks.iter().enumerate().filter_map(|(i, b)| {
            matches!(b.transition, Transition::Branch { .. }).then_some(i as BlockId)
        }) {
            let mut cur = start;
            let mut steps = 0u32;
            while let Transition::Branch { fallthrough, .. } = self.blocks[cur as usize].transition
            {
                cur = fallthrough;
                steps += 1;
                if steps > n {
                    return Err(format!("fall-through cycle involving block {start}"));
                }
            }
        }
        Ok(())
    }
}

/// Incremental program builder with forward references.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<Option<Block>>,
    groups: Vec<Vec<(u32, BlockId)>>,
    entry: Option<BlockId>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder { name: name.into(), blocks: Vec::new(), groups: Vec::new(), entry: None }
    }

    /// Reserves a block id for forward references; must be defined later.
    pub fn reserve(&mut self) -> BlockId {
        self.blocks.push(None);
        (self.blocks.len() - 1) as BlockId
    }

    /// Defines a previously reserved block.
    ///
    /// # Panics
    /// If the id is unknown or already defined.
    pub fn define(&mut self, id: BlockId, block: Block) {
        let slot =
            self.blocks.get_mut(id as usize).unwrap_or_else(|| panic!("unknown block id {id}"));
        assert!(slot.is_none(), "block {id} defined twice");
        *slot = Some(block);
    }

    /// Adds a fully formed block, returning its id.
    pub fn block(&mut self, block: Block) -> BlockId {
        self.blocks.push(Some(block));
        (self.blocks.len() - 1) as BlockId
    }

    /// Adds a dispatch group from `(offset, block)` slots.
    pub fn group(&mut self, entries: Vec<(u32, BlockId)>) -> GroupId {
        self.groups.push(entries);
        (self.groups.len() - 1) as GroupId
    }

    /// Replaces the slots of an existing group (used by the assembler,
    /// which reserves group ids before its labels resolve).
    ///
    /// # Panics
    /// If the id is unknown.
    pub fn set_group(&mut self, id: GroupId, entries: Vec<(u32, BlockId)>) {
        let slot =
            self.groups.get_mut(id as usize).unwrap_or_else(|| panic!("unknown group id {id}"));
        *slot = entries;
    }

    /// Sets the entry block.
    pub fn entry(&mut self, id: BlockId) {
        self.entry = Some(id);
    }

    /// Finalizes and validates.
    ///
    /// # Errors
    /// Undefined blocks, missing entry, or any [`Program::validate`] rule.
    pub fn build(self) -> Result<Program, UdpError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            blocks.push(b.ok_or_else(|| {
                UdpError::Program(format!("block {i} reserved but never defined"))
            })?);
        }
        let program = Program {
            name: self.name,
            blocks,
            groups: self.groups,
            entry: self.entry.ok_or_else(|| UdpError::Program("no entry block set".into()))?,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Action, Cond};

    fn halt_block() -> Block {
        Block { actions: vec![], transition: Transition::Halt }
    }

    #[test]
    fn builder_happy_path() {
        let mut pb = ProgramBuilder::new("test");
        let done = pb.block(halt_block());
        let start = pb.block(Block {
            actions: vec![Action::LoadImm { rd: 1, imm: 5 }],
            transition: Transition::Jump(done),
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.entry, start);
    }

    #[test]
    fn undefined_reserved_block_fails() {
        let mut pb = ProgramBuilder::new("test");
        let _hole = pb.reserve();
        let b = pb.block(halt_block());
        pb.entry(b);
        assert!(pb.build().unwrap_err().to_string().contains("never defined"));
    }

    #[test]
    fn missing_entry_fails() {
        let mut pb = ProgramBuilder::new("test");
        pb.block(halt_block());
        assert!(pb.build().unwrap_err().to_string().contains("entry"));
    }

    #[test]
    fn duplicate_group_membership_rejected() {
        let mut pb = ProgramBuilder::new("test");
        let b = pb.block(halt_block());
        let g = pb.group(vec![(0, b), (1, b)]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 1, group: g },
        });
        pb.entry(start);
        assert!(pb.build().unwrap_err().to_string().contains("more than one group slot"));
    }

    #[test]
    fn duplicate_offset_rejected() {
        let mut pb = ProgramBuilder::new("test");
        let a = pb.block(halt_block());
        let b = pb.block(halt_block());
        let g = pb.group(vec![(0, a), (0, b)]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 1, group: g },
        });
        pb.entry(start);
        assert!(pb.build().unwrap_err().to_string().contains("offset 0"));
    }

    #[test]
    fn branch_member_of_group_rejected() {
        let mut pb = ProgramBuilder::new("test");
        let done = pb.block(halt_block());
        let fall = pb.block(halt_block());
        let brancher = pb.block(Block {
            actions: vec![],
            transition: Transition::Branch {
                cond: Cond::Eq,
                rs: 0,
                rt: 0,
                taken: done,
                fallthrough: fall,
            },
        });
        let g = pb.group(vec![(0, brancher)]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 1, group: g },
        });
        pb.entry(start);
        assert!(pb.build().unwrap_err().to_string().contains("ends in a branch"));
    }

    #[test]
    fn shared_fallthrough_rejected() {
        let mut pb = ProgramBuilder::new("test");
        let done = pb.block(halt_block());
        let shared = pb.block(halt_block());
        let mk_branch = |pb: &mut ProgramBuilder| {
            pb.block(Block {
                actions: vec![],
                transition: Transition::Branch {
                    cond: Cond::Eq,
                    rs: 0,
                    rt: 0,
                    taken: done,
                    fallthrough: shared,
                },
            })
        };
        let b1 = mk_branch(&mut pb);
        let _b2 = mk_branch(&mut pb);
        pb.entry(b1);
        assert!(pb.build().unwrap_err().to_string().contains("fall-through of both"));
    }

    #[test]
    fn fallthrough_cycle_rejected() {
        let mut pb = ProgramBuilder::new("test");
        let done = pb.block(halt_block());
        let a = pb.reserve();
        let b = pb.reserve();
        pb.define(
            a,
            Block {
                actions: vec![],
                transition: Transition::Branch {
                    cond: Cond::Eq,
                    rs: 0,
                    rt: 0,
                    taken: done,
                    fallthrough: b,
                },
            },
        );
        pb.define(
            b,
            Block {
                actions: vec![],
                transition: Transition::Branch {
                    cond: Cond::Ne,
                    rs: 0,
                    rt: 0,
                    taken: done,
                    fallthrough: a,
                },
            },
        );
        pb.entry(a);
        assert!(pb.build().unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let p = Program {
            name: "bad".into(),
            blocks: vec![Block { actions: vec![], transition: Transition::Jump(7) }],
            groups: vec![],
            entry: 0,
        };
        assert!(p.validate().unwrap_err().to_string().contains("jump target"));
        let p = Program {
            name: "bad".into(),
            blocks: vec![Block {
                actions: vec![],
                transition: Transition::DispatchSym { bits: 4, group: 3 },
            }],
            groups: vec![],
            entry: 0,
        };
        assert!(p.validate().unwrap_err().to_string().contains("group 3"));
    }
}
