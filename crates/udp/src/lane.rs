//! One UDP lane: Dispatch unit + Stream Prefetch unit + Action unit, plus a
//! private scratchpad (paper Fig. 9), executing a binary [`Image`].
//!
//! ## Cycle model
//!
//! Each code block costs **1 dispatch cycle + 1 cycle per action**. The
//! stream prefetcher hides input latency (the paper's Stream Prefetch unit
//! exists precisely for that), and scratchpad banks are private per lane, so
//! neither adds stalls. This is the same abstraction level at which the
//! paper's cycle-accurate simulator feeds its evaluation: lane throughput =
//! `output bytes / (cycles / 1.6 GHz)`.
//!
//! ## Runtime conventions
//!
//! * `r0` is hard-wired zero.
//! * At start, `r14` holds the output base address in scratchpad.
//! * At halt, `r15` must hold the number of output bytes written at `r14`.
//! * Input is consumed through the stream unit (`insym`/`peek`/`skip`);
//!   programs must not assume input lives in the scratchpad.

use crate::isa::{Action, NUM_REGS, SCRATCHPAD_BYTES};
use crate::machine::{DecodedTransition, Image};
use serde::{Deserialize, Serialize};

/// Cycle attribution by opcode class (paper Figs. 12/13 break decode time
/// down the same way: dispatch overhead vs. ALU vs. memory vs. stream I/O).
///
/// Every cycle a lane spends is attributed to exactly one class, so
/// `total()` equals the run's cycle count — the invariant the telemetry
/// layer asserts on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpClassCycles {
    /// Block-dispatch cycles (1 per dispatched code block).
    pub dispatch: u64,
    /// Register ALU actions (moves, arithmetic, logic, shifts).
    pub alu: u64,
    /// Scratchpad loads/stores (incl. post-increment forms).
    pub mem: u64,
    /// Stream-unit actions (`insym`/`peek`/`skip`/`inrem`).
    pub stream: u64,
}

impl OpClassCycles {
    /// Sum across all classes — equals the run's total cycles.
    pub fn total(&self) -> u64 {
        self.dispatch + self.alu + self.mem + self.stream
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &OpClassCycles) {
        self.dispatch += other.dispatch;
        self.alu += other.alu;
        self.mem += other.mem;
        self.stream += other.stream;
    }

    /// Charges one cycle to the class of `action`.
    #[inline]
    pub fn bump(&mut self, action: &Action) {
        match action {
            Action::LoadImm { .. }
            | Action::Mov { .. }
            | Action::Add { .. }
            | Action::Sub { .. }
            | Action::And { .. }
            | Action::Or { .. }
            | Action::Xor { .. }
            | Action::AddI { .. }
            | Action::ShlI { .. }
            | Action::ShrI { .. } => self.alu += 1,
            Action::Load { .. }
            | Action::Store { .. }
            | Action::LoadInc { .. }
            | Action::StoreInc { .. } => self.mem += 1,
            Action::InSym { .. }
            | Action::InSymLe { .. }
            | Action::PeekSym { .. }
            | Action::SkipSym { .. }
            | Action::SkipReg { .. }
            | Action::InRem { .. } => self.stream += 1,
        }
    }
}

/// Errors a lane can trap on. Corrupt compressed blocks surface as traps,
/// never as panics or out-of-bounds access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneError {
    /// Control transferred to an unmapped address (EffCLiP hole or out of
    /// range) — the hardware analogue of an invalid dispatch.
    UnmappedAddress {
        /// The offending code address.
        addr: u32,
        /// Address of the block that transferred there.
        from: u32,
    },
    /// A scratchpad access fell outside the 64 KB lane memory.
    ScratchpadOob {
        /// Byte address of the access.
        addr: i64,
        /// Access width.
        width: usize,
    },
    /// The stream unit was asked for more bits than remain.
    StreamUnderflow {
        /// Bits requested.
        wanted: usize,
        /// Bits available.
        available: usize,
    },
    /// The cycle budget was exhausted (runaway program).
    CycleLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// `r15` declared an output range outside the scratchpad at halt.
    BadOutputRange {
        /// Declared byte count.
        declared: u64,
    },
    /// The job's input declared more valid bits than its buffer holds —
    /// the framing layer handed the lane an inconsistent block.
    BadInputLength {
        /// Bits the caller declared.
        declared_bits: usize,
        /// Bits the buffer can hold.
        buffer_bits: usize,
    },
    /// A transient fault injected by the test harness (see
    /// `accel::FaultHook`) — models an SEU/DMA glitch that a retry clears.
    InjectedFault,
    /// The image's static [`VerifyReport`](crate::verify::VerifyReport)
    /// carries `Error` findings and the caller did not opt out via
    /// [`RunConfig::allow_unverified`].
    Unverified {
        /// Number of `Error`-severity findings in the report.
        errors: usize,
    },
    /// A panic escaped the lane runner and was contained by the dispatch
    /// layer's `catch_unwind` boundary (see `accel::run_jobs_from`). The
    /// lane's architectural state is unreliable afterwards; callers treat
    /// this like any other trap and retry on a fresh lane.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The image's JIT artifact failed its run-time integrity sentinel
    /// (see [`crate::jit::LaneJit`]): the published machine code no longer
    /// matches what was compiled. The lane refuses to execute it; re-run
    /// `verify_image` for the full digest diagnosis.
    JitInvalid,
}

impl std::fmt::Display for LaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneError::UnmappedAddress { addr, from } => {
                write!(f, "dispatch from {from} into unmapped code address {addr}")
            }
            LaneError::ScratchpadOob { addr, width } => {
                write!(f, "scratchpad access at {addr} width {width} out of bounds")
            }
            LaneError::StreamUnderflow { wanted, available } => {
                write!(f, "stream underflow: wanted {wanted} bits, {available} left")
            }
            LaneError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            LaneError::BadOutputRange { declared } => {
                write!(f, "r15 declared {declared} output bytes, outside scratchpad")
            }
            LaneError::BadInputLength { declared_bits, buffer_bits } => {
                write!(f, "input declares {declared_bits} bits but buffer holds {buffer_bits}")
            }
            LaneError::InjectedFault => write!(f, "injected transient fault"),
            LaneError::Panicked { message } => {
                write!(f, "lane worker panicked: {message}")
            }
            LaneError::Unverified { errors } => {
                write!(
                    f,
                    "image rejected by the static verifier ({errors} error finding(s)); \
                     set RunConfig::allow_unverified to run anyway"
                )
            }
            LaneError::JitInvalid => {
                write!(
                    f,
                    "compiled lane artifact failed its integrity sentinel; refusing to \
                     execute (re-verify the image for the full diagnosis)"
                )
            }
        }
    }
}

impl std::error::Error for LaneError {}

/// Per-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Scratchpad address where output is written (`r14` at start).
    pub out_base: u32,
    /// Trap after this many cycles.
    pub cycle_limit: u64,
    /// Run images even when their static [`VerifyReport`] carries `Error`
    /// findings. Off by default; the escape hatch exists for research use
    /// (deliberately hostile programs, verifier stress tests).
    ///
    /// [`VerifyReport`]: crate::verify::VerifyReport
    pub allow_unverified: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        // Output in the upper half of the scratchpad leaves the lower half
        // for program temporaries.
        RunConfig {
            out_base: (SCRATCHPAD_BYTES / 2) as u32,
            cycle_limit: 200_000_000,
            allow_unverified: false,
        }
    }
}

/// Result of one lane run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total cycles consumed (dispatches + actions).
    pub cycles: u64,
    /// Number of block dispatches executed.
    pub dispatches: u64,
    /// Number of actions executed.
    pub actions: u64,
    /// Cycle attribution by opcode class (`opclass.total() == cycles`).
    pub opclass: OpClassCycles,
    /// Output bytes (scratchpad `[r14, r14 + r15)` at halt).
    pub output: Vec<u8>,
}

/// The modeled-machine half of a [`RunResult`]: everything except the output
/// bytes, which [`Lane::run_into`] writes into a caller-owned buffer instead
/// of allocating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total cycles consumed (dispatches + actions).
    pub cycles: u64,
    /// Number of block dispatches executed.
    pub dispatches: u64,
    /// Number of actions executed.
    pub actions: u64,
    /// Cycle attribution by opcode class (`opclass.total() == cycles`).
    pub opclass: OpClassCycles,
}

/// Bit-granular input stream with MSB-first reads — the Stream Prefetch
/// unit's software model. Mirrors `recode_codec::bitstream::BitReader`
/// semantics exactly (peek pads zeros past the end).
///
/// Reads are served from a 64-bit refill buffer holding the bits at
/// `[pos, pos + buf_bits)` MSB-aligned (bits below `buf_bits` are zero, so
/// past-the-end peeks get their zero padding for free). The buffer is
/// topped up a byte at a time only when a request outruns it, instead of
/// the stream touching `bytes` bit-by-bit.
struct StreamUnit<'a> {
    bytes: &'a [u8],
    bit_len: usize,
    /// Logical position of the next unconsumed bit.
    pos: usize,
    buf: u64,
    buf_bits: u32,
}

impl<'a> StreamUnit<'a> {
    fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        debug_assert!(bit_len <= bytes.len() * 8);
        StreamUnit { bytes, bit_len, pos: 0, buf: 0, buf_bits: 0 }
    }

    fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }

    /// Tops up the buffer byte-by-byte. Invariant: the next load position
    /// (`pos + buf_bits`) is byte-aligned or `>= bit_len`, so whole bytes
    /// can be appended; the final partial byte is masked to `bit_len`.
    #[inline]
    fn refill(&mut self) {
        let mut next = self.pos + self.buf_bits as usize;
        while self.buf_bits <= 56 && next < self.bit_len {
            debug_assert_eq!(next % 8, 0);
            let avail = self.bit_len - next;
            let mut b = self.bytes[next / 8];
            if avail < 8 {
                b &= 0xFF << (8 - avail);
            }
            self.buf |= (b as u64) << (56 - self.buf_bits);
            self.buf_bits += if avail < 8 { avail as u32 } else { 8 };
            next += 8;
        }
    }

    /// Re-establishes the refill invariant after `pos` moved past the
    /// buffer to a possibly mid-byte position: load the valid remainder of
    /// the current byte so the next load is byte-aligned again.
    fn rebase(&mut self) {
        self.buf = 0;
        self.buf_bits = 0;
        let frac = self.pos % 8;
        if frac != 0 && self.pos < self.bit_len {
            let avail = (8 - frac).min(self.bit_len - self.pos);
            let b = (self.bytes[self.pos / 8] << frac) & (0xFFu16 << (8 - avail)) as u8;
            self.buf = (b as u64) << 56;
            self.buf_bits = avail as u32;
        }
    }

    /// Fallback for oversized requests the 64-bit buffer cannot stage
    /// (only reachable from fuzzed/garbage encodings; validated programs
    /// cap stream reads at 32 bits).
    fn peek_slow(&self, nbits: u8) -> u64 {
        let mut out = 0u64;
        for k in 0..nbits as usize {
            let p = self.pos + k;
            let bit = if p < self.bit_len { (self.bytes[p / 8] >> (7 - (p % 8))) & 1 } else { 0 };
            out = (out << 1) | bit as u64;
        }
        out
    }

    fn peek(&mut self, nbits: u8) -> u64 {
        if nbits == 0 {
            return 0;
        }
        if nbits > 57 {
            return self.peek_slow(nbits);
        }
        if u32::from(nbits) > self.buf_bits {
            self.refill();
        }
        self.buf >> (64 - u32::from(nbits))
    }

    /// Consumes `n` bits; caller has checked `n <= remaining()`.
    #[inline]
    fn advance(&mut self, n: usize) {
        self.pos += n;
        if (n as u64) < u64::from(self.buf_bits) {
            self.buf <<= n;
            self.buf_bits -= n as u32;
        } else {
            self.rebase();
        }
    }

    fn read(&mut self, nbits: u8) -> Result<u64, LaneError> {
        if nbits as usize > self.remaining() {
            return Err(LaneError::StreamUnderflow {
                wanted: nbits as usize,
                available: self.remaining(),
            });
        }
        let v = self.peek(nbits);
        self.advance(nbits as usize);
        Ok(v)
    }

    fn skip(&mut self, nbits: usize) -> Result<(), LaneError> {
        if nbits > self.remaining() {
            return Err(LaneError::StreamUnderflow { wanted: nbits, available: self.remaining() });
        }
        self.advance(nbits);
        Ok(())
    }

    /// Little-endian byte-symbol read: `bytes` 8-bit groups, first group in
    /// the least significant byte of the result.
    fn read_le(&mut self, bytes: u8) -> Result<u64, LaneError> {
        if bytes as usize * 8 > self.remaining() {
            return Err(LaneError::StreamUnderflow { wanted: 8, available: self.remaining() % 8 });
        }
        let mut v = 0u64;
        for k in 0..bytes {
            let b = self.peek(8);
            self.advance(8);
            v |= b << (8 * k);
        }
        Ok(v)
    }
}

/// Slow-path stream helpers the compiled lane code calls out to (see
/// `crate::jit`). Each reconstructs a [`StreamUnit`] view over the state the
/// JIT keeps in [`JitState`](crate::jit::JitState) memory, runs the *real*
/// scalar method — so refill/rebase/underflow behavior is the interpreter's
/// by construction, not a re-implementation — and writes the cursor back.
/// On a trap the helper sets `status = 1` (the bail signal); it never
/// fabricates an error payload, because the caller re-runs the interpreter
/// to reproduce the exact trap.
mod jit_helpers {
    use super::{JitStateRef, StreamUnit};

    /// Runs `f` over a `StreamUnit` view of `st`'s stream fields, writing
    /// the cursor back and translating `Err` into the bail status.
    ///
    /// # Safety
    /// `st` must be a live, exclusive `JitState` whose `in_ptr`/`in_len`
    /// describe a readable buffer with `bit_len <= in_len * 8`.
    #[allow(clippy::cast_possible_truncation)]
    unsafe fn with_stream<F>(st: JitStateRef, f: F) -> u64
    where
        F: FnOnce(&mut StreamUnit<'_>) -> Result<u64, super::LaneError>,
    {
        let s = &mut *st;
        let mut su = StreamUnit {
            bytes: std::slice::from_raw_parts(s.in_ptr, s.in_len as usize),
            bit_len: s.bit_len as usize,
            pos: s.pos as usize,
            buf: s.buf,
            buf_bits: s.buf_bits as u32,
        };
        let out = f(&mut su);
        s.pos = su.pos as u64;
        s.buf = su.buf;
        s.buf_bits = u64::from(su.buf_bits);
        if let Ok(v) = out {
            v
        } else {
            s.status = 1;
            0
        }
    }

    /// `stream.read(n)` for the compiled code's slow path.
    ///
    /// # Safety
    /// See [`with_stream`].
    #[allow(clippy::cast_possible_truncation)]
    pub(crate) unsafe extern "C" fn jit_stream_read(st: JitStateRef, nbits: u64) -> u64 {
        with_stream(st, |su| su.read(nbits as u8))
    }

    /// `stream.peek(n)` for the compiled code's slow path (never traps).
    ///
    /// # Safety
    /// See [`with_stream`].
    #[allow(clippy::cast_possible_truncation)]
    pub(crate) unsafe extern "C" fn jit_stream_peek(st: JitStateRef, nbits: u64) -> u64 {
        with_stream(st, |su| Ok(su.peek(nbits as u8)))
    }

    /// `stream.skip(n)` for the compiled code's slow path. `nbits` is the
    /// full register width because `SkipReg` passes an arbitrary u64.
    ///
    /// # Safety
    /// See [`with_stream`].
    #[allow(clippy::cast_possible_truncation)]
    pub(crate) unsafe extern "C" fn jit_stream_skip(st: JitStateRef, nbits: u64) -> u64 {
        with_stream(st, |su| su.skip(nbits as usize).map(|()| 0))
    }

    /// `stream.read_le(n)` for the compiled code (always the helper — the
    /// multi-byte splice isn't worth inlining).
    ///
    /// # Safety
    /// See [`with_stream`].
    #[allow(clippy::cast_possible_truncation)]
    pub(crate) unsafe extern "C" fn jit_stream_read_le(st: JitStateRef, nbytes: u64) -> u64 {
        with_stream(st, |su| su.read_le(nbytes as u8))
    }
}

/// Raw-pointer alias keeping the helper signatures readable.
type JitStateRef = *mut crate::jit::JitState;
pub(crate) use jit_helpers::{
    jit_stream_peek, jit_stream_read, jit_stream_read_le, jit_stream_skip,
};

/// Reliability record a lane carries across runs. Architectural resets
/// (`run*` prologue) deliberately leave it alone: health describes the
/// physical lane, not one program execution. The decode path updates it
/// ([`Lane::note_trap`]/[`Lane::note_success`]) and
/// [`LanePool`](crate::pool::LanePool) reads it on guard drop to decide
/// between the free list and quarantine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneHealth {
    /// Lane-attributable traps since the last clean decode.
    pub consecutive_traps: u32,
    /// Lifetime lane-attributable traps.
    pub total_traps: u64,
    /// Lifetime clean decodes.
    pub total_successes: u64,
    /// Set when the pool readmitted this lane from quarantine; a single
    /// further trap re-quarantines, one success clears the flag.
    pub probation: bool,
}

impl LaneHealth {
    /// Whether a pool should quarantine a lane in this state. `threshold`
    /// is consecutive traps (0 disables quarantine); a probationary lane is
    /// quarantined by any trap at all.
    pub fn should_quarantine(&self, threshold: u32) -> bool {
        if threshold == 0 {
            return false;
        }
        self.consecutive_traps >= threshold || (self.probation && self.consecutive_traps > 0)
    }
}

/// A reusable lane (scratchpad allocation is recycled across runs).
///
/// Every `run*` entry point fully re-initializes the architectural state
/// (registers, scratchpad contents, stream position), so a recycled lane —
/// e.g. one checked out of [`LanePool`](crate::pool::LanePool) — is
/// indistinguishable from `Lane::new()`. The [`LaneHealth`] record is the
/// one deliberate exception: it persists across runs so the pool can
/// quarantine chronically trapping lanes.
pub struct Lane {
    scratch: Vec<u8>,
    regs: [u64; NUM_REGS],
    /// High-water mark of scratchpad bytes dirtied by stores since the last
    /// clear: the prologue zeroes only `scratch[..dirty_hi]` instead of all
    /// 64 KB. Invariant: outside `[0, dirty_hi)` the scratchpad is zero.
    dirty_hi: usize,
    /// Reliability record; survives architectural resets.
    health: LaneHealth,
    /// Spare output buffers recycled by `DshDecoder::decode_block`'s stage
    /// chain (held here so every consumer of a pooled lane reuses the same
    /// allocations).
    pub(crate) io_a: Vec<u8>,
    pub(crate) io_b: Vec<u8>,
}

impl Default for Lane {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-run accounting shared by the fast and reference interpreter loops.
#[derive(Default)]
struct Accounting {
    cycles: u64,
    dispatches: u64,
    actions: u64,
    opclass: OpClassCycles,
}

impl Lane {
    /// Fresh lane with a zeroed scratchpad.
    pub fn new() -> Self {
        Lane {
            scratch: vec![0u8; SCRATCHPAD_BYTES],
            regs: [0; NUM_REGS],
            dirty_hi: 0,
            health: LaneHealth::default(),
            io_a: Vec::new(),
            io_b: Vec::new(),
        }
    }

    /// The lane's reliability record.
    pub fn health(&self) -> &LaneHealth {
        &self.health
    }

    /// Records one lane-attributable trap (decode failed on this lane for a
    /// reason a different lane might not reproduce).
    pub fn note_trap(&mut self) {
        self.health.consecutive_traps = self.health.consecutive_traps.saturating_add(1);
        self.health.total_traps += 1;
    }

    /// Records one clean decode: clears the trap streak and any probation.
    pub fn note_success(&mut self) {
        self.health.consecutive_traps = 0;
        self.health.probation = false;
        self.health.total_successes += 1;
    }

    /// Marks the lane as readmitted-on-probation (pool readmission path):
    /// the streak resets but a single further trap re-quarantines.
    pub fn begin_probation(&mut self) {
        self.health.consecutive_traps = 0;
        self.health.probation = true;
    }

    /// Debug-only check that a completing run's modeled cycles landed
    /// inside the image's certified [`CycleBound`](crate::verify::CycleBound)
    /// envelope. Only gated-clean programs make that promise — an image run
    /// via `allow_unverified` may execute blocks the static model never
    /// certified, so it is exempt.
    #[inline]
    fn debug_assert_in_envelope(image: &Image, cycles: u64, input_bits: usize) {
        #[cfg(debug_assertions)]
        if image.verify_report.error_count() == 0 {
            if let Some(bound) = image.verify_report.cycle_bound {
                assert!(
                    bound.contains(cycles, input_bits as u64),
                    "certified cycle envelope violated: program `{}` completed in {cycles} \
                     cycles on {input_bits} input bits, outside {bound}",
                    image.name,
                );
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = (image, cycles, input_bits);
    }

    /// Input/verify gates and architectural-state reset shared by every run
    /// entry point.
    fn prologue(
        &mut self,
        image: &Image,
        input: &[u8],
        input_bits: usize,
        cfg: RunConfig,
    ) -> Result<(), LaneError> {
        if input_bits > input.len() * 8 {
            return Err(LaneError::BadInputLength {
                declared_bits: input_bits,
                buffer_bits: input.len() * 8,
            });
        }
        let verify_errors = image.verify_report.error_count();
        if verify_errors > 0 && !cfg.allow_unverified {
            return Err(LaneError::Unverified { errors: verify_errors });
        }
        // Only the prefix a previous run dirtied needs zeroing; everything
        // past `dirty_hi` is still zero from `new()` or an earlier clear.
        self.scratch[..self.dirty_hi].fill(0);
        self.dirty_hi = 0;
        self.regs = [0; NUM_REGS];
        self.regs[14] = cfg.out_base as u64;
        Ok(())
    }

    /// Dispatch accounting + action execution for one code block. Order is
    /// load-bearing: the block's full cost lands on the meter *before* the
    /// budget check, and each action is attributed before it executes.
    #[inline]
    fn step_block(
        &mut self,
        actions: &[Action],
        acct: &mut Accounting,
        cfg: RunConfig,
        stream: &mut StreamUnit<'_>,
    ) -> Result<(), LaneError> {
        acct.dispatches += 1;
        acct.cycles += 1 + actions.len() as u64;
        acct.actions += actions.len() as u64;
        acct.opclass.dispatch += 1;
        if acct.cycles > cfg.cycle_limit {
            return Err(LaneError::CycleLimit { limit: cfg.cycle_limit });
        }
        for a in actions {
            acct.opclass.bump(a);
            self.exec_action(*a, stream)?;
        }
        Ok(())
    }

    /// Resolves a block terminator to the next pc (`None` = halt).
    #[inline]
    fn resolve_transition(
        &self,
        t: DecodedTransition,
        prev_pc: u32,
        stream: &mut StreamUnit<'_>,
    ) -> Result<Option<u32>, LaneError> {
        Ok(match t {
            DecodedTransition::Halt => None,
            DecodedTransition::Jump(a) => Some(a),
            DecodedTransition::DispatchSym { bits, base } => Some(base + stream.read(bits)? as u32),
            DecodedTransition::DispatchPeek { bits, base } => Some(base + stream.peek(bits) as u32),
            DecodedTransition::DispatchReg { rs, base } => {
                Some(base.wrapping_add(self.reg(rs) as u32))
            }
            DecodedTransition::Branch { cond, rs, rt, taken } => {
                Some(if cond.eval(self.reg(rs), self.reg(rt)) { taken } else { prev_pc + 1 })
            }
        })
    }

    /// Validates the output window `r14`/`r15` declared at halt and returns
    /// its scratchpad range.
    fn output_range(&self, cfg: RunConfig) -> Result<std::ops::Range<usize>, LaneError> {
        let declared = self.regs[15];
        let start = cfg.out_base as usize;
        let end = start.checked_add(declared as usize).filter(|&e| e <= SCRATCHPAD_BYTES);
        let end = end.ok_or(LaneError::BadOutputRange { declared })?;
        Ok(start..end)
    }

    /// Executes `image` over `input` (valid bits: `input_bits`).
    ///
    /// # Errors
    /// Any [`LaneError`] trap.
    pub fn run(
        &mut self,
        image: &Image,
        input: &[u8],
        input_bits: usize,
        cfg: RunConfig,
    ) -> Result<RunResult, LaneError> {
        let mut output = Vec::new();
        let stats = self.run_into(image, input, input_bits, cfg, &mut output)?;
        Ok(RunResult {
            cycles: stats.cycles,
            dispatches: stats.dispatches,
            actions: stats.actions,
            opclass: stats.opclass,
            output,
        })
    }

    /// Like [`Lane::run`], but writes the output bytes into `out` (cleared
    /// first) instead of allocating a fresh `Vec` — with a warm `out`
    /// buffer the whole call is allocation-free.
    ///
    /// Dispatches to the image's compiled JIT artifact when one is present
    /// (x86-64, `RECODE_NO_JIT` unset); otherwise — and whenever the
    /// compiled code bails — runs [`Lane::run_into_interp`]. Both tiers are
    /// bit-exact on outputs, modeled cycles, opclass attribution, and
    /// traps; the differential suite pins that.
    ///
    /// # Errors
    /// Any [`LaneError`] trap (on error, `out` contents are unspecified).
    pub fn run_into(
        &mut self,
        image: &Image,
        input: &[u8],
        input_bits: usize,
        cfg: RunConfig,
        out: &mut Vec<u8>,
    ) -> Result<RunStats, LaneError> {
        if let Some(jit) = image.jit() {
            if recode_codec::jit::enabled() {
                return self.run_into_jit(image, jit, input, input_bits, cfg, out);
            }
        }
        self.run_into_interp(image, input, input_bits, cfg, out)
    }

    /// The portable interpreter tier: indexes the image's predecoded block
    /// table (never re-decoding a code word) and executes action-by-action.
    /// This is the canonical software semantics the JIT tier must match;
    /// it also serves as the re-run target when compiled code bails.
    ///
    /// # Errors
    /// Any [`LaneError`] trap (on error, `out` contents are unspecified).
    pub fn run_into_interp(
        &mut self,
        image: &Image,
        input: &[u8],
        input_bits: usize,
        cfg: RunConfig,
        out: &mut Vec<u8>,
    ) -> Result<RunStats, LaneError> {
        self.prologue(image, input, input_bits, cfg)?;
        let mut stream = StreamUnit::new(input, input_bits);
        let mut acct = Accounting::default();
        let mut pc = image.entry;
        let mut prev_pc = pc;
        loop {
            let Some(block) = image.predecoded(pc) else {
                return Err(LaneError::UnmappedAddress { addr: pc, from: prev_pc });
            };
            let (actions, transition) = (block.actions(), block.transition);
            self.step_block(actions, &mut acct, cfg, &mut stream)?;
            prev_pc = pc;
            match self.resolve_transition(transition, prev_pc, &mut stream)? {
                Some(next) => pc = next,
                None => break,
            }
        }
        let range = self.output_range(cfg)?;
        out.clear();
        out.extend_from_slice(&self.scratch[range]);
        Self::debug_assert_in_envelope(image, acct.cycles, input_bits);
        Ok(RunStats {
            cycles: acct.cycles,
            dispatches: acct.dispatches,
            actions: acct.actions,
            opclass: acct.opclass,
        })
    }

    /// The compiled tier: runs the image's published machine code, falling
    /// back to a full interpreter re-run whenever it bails (lane execution
    /// is deterministic, so the re-run reproduces the exact trap).
    #[allow(clippy::cast_possible_truncation)]
    fn run_into_jit(
        &mut self,
        image: &Image,
        jit: &crate::jit::LaneJit,
        input: &[u8],
        input_bits: usize,
        cfg: RunConfig,
        out: &mut Vec<u8>,
    ) -> Result<RunStats, LaneError> {
        self.prologue(image, input, input_bits, cfg)?;
        if !jit.quick_check() {
            return Err(LaneError::JitInvalid);
        }
        let (table, table_len) = jit.table();
        let mut st = crate::jit::JitState {
            regs: self.regs.as_mut_ptr(),
            scratch: self.scratch.as_mut_ptr(),
            table: table.as_ptr(),
            table_len,
            in_ptr: input.as_ptr(),
            in_len: input.len() as u64,
            bit_len: input_bits as u64,
            pos: 0,
            buf: 0,
            buf_bits: 0,
            cycles: 0,
            dispatches: 0,
            actions: 0,
            oc_dispatch: 0,
            oc_alu: 0,
            oc_mem: 0,
            oc_stream: 0,
            cycle_limit: cfg.cycle_limit,
            dirty_hi: 0,
            status: 0,
        };
        // SAFETY: regs (16×u64), scratch (64 KB), the dispatch table, and
        // the input buffer all outlive the call; the prologue validated
        // `input_bits <= input.len() * 8`; quick_check vouched for the
        // published pages.
        unsafe { jit.run(&mut st) };
        // Fold the compiled code's dirty high-water mark in *before* any
        // rerun or return: the next prologue must zero everything the
        // compiled code stored, or stale bytes leak into the next run.
        self.dirty_hi = self.dirty_hi.max(st.dirty_hi as usize);
        if st.status != 0 {
            return self.run_into_interp(image, input, input_bits, cfg, out);
        }
        let range = self.output_range(cfg)?;
        out.clear();
        out.extend_from_slice(&self.scratch[range]);
        Self::debug_assert_in_envelope(image, st.cycles, input_bits);
        Ok(RunStats {
            cycles: st.cycles,
            dispatches: st.dispatches,
            actions: st.actions,
            opclass: OpClassCycles {
                dispatch: st.oc_dispatch,
                alu: st.oc_alu,
                mem: st.oc_mem,
                stream: st.oc_stream,
            },
        })
    }

    /// The word-at-a-time interpreter: decodes every code word at dispatch
    /// time via [`Image::decode`] exactly as `run` did before images were
    /// predecoded. Kept as the semantic reference — the differential suite
    /// asserts `run` and `run_reference` agree on outputs, cycles, opclass
    /// attribution, and traps for every program and corrupt input.
    ///
    /// # Errors
    /// Any [`LaneError`] trap.
    pub fn run_reference(
        &mut self,
        image: &Image,
        input: &[u8],
        input_bits: usize,
        cfg: RunConfig,
    ) -> Result<RunResult, LaneError> {
        self.prologue(image, input, input_bits, cfg)?;
        let mut stream = StreamUnit::new(input, input_bits);
        let mut acct = Accounting::default();
        let mut pc = image.entry;
        let mut prev_pc = pc;
        loop {
            let block =
                image.decode(pc).ok_or(LaneError::UnmappedAddress { addr: pc, from: prev_pc })?;
            self.step_block(&block.actions, &mut acct, cfg, &mut stream)?;
            prev_pc = pc;
            match self.resolve_transition(block.transition, prev_pc, &mut stream)? {
                Some(next) => pc = next,
                None => break,
            }
        }
        let range = self.output_range(cfg)?;
        Self::debug_assert_in_envelope(image, acct.cycles, input_bits);
        Ok(RunResult {
            cycles: acct.cycles,
            dispatches: acct.dispatches,
            actions: acct.actions,
            opclass: acct.opclass,
            output: self.scratch[range].to_vec(),
        })
    }

    #[inline]
    fn reg(&self, r: u8) -> u64 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    #[inline]
    fn set_reg(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    fn mem_addr(&self, base: u8, offset: i16, width: usize) -> Result<usize, LaneError> {
        let addr = self.reg(base) as i64 + offset as i64;
        if addr < 0 || (addr as usize) + width > SCRATCHPAD_BYTES {
            return Err(LaneError::ScratchpadOob { addr, width });
        }
        Ok(addr as usize)
    }

    fn exec_action(&mut self, a: Action, stream: &mut StreamUnit<'_>) -> Result<(), LaneError> {
        match a {
            Action::LoadImm { rd, imm } => self.set_reg(rd, imm as i64 as u64),
            Action::Mov { rd, rs } => self.set_reg(rd, self.reg(rs)),
            Action::Add { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt)));
            }
            Action::Sub { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt)));
            }
            Action::And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Action::Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Action::Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Action::AddI { rd, rs, imm } => {
                self.set_reg(rd, self.reg(rs).wrapping_add(imm as i64 as u64));
            }
            Action::ShlI { rd, rs, amount } => {
                let v = if amount >= 64 { 0 } else { self.reg(rs) << amount };
                self.set_reg(rd, v);
            }
            Action::ShrI { rd, rs, amount } => {
                let v = if amount >= 64 { 0 } else { self.reg(rs) >> amount };
                self.set_reg(rd, v);
            }
            Action::Load { rd, base, offset, width } => {
                let w = width.bytes();
                let addr = self.mem_addr(base, offset, w)?;
                let mut v = 0u64;
                for k in 0..w {
                    v |= (self.scratch[addr + k] as u64) << (8 * k);
                }
                self.set_reg(rd, v);
            }
            Action::Store { rs, base, offset, width } => {
                let w = width.bytes();
                let addr = self.mem_addr(base, offset, w)?;
                let v = self.reg(rs);
                for k in 0..w {
                    self.scratch[addr + k] = (v >> (8 * k)) as u8;
                }
                self.dirty_hi = self.dirty_hi.max(addr + w);
            }
            Action::LoadInc { rd, base, width } => {
                let w = width.bytes();
                let addr = self.mem_addr(base, 0, w)?;
                let mut v = 0u64;
                for k in 0..w {
                    v |= (self.scratch[addr + k] as u64) << (8 * k);
                }
                // Increment before the destination write so `rd == base`
                // keeps the loaded value (load-then-update ordering).
                self.set_reg(base, self.reg(base).wrapping_add(w as u64));
                self.set_reg(rd, v);
            }
            Action::StoreInc { rs, base, width } => {
                let w = width.bytes();
                let addr = self.mem_addr(base, 0, w)?;
                let v = self.reg(rs);
                for k in 0..w {
                    self.scratch[addr + k] = (v >> (8 * k)) as u8;
                }
                self.dirty_hi = self.dirty_hi.max(addr + w);
                self.set_reg(base, self.reg(base).wrapping_add(w as u64));
            }
            Action::InSym { rd, bits } => {
                let v = stream.read(bits)?;
                self.set_reg(rd, v);
            }
            Action::InSymLe { rd, bytes } => {
                let v = stream.read_le(bytes)?;
                self.set_reg(rd, v);
            }
            Action::PeekSym { rd, bits } => self.set_reg(rd, stream.peek(bits)),
            Action::SkipSym { bits } => stream.skip(bits as usize)?,
            Action::SkipReg { rs } => stream.skip(self.reg(rs) as usize)?,
            Action::InRem { rd } => self.set_reg(rd, stream.remaining() as u64),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Action, Block, Cond, Transition, Width};
    use crate::machine::assemble;
    use crate::program::ProgramBuilder;

    /// A program that copies its byte-aligned input to the output, one byte
    /// per iteration.
    fn byte_copy_program() -> crate::program::Program {
        let mut pb = ProgramBuilder::new("bytecopy");
        // done: r15 = r2 - r14; halt
        let done = pb.block(Block {
            actions: vec![Action::Sub { rd: 15, rs: 2, rt: 14 }],
            transition: Transition::Halt,
        });
        // body: r1 = in byte; mem[r2] = r1; r2 += 1  -> jump head
        let head = pb.reserve();
        let body = pb.block(Block {
            actions: vec![
                Action::InSymLe { rd: 1, bytes: 1 },
                Action::Store { rs: 1, base: 2, offset: 0, width: Width::B1 },
                Action::AddI { rd: 2, rs: 2, imm: 1 },
            ],
            transition: Transition::Jump(head),
        });
        // head: r3 = rem; if r3 == 0 -> done else fall to body2 (jump body)
        let cont = pb.block(Block { actions: vec![], transition: Transition::Jump(body) });
        pb.define(
            head,
            Block {
                actions: vec![Action::InRem { rd: 3 }],
                transition: Transition::Branch {
                    cond: Cond::Eq,
                    rs: 3,
                    rt: 0,
                    taken: done,
                    fallthrough: cont,
                },
            },
        );
        // init: r2 = r14
        let init = pb.block(Block {
            actions: vec![Action::Mov { rd: 2, rs: 14 }],
            transition: Transition::Jump(head),
        });
        pb.entry(init);
        pb.build().unwrap()
    }

    #[test]
    fn byte_copy_copies_and_counts_cycles() {
        let image = assemble(&byte_copy_program()).unwrap();
        let mut lane = Lane::new();
        let input = b"hello, udp lane!";
        let r = lane.run(&image, input, input.len() * 8, RunConfig::default()).unwrap();
        assert_eq!(r.output, input);
        // init(2) + n*(head(2) + cont(1) + body(4)) + final head(2) + done(2)
        let n = input.len() as u64;
        assert_eq!(r.cycles, 2 + n * 7 + 2 + 2);
        assert!(r.dispatches > n);
    }

    #[test]
    fn opclass_attribution_covers_every_cycle() {
        let image = assemble(&byte_copy_program()).unwrap();
        let mut lane = Lane::new();
        let input = b"opclass invariant";
        let r = lane.run(&image, input, input.len() * 8, RunConfig::default()).unwrap();
        assert_eq!(r.opclass.total(), r.cycles, "every cycle must land in one class");
        assert_eq!(r.opclass.dispatch, r.dispatches);
        assert_eq!(r.opclass.alu + r.opclass.mem + r.opclass.stream, r.actions);
        // The copy loop touches all three action classes.
        assert!(r.opclass.alu > 0 && r.opclass.mem > 0 && r.opclass.stream > 0);
    }

    #[test]
    fn empty_input_halts_immediately_with_empty_output() {
        let image = assemble(&byte_copy_program()).unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &[], 0, RunConfig::default()).unwrap();
        assert!(r.output.is_empty());
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut pb = ProgramBuilder::new("r0");
        let start = pb.block(Block {
            actions: vec![
                Action::LoadImm { rd: 0, imm: 123 },
                Action::Add { rd: 15, rs: 0, rt: 0 },
            ],
            transition: Transition::Halt,
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &[], 0, RunConfig::default()).unwrap();
        assert!(r.output.is_empty(), "r15 stayed 0 because r0 ignores writes");
    }

    #[test]
    fn stream_underflow_traps() {
        let mut pb = ProgramBuilder::new("uf");
        let start = pb.block(Block {
            actions: vec![Action::InSym { rd: 1, bits: 16 }],
            transition: Transition::Halt,
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        let mut lane = Lane::new();
        let err = lane.run(&image, &[0xFF], 8, RunConfig::default()).unwrap_err();
        assert!(matches!(err, LaneError::StreamUnderflow { wanted: 16, available: 8 }));
    }

    #[test]
    fn scratchpad_oob_traps() {
        let mut pb = ProgramBuilder::new("oob");
        let start = pb.block(Block {
            actions: vec![
                Action::LoadImm { rd: 1, imm: -8 },
                Action::Store { rs: 2, base: 1, offset: 0, width: Width::B8 },
            ],
            transition: Transition::Halt,
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        // The static verifier proves this store always lands at -8.
        assert!(image.verify_report.error_count() > 0);
        let mut lane = Lane::new();
        let cfg = RunConfig { allow_unverified: true, ..Default::default() };
        let err = lane.run(&image, &[], 0, cfg).unwrap_err();
        assert!(matches!(err, LaneError::ScratchpadOob { .. }));
    }

    #[test]
    fn unmapped_dispatch_traps() {
        // Dispatch into a group hole.
        let mut pb = ProgramBuilder::new("hole");
        let only = pb.block(Block { actions: vec![], transition: Transition::Halt });
        let g = pb.group(vec![(0, only)]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 4, group: g },
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        let mut lane = Lane::new();
        // Symbol 9 -> base+9, unmapped (only offset 0 exists).
        let err = lane.run(&image, &[0b1001_0000], 8, RunConfig::default()).unwrap_err();
        assert!(matches!(err, LaneError::UnmappedAddress { .. }), "{err:?}");
    }

    #[test]
    fn runaway_program_hits_cycle_limit() {
        let mut pb = ProgramBuilder::new("loop");
        let a = pb.reserve();
        pb.define(a, Block { actions: vec![], transition: Transition::Jump(a) });
        pb.entry(a);
        let image = assemble(&pb.build().unwrap()).unwrap();
        // The verifier flags the exit-less loop as Diverges; without the
        // opt-out the lane refuses to run it at all.
        assert!(image.verify_report.error_count() > 0);
        let mut lane = Lane::new();
        let strict = RunConfig { cycle_limit: 1000, ..Default::default() };
        assert!(matches!(
            lane.run(&image, &[], 0, strict).unwrap_err(),
            LaneError::Unverified { .. }
        ));
        let cfg = RunConfig { cycle_limit: 1000, allow_unverified: true, ..Default::default() };
        let err = lane.run(&image, &[], 0, cfg).unwrap_err();
        assert!(matches!(err, LaneError::CycleLimit { limit: 1000 }));
    }

    #[test]
    fn bad_output_range_traps() {
        let mut pb = ProgramBuilder::new("badout");
        let start = pb.block(Block {
            actions: vec![
                Action::LoadImm { rd: 1, imm: 1 },
                Action::ShlI { rd: 15, rs: 1, amount: 40 },
            ],
            transition: Transition::Halt,
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        // r15 = 1 << 40 provably exceeds the output window.
        assert!(image.verify_report.error_count() > 0);
        let mut lane = Lane::new();
        let cfg = RunConfig { allow_unverified: true, ..Default::default() };
        let err = lane.run(&image, &[], 0, cfg).unwrap_err();
        assert!(matches!(err, LaneError::BadOutputRange { .. }));
    }

    #[test]
    fn dispatch_peek_does_not_consume() {
        let mut pb = ProgramBuilder::new("peek");
        // Entry peeks 4 bits and dispatches; target consumes all 8 bits and
        // stores them; if peek had consumed, insym would underflow.
        let mut handlers = Vec::new();
        let done = pb.block(Block {
            actions: vec![Action::Sub { rd: 15, rs: 2, rt: 14 }],
            transition: Transition::Halt,
        });
        for _ in 0..16u32 {
            handlers.push(pb.block(Block {
                actions: vec![
                    Action::Mov { rd: 2, rs: 14 },
                    Action::InSym { rd: 1, bits: 8 },
                    Action::Store { rs: 1, base: 2, offset: 0, width: Width::B1 },
                    Action::AddI { rd: 2, rs: 2, imm: 1 },
                ],
                transition: Transition::Jump(done),
            }));
        }
        let g = pb.group(handlers.iter().enumerate().map(|(i, &b)| (i as u32, b)).collect());
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchPeek { bits: 4, group: g },
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &[0xA7], 8, RunConfig::default()).unwrap();
        assert_eq!(r.output, vec![0xA7]);
    }

    #[test]
    fn wide_loads_and_stores_are_little_endian() {
        let mut pb = ProgramBuilder::new("le");
        let start = pb.block(Block {
            actions: vec![
                Action::InSymLe { rd: 1, bytes: 8 },
                Action::Store { rs: 1, base: 14, offset: 0, width: Width::B8 },
                Action::LoadImm { rd: 15, imm: 8 },
            ],
            transition: Transition::Halt,
        });
        pb.entry(start);
        let image = assemble(&pb.build().unwrap()).unwrap();
        let mut lane = Lane::new();
        let input = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let r = lane.run(&image, &input, 64, RunConfig::default()).unwrap();
        assert_eq!(r.output, input, "LE read then LE store must preserve byte order");
    }
}
