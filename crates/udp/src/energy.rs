//! UDP power/area constants from the paper (§IV-A): 28 nm → 14 nm scaling
//! takes a 64-lane UDP from 1 GHz / 864 mW to **1.6 GHz / 160 mW**, with
//! performance and power dominated by SRAM access (CACTI-backed scaling).

/// Lanes per UDP accelerator.
pub const LANES: usize = 64;

/// Clock frequency at 14 nm.
pub const FREQ_HZ: f64 = 1.6e9;

/// Whole-accelerator power at 14 nm (64 lanes, busy).
pub const POWER_W: f64 = 0.16;

/// Energy per accelerator-second of busy time.
pub const JOULES_PER_SECOND: f64 = POWER_W;

/// Energy attributed to `cycles` of makespan on one 64-lane UDP.
pub fn energy_joules(makespan_cycles: u64) -> f64 {
    POWER_W * makespan_cycles as f64 / FREQ_HZ
}

/// The paper's area comparison: one 64-lane UDP ≈ 1% of a 4-core Xeon die,
/// ≈ 0.13% of a modern 32-core die. Exposed for reports.
pub const AREA_FRACTION_OF_4CORE_XEON: f64 = 0.01;

/// Area fraction of a modern 32-core server die.
pub const AREA_FRACTION_OF_32CORE: f64 = 0.0013;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_cycles() {
        let e1 = energy_joules(1_600_000_000);
        assert!((e1 - 0.16).abs() < 1e-12, "1 second of cycles = 0.16 J");
        assert!((energy_joules(800_000_000) - 0.08).abs() < 1e-12);
        assert_eq!(energy_joules(0), 0.0);
    }
}
